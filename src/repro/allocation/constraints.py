"""Hard constraints on combining SW nodes and on SW->HW mappings.

"Satisfaction of constraints: absolute constraints on behavior, whether
semantic, temporal, or other ... this is always the primary concern"
(§5.3).  Constraints implemented:

* replica separation — replicas of one module may never share a node
  (enforced structurally through the weight-0 replica links);
* co-schedulability — every cluster must be schedulable on one processor
  (§5.4: "the processes in the cluster must all be schedulable so that
  their timing requirements are met.  If this is not possible ... the
  current partition must be rejected");
* criticality exclusion — optionally, two processes above a criticality
  threshold may not share a node (§5.3 "Criticality" criterion);
* resource requirements — a cluster needing a named resource can only map
  to HW nodes exposing it (checked at mapping time).

Each constraint is a small object with a ``check`` method returning
``None`` (pass) or a human-readable reason string (fail);
:class:`CombinationPolicy` aggregates them.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import AllocationError
from repro.influence.cluster import clusters_combinable
from repro.influence.influence_graph import InfluenceGraph
from repro.scheduling.feasibility import (
    FeasibilityMethod,
    TimedModule,
    coschedulable,
)


class CombinationConstraint(Protocol):
    """Interface of one hard constraint on merging two clusters."""

    def check(
        self,
        graph: InfluenceGraph,
        first: tuple[str, ...],
        second: tuple[str, ...],
    ) -> str | None:
        """None when the merged cluster would be legal, else a reason."""
        ...


@dataclass(frozen=True)
class ReplicaSeparation:
    """Replicas of one module must stay on distinct nodes."""

    def check(
        self,
        graph: InfluenceGraph,
        first: tuple[str, ...],
        second: tuple[str, ...],
    ) -> str | None:
        if not clusters_combinable(graph, first, second):
            return "clusters contain replicas of the same module"
        return None


@dataclass(frozen=True)
class Schedulability:
    """The merged cluster must be schedulable on one processor."""

    method: FeasibilityMethod = FeasibilityMethod.EXACT

    def check(
        self,
        graph: InfluenceGraph,
        first: tuple[str, ...],
        second: tuple[str, ...],
    ) -> str | None:
        modules = [
            TimedModule(name, graph.fcm(name).attributes)
            for name in (*first, *second)
        ]
        if not coschedulable(modules, method=self.method):
            return "merged cluster is not schedulable on one processor"
        return None


@dataclass(frozen=True)
class CriticalityExclusion:
    """No two processes at/above the threshold may share a node.

    §5.3: "the selected critical processes should be assigned to distinct
    HW nodes, and only be combined with other non-critical processes,
    irrespective of influence."
    """

    threshold: float

    def check(
        self,
        graph: InfluenceGraph,
        first: tuple[str, ...],
        second: tuple[str, ...],
    ) -> str | None:
        def critical(names: tuple[str, ...]) -> list[str]:
            return [
                n for n in names
                if graph.fcm(n).attributes.criticality >= self.threshold
            ]

        if critical(first) and critical(second):
            return (
                "both clusters contain processes with criticality >= "
                f"{self.threshold}"
            )
        return None


@dataclass(frozen=True)
class SecuritySeparation:
    """Information-security compatibility (§1.1(3)(e)).

    Co-locating modules of very different security classifications forces
    the whole node to be certified at the highest level; this constraint
    caps the classification *span* within one cluster (``max_span=0``
    means all members must share one level).
    """

    max_span: int = 0

    def check(
        self,
        graph: InfluenceGraph,
        first: tuple[str, ...],
        second: tuple[str, ...],
    ) -> str | None:
        levels = [
            int(graph.fcm(name).attributes.security)
            for name in (*first, *second)
        ]
        span = max(levels) - min(levels)
        if span > self.max_span:
            return (
                f"security classification span {span} exceeds the allowed "
                f"{self.max_span}"
            )
        return None


@dataclass(frozen=True)
class PeriodicSchedulability:
    """Periodic-task feasibility for FCMs carrying periodic loops.

    The canonical timing attribute is an aperiodic window; systems whose
    FCMs also run periodic loops (the avionics control loops) register
    them here and the merged cluster must remain rate-monotonic
    schedulable (§4 "several well-known scheduling algorithms can be
    used" — we use the exact response-time analysis).

    ``tasks`` maps FCM name -> its periodic tasks.
    """

    tasks: dict[str, tuple] = None  # dict[str, tuple[PeriodicTask, ...]]

    def check(
        self,
        graph: InfluenceGraph,
        first: tuple[str, ...],
        second: tuple[str, ...],
    ) -> str | None:
        from repro.scheduling.rm import rm_schedulable

        table = self.tasks or {}
        cluster_tasks = [
            task
            for name in (*first, *second)
            for task in table.get(name, ())
        ]
        if not cluster_tasks:
            return None
        if not rm_schedulable(list(cluster_tasks)):
            return "merged cluster's periodic tasks are not RM-schedulable"
        return None


@dataclass
class CombinationPolicy:
    """Aggregate of hard constraints; the allocation engine's gatekeeper.

    The default policy enforces replica separation and exact
    co-schedulability — the two constraints the paper's example exercises.
    """

    constraints: list[CombinationConstraint] = field(
        default_factory=lambda: [ReplicaSeparation(), Schedulability()]
    )

    def violations(
        self,
        graph: InfluenceGraph,
        first: Iterable[str],
        second: Iterable[str],
    ) -> list[str]:
        first_t = tuple(first)
        second_t = tuple(second)
        reasons = []
        for constraint in self.constraints:
            reason = constraint.check(graph, first_t, second_t)
            if reason is not None:
                reasons.append(reason)
        return reasons

    def can_combine(
        self,
        graph: InfluenceGraph,
        first: Iterable[str],
        second: Iterable[str],
    ) -> bool:
        return not self.violations(graph, first, second)

    def require_combinable(
        self,
        graph: InfluenceGraph,
        first: Iterable[str],
        second: Iterable[str],
    ) -> None:
        reasons = self.violations(graph, first, second)
        if reasons:
            raise AllocationError(
                "combination rejected: " + "; ".join(reasons)
            )

    def block_violations(
        self,
        graph: InfluenceGraph,
        members: Iterable[str],
    ) -> list[str]:
        """Validity of one whole block (used by partition repair, H2).

        Every internal pair must be combinable (catches replica pairs) and
        the whole block must pass aggregate checks (schedulability of the
        union).  Returns deduplicated reasons.
        """
        block = tuple(members)
        reasons: list[str] = []
        for i, a in enumerate(block):
            for b in block[i + 1:]:
                for constraint in self.constraints:
                    reason = constraint.check(graph, (a,), (b,))
                    if reason is not None:
                        reasons.append(f"{a}/{b}: {reason}")
        if len(block) > 1:
            for constraint in self.constraints:
                reason = constraint.check(graph, block[:1], block[1:])
                if reason is not None:
                    reasons.append(reason)
        return list(dict.fromkeys(reasons))

    def block_valid(
        self,
        graph: InfluenceGraph,
        members: Iterable[str],
    ) -> bool:
        return not self.block_violations(graph, members)


@dataclass(frozen=True)
class ResourceRequirements:
    """Named-resource needs of SW modules, checked at mapping time.

    ``needs`` maps FCM name -> set of resource names it must find on its
    HW node (e.g. the sensor process needs ``sensor_bus``).
    """

    needs: dict[str, frozenset[str]] = field(default_factory=dict)

    def required_by(self, members: Iterable[str]) -> frozenset[str]:
        out: set[str] = set()
        for name in members:
            out |= self.needs.get(name, frozenset())
        return frozenset(out)

    def satisfied_on(
        self,
        members: Iterable[str],
        node_resources: frozenset[str],
    ) -> bool:
        return self.required_by(members) <= node_resources
