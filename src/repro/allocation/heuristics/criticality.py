"""Approach B: criticality-driven pairing (§6.2, Fig. 7).

"The objective is to separate critical processes, so that the same faults
(in HW or SW) affect a minimal number of such processes":

1. List processes in descending order of criticality.
2. Combine the most critical process with the least critical process, the
   second most critical with the second to last, and so on.
3. If a high-criticality process cannot be combined with a low-criticality
   one due to conflicts (timing constraints, or attempts to combine
   replicates), combine it with the process *preceding* that one on the
   criticality list.
4. Repeat on the combined sets, ordered by a summary criticality (highest
   member, or the sum), until the desired number of nodes is obtained.

The paper's worked example ends a round with two replicas (p3a, p3b) as
the final unpaired items; the conflict is repaired by re-pairing with the
previously formed pair — (p2b, p4) becomes (p2b, p3b) and (p3a, p4).  The
implementation generalises that repair: when the most critical unpaired
cluster has no feasible partner, already-formed pairs are revisited in
reverse order and partners swapped whenever both new pairs are feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import InfeasibleAllocationError
from repro.allocation.clustering import ClusterState
from repro.allocation.heuristics.base import (
    CombinationStep,
    CondensationResult,
    _replica_lower_bound,
)

Members = tuple[str, ...]


class SummaryCriticality(Enum):
    """How a combined set is ranked in later rounds."""

    MAX = "max"  # "highest criticality"
    SUM = "sum"  # "or the sum"


@dataclass(frozen=True)
class ApproachBOptions:
    summary: SummaryCriticality = SummaryCriticality.MAX


def condense_criticality(
    state: ClusterState,
    target: int,
    options: ApproachBOptions | None = None,
) -> CondensationResult:
    """Run Approach B rounds until at most ``target`` clusters remain."""
    opts = options or ApproachBOptions()
    if target < _replica_lower_bound(state):
        raise InfeasibleAllocationError(
            "target is below the replica-separation lower bound"
        )
    result = CondensationResult(state=state, heuristic="ApproachB")
    while len(state) > target:
        progressed = _pairing_round(state, target, opts, result)
        if not progressed:
            raise InfeasibleAllocationError(
                f"Approach B: no feasible pairing at {len(state)} clusters "
                f"(target {target})"
            )
    return result


def plan_pairing(
    state: ClusterState,
    options: ApproachBOptions | None = None,
) -> list[tuple[Members, Members]]:
    """The pairs one Approach B round would form, without merging.

    Exposed for reports and for the Fig. 7 bench, which checks the pairing
    (including the replica-conflict repair) against the paper's clusters.
    """
    opts = options or ApproachBOptions()
    queue = _criticality_order(state, opts)
    pairs: list[tuple[Members, Members]] = []

    def feasible(a: Members, b: Members) -> bool:
        return state.policy_can_combine(a, b)

    while len(queue) > 1:
        high = queue.pop(0)
        partner_index = None
        # Least-critical feasible partner: scan from the tail; a failure on
        # the very last is exactly "combine ph with the process preceding
        # pl on the criticality list".
        for k in range(len(queue) - 1, -1, -1):
            if feasible(high, queue[k]):
                partner_index = k
                break
        if partner_index is not None:
            pairs.append((high, queue.pop(partner_index)))
            continue
        # ``high`` conflicts with everything remaining (typically its own
        # replicas).  Pull the next item and repair against formed pairs.
        if not queue:
            break
        other = queue.pop(0)
        if not _repair(pairs, high, other, feasible):
            # Leave both unpaired this round.
            continue
    return pairs


def _repair(
    pairs: list[tuple[Members, Members]],
    high: Members,
    other: Members,
    feasible,
) -> bool:
    """Swap partners with an earlier pair so all four end up paired."""
    for p_idx in range(len(pairs) - 1, -1, -1):
        x, y = pairs[p_idx]
        for first, second in (
            ((x, other), (high, y)),
            ((x, high), (other, y)),
            ((y, other), (high, x)),
            ((y, high), (other, x)),
        ):
            if feasible(*first) and feasible(*second):
                del pairs[p_idx]
                pairs.append(first)
                pairs.append(second)
                return True
    return False


def _pairing_round(
    state: ClusterState,
    target: int,
    opts: ApproachBOptions,
    result: CondensationResult,
) -> bool:
    """Plan one round and execute merges, stopping at ``target``."""
    pairs = plan_pairing(state, opts)
    progressed = False
    for high, low in pairs:
        if len(state) <= target:
            break
        i = state.cluster_of(high[0])
        j = state.cluster_of(low[0])
        if i == j or not state.can_combine(i, j):
            continue
        value = state.mutual_influence(i, j)
        state.combine(i, j)
        result.steps.append(
            CombinationStep(
                first=high,
                second=low,
                mutual_influence=value,
                note="criticality pairing",
            )
        )
        progressed = True
    return progressed


def _criticality_order(
    state: ClusterState,
    opts: ApproachBOptions,
) -> list[Members]:
    def summary(members: Members) -> float:
        values = [state.graph.fcm(m).attributes.criticality for m in members]
        return max(values) if opts.summary is SummaryCriticality.MAX else sum(values)

    ordered = sorted(
        state.clusters,
        key=lambda c: (-summary(c.members), c.members),
    )
    return [c.members for c in ordered]
