"""Condensation heuristics H1-H3, Approach B, and timing packing."""

from repro.allocation.heuristics.base import (
    CombinationStep,
    CondensationHeuristic,
    CondensationResult,
    best_combinable_pair,
)
from repro.allocation.heuristics.criticality import (
    ApproachBOptions,
    SummaryCriticality,
    condense_criticality,
    plan_pairing,
)
from repro.allocation.heuristics.h1_influence import (
    H1Influence,
    H1Pairing,
    condense_h1,
)
from repro.allocation.heuristics.h2_mincut import (
    H2Options,
    SplitChoice,
    condense_h2,
)
from repro.allocation.heuristics.h3_importance import H3Options, condense_h3
from repro.allocation.heuristics.timing import (
    TimingRefinement,
    condense_timing,
    pack_by_timing,
    timing_order,
)

__all__ = [
    "ApproachBOptions",
    "CombinationStep",
    "CondensationHeuristic",
    "CondensationResult",
    "H1Influence",
    "H1Pairing",
    "H2Options",
    "H3Options",
    "SplitChoice",
    "SummaryCriticality",
    "TimingRefinement",
    "best_combinable_pair",
    "condense_criticality",
    "condense_h1",
    "condense_h2",
    "condense_h3",
    "condense_timing",
    "pack_by_timing",
    "plan_pairing",
    "timing_order",
]
