"""Timing-attribute-driven integration (§6.2, Fig. 8).

"In some applications, the criticality of all processes might be similar
in value, and the influences between processes might be small.  For such
applications, other attributes (such as timing) can be used to generate
the mapping.  One such technique is as follows: Compute an ordered list
of SW nodes.  Place the nodes which should preferably be mapped onto the
same node adjacent to each other.  Next, map SW nodes onto a HW node
starting at the top of the list maintaining their compliance to the
specified constraints."

Two entry points:

* :func:`condense_timing` — refine an existing cluster state (e.g. the
  Fig. 7 six-cluster result) down to ``target`` clusters by repeatedly
  merging the pair of clusters whose combined timing load is lightest
  (maximal residual laxity), subject to the hard constraints — "the graph
  in Fig. 7 can be straightforwardly reduced to Fig. 8 if only the timing
  attributes are considered".
* :func:`pack_by_timing` — the from-scratch list technique: order SW
  nodes by (EST, TCD), then first-fit them into clusters under the
  constraint policy.
"""

from __future__ import annotations

from repro.errors import InfeasibleAllocationError
from repro.allocation.clustering import Cluster, ClusterState
from repro.allocation.heuristics.base import (
    CombinationStep,
    CondensationHeuristic,
    CondensationResult,
    best_combinable_pair,
    _replica_lower_bound,
)


class TimingRefinement(CondensationHeuristic):
    """Merge the pair leaving the most residual timing slack."""

    name = "timing"

    def step(self, state: ClusterState) -> CombinationStep | None:
        found = best_combinable_pair(state, _slack_score)
        if found is None:
            return None
        i, j, value = found
        first = state.clusters[i].members
        second = state.clusters[j].members
        influence = state.mutual_influence(i, j)
        state.combine(i, j)
        return CombinationStep(
            first=first,
            second=second,
            mutual_influence=influence,
            note=f"timing slack score {value:.3f}",
        )


def _slack_score(state: ClusterState, i: int, j: int) -> float:
    """Residual laxity of the merged cluster's aggregate window.

    Computed from the member jobs directly: the merged cluster must fit
    ``sum(CT)`` work; the most binding measure is the span utilisation
    ``1 - total_work / span`` over the union of the members' windows.
    Clusters without timing constraints merge freely (score 1.0).
    """
    members = state.clusters[i].members + state.clusters[j].members
    timings = [
        state.graph.fcm(name).attributes.timing
        for name in members
        if state.graph.fcm(name).attributes.timing is not None
    ]
    if not timings:
        return 1.0
    start = min(t.earliest_start for t in timings)
    end = max(t.deadline for t in timings)
    work = sum(t.computation_time for t in timings)
    span = end - start
    if span <= 0:
        return float("-inf")
    return 1.0 - work / span


def condense_timing(state: ClusterState, target: int) -> CondensationResult:
    """Refine ``state`` to at most ``target`` clusters by timing slack."""
    return TimingRefinement().condense(state, target)


def timing_order(state: ClusterState) -> list[str]:
    """The §6.2 ordered list: by (EST, TCD, CT, name).

    Nodes without a timing constraint sort last (they are placement-
    indifferent); the ordering keeps nodes with adjacent windows adjacent
    — "place the nodes which should preferably be mapped onto the same
    node adjacent to each other".
    """
    names = [m for cluster in state.clusters for m in cluster.members]

    def key(name: str):
        timing = state.graph.fcm(name).attributes.timing
        if timing is None:
            return (float("inf"), float("inf"), float("inf"), name)
        return (
            timing.earliest_start,
            timing.deadline,
            timing.computation_time,
            name,
        )

    return sorted(names, key=key)


def pack_by_timing(state: ClusterState, target: int) -> CondensationResult:
    """First-fit pack the timing-ordered node list into clusters.

    Walks the ordered list; each node joins the first existing cluster the
    policy accepts, else opens a new cluster.  Produces at most
    ``max(target, lower_bound)`` clusters when possible; exceeding
    ``target`` raises (the list technique has no backtracking).
    """
    if target < _replica_lower_bound(state):
        raise InfeasibleAllocationError(
            "target is below the replica-separation lower bound"
        )
    order = timing_order(state)
    blocks: list[list[str]] = []
    for name in order:
        placed = False
        for block in blocks:
            if state.policy_can_combine(block, [name]):
                block.append(name)
                placed = True
                break
        if not placed:
            blocks.append([name])
    if len(blocks) > target:
        raise InfeasibleAllocationError(
            f"first-fit packing needs {len(blocks)} clusters; target was "
            f"{target}"
        )
    state.clusters = [Cluster(tuple(block)) for block in blocks]
    return CondensationResult(state=state, heuristic="timing-pack")
