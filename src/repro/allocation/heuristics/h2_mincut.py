"""Heuristic H2: recursive minimum-cut partitioning (§5.4).

"Find the min-cut of the graph.  Divide the graph into two parts along
the cut.  Find the min-cut in each half and repeat the process, until the
requisite number of components has been generated.  Other variations
include: cut the portion with the largest number of nodes, and to cut the
graph using source and target nodes."

The cut is computed on the undirected mutual-influence view (antiparallel
edge weights summed).  Replica links have weight 0, so min-cut naturally
prefers separating replicas.  Because a cut ignores schedulability, the
resulting partition is *repaired* afterwards: members of invalid blocks
are moved to the best accepting block (or split out) until every block
passes the hard constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import InfeasibleAllocationError
from repro.allocation.clustering import Cluster, ClusterState
from repro.allocation.heuristics.base import CondensationResult, _replica_lower_bound
from repro.graphs.mincut import st_min_cut, stoer_wagner
from repro.influence.influence_graph import InfluenceGraph


class SplitChoice(Enum):
    """Which component to split next."""

    LARGEST = "largest"  # the paper's "cut the portion with the largest number of nodes"
    HEAVIEST = "heaviest"  # the component with the largest internal influence


@dataclass(frozen=True)
class H2Options:
    split_choice: SplitChoice = SplitChoice.LARGEST
    use_st_variant: bool = False  # "cut the graph using source and target nodes"


def condense_h2(
    state: ClusterState,
    target: int,
    options: H2Options | None = None,
) -> CondensationResult:
    """Recursive min-cut condensation to exactly ``target`` blocks.

    Operates on the singleton clusters of ``state`` (H2 is a top-down
    partitioner; combining pre-merged clusters is possible because blocks
    are unions of the current clusters).
    """
    opts = options or H2Options()
    if target < _replica_lower_bound(state):
        raise InfeasibleAllocationError(
            "target is below the replica-separation lower bound"
        )
    graph = state.graph

    blocks: list[list[str]] = [
        [m for cluster in state.clusters for m in cluster.members]
    ]
    while len(blocks) < target:
        index = _pick_block(blocks, graph, opts.split_choice)
        block = blocks[index]
        if len(block) < 2:
            # Nothing splittable in the chosen block; pick any block with
            # more than one member.
            splittable = [i for i, b in enumerate(blocks) if len(b) > 1]
            if not splittable:
                break
            index = splittable[0]
            block = blocks[index]
        side_a, side_b = _split(graph, block, opts)
        blocks[index] = side_a
        blocks.insert(index + 1, side_b)

    blocks = _repair(state, blocks, target)
    state.clusters = [Cluster(tuple(block)) for block in blocks]
    return CondensationResult(state=state, heuristic="H2")


def _split(
    graph: InfluenceGraph,
    block: list[str],
    opts: H2Options,
) -> tuple[list[str], list[str]]:
    digraph = graph.as_digraph(include_replica_links=False).subgraph(block)
    if opts.use_st_variant and len(block) >= 2:
        # Source/target variant: cut between the pair with the *least*
        # mutual influence (most separable endpoints).
        source, sink = _most_separable_pair(graph, block)
        _w, side = st_min_cut(digraph, source, sink)
    else:
        _w, side = stoer_wagner(digraph)
    side_a = [name for name in block if name in side]
    side_b = [name for name in block if name not in side]
    if not side_a or not side_b:
        # Degenerate cut (disconnected handling); force a 1/rest split.
        side_a, side_b = [block[0]], block[1:]
    return side_a, side_b


def _most_separable_pair(graph: InfluenceGraph, block: list[str]) -> tuple[str, str]:
    best: tuple[str, str] | None = None
    best_value = float("inf")
    for i, a in enumerate(block):
        for b in block[i + 1:]:
            value = graph.mutual_influence(a, b)
            if value < best_value:
                best_value = value
                best = (a, b)
    assert best is not None
    return best


def _pick_block(
    blocks: list[list[str]],
    graph: InfluenceGraph,
    choice: SplitChoice,
) -> int:
    if choice is SplitChoice.LARGEST:
        return max(range(len(blocks)), key=lambda i: (len(blocks[i]), -i))
    weights = []
    for block in blocks:
        internal = sum(
            graph.influence(a, b)
            for a in block
            for b in block
            if a != b
        )
        weights.append(internal)
    return max(range(len(blocks)), key=lambda i: (weights[i], -i))


def _repair(
    state: ClusterState,
    blocks: list[list[str]],
    target: int,
) -> list[list[str]]:
    """Move members out of invalid blocks until every block is valid.

    Strategy: repeatedly take an invalid block, eject the member whose
    removal clears the most violations (ties: lowest influence binding to
    the block), and re-home it in the best valid block that accepts it;
    if none accepts, it becomes a new singleton block.  Bounded by the
    total member count to guarantee termination.
    """
    guard = sum(len(b) for b in blocks) * 4 + 8
    while guard:
        guard -= 1
        invalid = [
            i for i, block in enumerate(blocks)
            if len(block) > 1 and not state.policy_block_valid(block)
        ]
        if not invalid:
            break
        index = invalid[0]
        block = blocks[index]
        ejected = _choose_ejection(state, block)
        block.remove(ejected)
        home = _find_home(state, blocks, index, ejected)
        if home is None:
            blocks.append([ejected])
        else:
            blocks[home].append(ejected)
    else:
        raise InfeasibleAllocationError("H2 repair did not converge")

    if len([b for b in blocks if b]) > target:
        # Repair overflowed the budget: try merging small valid blocks.
        blocks = _remerge(state, [b for b in blocks if b], target)
    return [b for b in blocks if b]


def _choose_ejection(
    state: ClusterState,
    block: list[str],
) -> str:
    graph = state.graph

    def score(member: str) -> tuple[int, float]:
        rest = [m for m in block if m != member]
        remaining = len(state.policy_block_violations(rest))
        binding = sum(
            graph.mutual_influence(member, other) for other in rest
        )
        return (remaining, binding)

    return min(block, key=lambda m: (score(m), m))


def _find_home(
    state: ClusterState,
    blocks: list[list[str]],
    origin: int,
    member: str,
) -> int | None:
    graph = state.graph
    candidates = []
    for i, block in enumerate(blocks):
        if i == origin or not block:
            continue
        if state.policy_block_valid(block + [member]):
            affinity = sum(graph.mutual_influence(member, other) for other in block)
            candidates.append((affinity, -i, i))
    if not candidates:
        return None
    return max(candidates)[2]


def _remerge(
    state: ClusterState,
    blocks: list[list[str]],
    target: int,
) -> list[list[str]]:
    graph = state.graph
    while len(blocks) > target:
        best: tuple[float, int, int] | None = None
        for i in range(len(blocks)):
            for j in range(i + 1, len(blocks)):
                if state.policy_block_valid(blocks[i] + blocks[j]):
                    affinity = sum(
                        graph.mutual_influence(a, b)
                        for a in blocks[i]
                        for b in blocks[j]
                    )
                    if best is None or affinity > best[0]:
                        best = (affinity, i, j)
        if best is None:
            raise InfeasibleAllocationError(
                f"H2 cannot reach target {target}: no valid merge remains"
            )
        _aff, i, j = best
        blocks[i] = blocks[i] + blocks[j]
        del blocks[j]
    return blocks
