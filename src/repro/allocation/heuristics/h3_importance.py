"""Heuristic H3: spheres of influence around important nodes (§5.4).

"Start with the most important node, and combine it with any adjacent
nodes below a certain threshold of importance (and/or above a certain
influence).  For n HW nodes, identify the n most important SW nodes, and
define their 'spheres of influence'.  Map each group onto a different HW
node."

Implementation: the ``target`` most important SW nodes become seeds; every
remaining node joins the seed cluster with which it has the highest
mutual influence, subject to the hard constraints and the optional
importance/influence thresholds.  Nodes no seed can accept make the
allocation infeasible (reported with the blocking reasons).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InfeasibleAllocationError
from repro.allocation.clustering import Cluster, ClusterState
from repro.allocation.heuristics.base import CondensationResult, _replica_lower_bound
from repro.model.attributes import DEFAULT_IMPORTANCE_WEIGHTS, ImportanceWeights


@dataclass(frozen=True)
class H3Options:
    """Knobs of H3.

    ``importance_threshold``: only nodes with importance strictly below
    the threshold are absorbed into a sphere (None = absorb any
    non-seed).  ``influence_threshold``: a node joins a seed only when
    their mutual influence is at least this value; nodes that clear no
    seed's bar fall back to the best *feasible* seed regardless (the HW
    budget is hard, the preference is soft).
    """

    weights: ImportanceWeights = DEFAULT_IMPORTANCE_WEIGHTS
    importance_threshold: float | None = None
    influence_threshold: float = 0.0


def condense_h3(
    state: ClusterState,
    target: int,
    options: H3Options | None = None,
) -> CondensationResult:
    """Build ``target`` spheres of influence."""
    opts = options or H3Options()
    if target < _replica_lower_bound(state):
        raise InfeasibleAllocationError(
            "target is below the replica-separation lower bound"
        )
    graph = state.graph
    names = [m for cluster in state.clusters for m in cluster.members]
    if target > len(names):
        raise InfeasibleAllocationError(
            f"target {target} exceeds the {len(names)} SW nodes available"
        )

    importance = {
        name: opts.weights.importance(graph.fcm(name).attributes)
        for name in names
    }
    ranked = sorted(names, key=lambda n: (-importance[n], n))
    seeds = ranked[:target]
    rest = ranked[target:]

    blocks: dict[str, list[str]] = {seed: [seed] for seed in seeds}

    for name in rest:
        if (
            opts.importance_threshold is not None
            and importance[name] >= opts.importance_threshold
        ):
            raise InfeasibleAllocationError(
                f"{name!r} (importance {importance[name]:.3f}) exceeds the "
                f"absorption threshold {opts.importance_threshold} but is "
                "not a seed; raise the target or the threshold"
            )
        candidates: list[tuple[float, int, str]] = []
        preferred: list[tuple[float, int, str]] = []
        for order, seed in enumerate(seeds):
            block = blocks[seed]
            if not state.policy_can_combine(block, [name]):
                continue
            affinity = sum(graph.mutual_influence(name, other) for other in block)
            entry = (affinity, -order, seed)
            candidates.append(entry)
            if affinity >= opts.influence_threshold:
                preferred.append(entry)
        pool = preferred or candidates
        if not pool:
            reasons = {
                seed: "; ".join(
                    state.policy_violations(blocks[seed], [name])
                )
                for seed in seeds
            }
            raise InfeasibleAllocationError(
                f"no sphere can absorb {name!r}: {reasons}"
            )
        _affinity, _order, chosen = max(pool)
        blocks[chosen].append(name)

    state.clusters = [Cluster(tuple(blocks[seed])) for seed in seeds]
    return CondensationResult(state=state, heuristic="H3")
