"""Heuristic H1: combine the highest-mutual-influence pair (§5.4, §6.1).

"Combine the two nodes with the highest value of mutual influence (which
implies a high level of interaction, and should be mapped onto the same
HW node).  Repeat for the next higher value of mutual influence, and
continue this process until the required number of nodes is obtained.  A
variation of this is to pair all nodes based on influence values and then
to repeat the process as needed."

Mutual influence is "the sum of influences in each direction" (§6.1).
Pairs blocked by the hard constraints (replica separation,
schedulability) are skipped; when no pair has positive mutual influence,
H1 falls back to zero-influence combinable pairs — maximising separation
costs nothing there, and the HW node budget must still be met.
"""

from __future__ import annotations

from repro.allocation.clustering import ClusterState
from repro.allocation.heuristics.base import (
    CombinationStep,
    CondensationHeuristic,
    CondensationResult,
    best_combinable_pair,
)


class H1Influence(CondensationHeuristic):
    """Greedy highest-mutual-influence merging."""

    name = "H1"

    def step(self, state: ClusterState) -> CombinationStep | None:
        found = best_combinable_pair(
            state, lambda s, i, j: s.mutual_influence(i, j)
        )
        if found is None:
            return None
        i, j, value = found
        first = state.clusters[i].members
        second = state.clusters[j].members
        state.combine(i, j)
        return CombinationStep(
            first=first,
            second=second,
            mutual_influence=value,
        )


class H1Pairing(CondensationHeuristic):
    """The H1 variation: pair *all* nodes in one pass, then repeat.

    Each round greedily matches disjoint cluster pairs in decreasing
    mutual influence, merging every matched pair, so the cluster count
    roughly halves per round.  The reduction loop in the base class calls
    :meth:`step` once per merge; rounds are realised by planning a
    matching whenever the previous plan is exhausted.
    """

    name = "H1-pairing"

    def __init__(self) -> None:
        self._plan: list[tuple[tuple[str, ...], tuple[str, ...]]] = []

    def step(self, state: ClusterState) -> CombinationStep | None:
        if not self._plan:
            self._plan = self._plan_round(state)
            if not self._plan:
                return None
        first, second = self._plan.pop(0)
        try:
            i = state.cluster_of(first[0])
            j = state.cluster_of(second[0])
        except Exception:
            return self.step(state)  # stale plan entry; replan
        if i == j or not state.can_combine(i, j):
            return self.step(state)
        value = state.mutual_influence(i, j)
        state.combine(i, j)
        return CombinationStep(first=first, second=second, mutual_influence=value, note="paired round")

    def _plan_round(
        self, state: ClusterState
    ) -> list[tuple[tuple[str, ...], tuple[str, ...]]]:
        """Greedy maximal matching by decreasing mutual influence."""
        n = len(state.clusters)
        candidates: list[tuple[float, int, int]] = []
        for i in range(n):
            for j in range(i + 1, n):
                if state.can_combine(i, j):
                    candidates.append((state.mutual_influence(i, j), i, j))
        candidates.sort(key=lambda t: (-t[0], t[1], t[2]))
        used: set[int] = set()
        plan = []
        for _value, i, j in candidates:
            if i in used or j in used:
                continue
            used.add(i)
            used.add(j)
            plan.append(
                (state.clusters[i].members, state.clusters[j].members)
            )
        return plan


def condense_h1(state: ClusterState, target: int) -> CondensationResult:
    """Convenience: run plain H1 down to ``target`` clusters."""
    return H1Influence().condense(state, target)
