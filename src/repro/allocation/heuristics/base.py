"""Common machinery for SW-graph condensation heuristics.

Each heuristic reduces a :class:`~repro.allocation.clustering.ClusterState`
to at most ``target`` clusters, honouring the hard-constraint policy, and
returns a :class:`CondensationResult` that records every combination step
(the Fig. 5/6 "successive stages of this process").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import AllocationError, InfeasibleAllocationError
from repro.allocation.clustering import Cluster, ClusterState
from repro.obs import current


@dataclass(frozen=True)
class CombinationStep:
    """One merge performed by a heuristic."""

    first: tuple[str, ...]
    second: tuple[str, ...]
    mutual_influence: float
    note: str = ""

    @property
    def merged(self) -> tuple[str, ...]:
        return self.first + self.second


@dataclass
class CondensationResult:
    """Final state plus the step-by-step trace."""

    state: ClusterState
    steps: list[CombinationStep] = field(default_factory=list)
    heuristic: str = ""

    @property
    def clusters(self) -> list[Cluster]:
        return self.state.clusters

    def labels(self) -> list[str]:
        return self.state.labels()

    def partition(self) -> list[list[str]]:
        return self.state.as_partition()


class CondensationHeuristic(ABC):
    """Base class: validates the target and drives the reduction loop."""

    name: str = "base"

    def condense(self, state: ClusterState, target: int) -> CondensationResult:
        """Reduce ``state`` (mutated in place) to at most ``target`` clusters."""
        if target < 1:
            raise AllocationError("target cluster count must be >= 1")
        lower_bound = _replica_lower_bound(state)
        if target < lower_bound:
            raise InfeasibleAllocationError(
                f"target {target} is below the replica-separation lower "
                f"bound {lower_bound}"
            )
        result = CondensationResult(state=state, heuristic=self.name)
        rec = current()
        while len(state) > target:
            step = self.step(state)
            if step is None:
                if rec.enabled:
                    rec.decision(
                        "condense",
                        "abort",
                        subject=self.name,
                        reason=f"no feasible combination at {len(state)} "
                        f"clusters (target {target})",
                    )
                raise InfeasibleAllocationError(
                    f"{self.name}: no feasible combination found at "
                    f"{len(state)} clusters (target {target})"
                )
            result.steps.append(step)
        if rec.enabled:
            rec.counter("condense_steps_total").inc(
                len(result.steps), heuristic=self.name
            )
        return result

    @abstractmethod
    def step(self, state: ClusterState) -> CombinationStep | None:
        """Perform one combination; None when no feasible pair exists."""


def _replica_lower_bound(state: ClusterState) -> int:
    groups = state.graph.replica_groups()
    if not groups:
        return 1
    return max(len(group) for group in groups)


def best_combinable_pair(
    state: ClusterState,
    score: "callable",
    require_positive: bool = False,
) -> tuple[int, int, float] | None:
    """The combinable cluster pair maximising ``score(state, i, j)``.

    Deterministic tie-break on (i, j).  ``require_positive`` restricts to
    strictly positive scores (used where zero-affinity merges are
    meaningless).
    """
    best: tuple[int, int, float] | None = None
    rec = current()
    rejected = 0
    n = len(state.clusters)
    for i in range(n):
        for j in range(i + 1, n):
            if not state.can_combine(i, j):
                rejected += 1
                continue
            value = score(state, i, j)
            if require_positive and value <= 0.0:
                continue
            if best is None or value > best[2] + 1e-15:
                best = (i, j, value)
    if rec.enabled and rejected:
        rec.counter("condense_pairs_rejected_total").inc(rejected)
    return best
