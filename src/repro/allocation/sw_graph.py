"""The SW graph and replication expansion (§5.1, §5.4, Fig. 4).

"For SW, a weighted directed graph of process FCMs is created ... Nodes
are the FCMs, with unidirectional edges weighted by influence.  Replicas
are connected by edges of weight 0."

:func:`expand_replication` turns each FCM with fault-tolerance requirement
``FT = k > 1`` into ``k`` replica nodes (suffixes ``a``, ``b``, ``c`` ...),
replicating its influence edges to/from every replica and installing the
0-weight replica links.  Each replica carries ``FT = 1`` (it *is* one
copy) and remembers its origin, so allocation can keep replicas on
distinct HW nodes.
"""

from __future__ import annotations

import string

from repro.errors import AllocationError
from repro.influence.influence_graph import InfluenceGraph
from repro.model.fcm import FCM

REPLICA_SUFFIXES = string.ascii_lowercase


def replica_names(name: str, count: int) -> list[str]:
    """Names of the ``count`` replicas of ``name``: p1 -> p1a, p1b, p1c."""
    if count < 2:
        raise AllocationError("replication needs count >= 2")
    if count > len(REPLICA_SUFFIXES):
        raise AllocationError(f"replication count {count} exceeds suffix alphabet")
    return [f"{name}{REPLICA_SUFFIXES[i]}" for i in range(count)]


def expand_replication(graph: InfluenceGraph) -> InfluenceGraph:
    """Fig. 4: expand every FCM with FT > 1 into FT replica nodes.

    Returns a new graph; the input is untouched.  Influence edges incident
    to a replicated FCM are copied to every replica (in both roles), and
    replicas of one module are pairwise linked with weight-0 replica
    edges.  Edges between two replicated FCMs expand to the full
    bipartite pattern, as in the paper's example where the p1-p2 edges
    appear between every p1 and p2 replica.
    """
    expanded = InfluenceGraph()
    # Map original name -> list of node names in the expanded graph.
    images: dict[str, list[str]] = {}

    for fcm in graph.fcms():
        ft = fcm.attributes.fault_tolerance
        if ft > 1:
            names = replica_names(fcm.name, ft)
            images[fcm.name] = names
            for suffix_name in names:
                replica = FCM(
                    name=suffix_name,
                    level=fcm.level,
                    attributes=fcm.attributes.with_fault_tolerance(1),
                    stateless=fcm.stateless,
                    replica_of=fcm.name,
                )
                expanded.add_fcm(replica)
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    expanded.link_replicas(a, b)
        else:
            images[fcm.name] = [fcm.name]
            expanded.add_fcm(graph.fcm(fcm.name))

    for src, dst, weight in graph.influence_edges():
        factors = graph.factors(src, dst)
        for src_image in images[src]:
            for dst_image in images[dst]:
                if factors:
                    expanded.set_influence(src_image, dst_image, factors=factors)
                else:
                    expanded.set_influence(src_image, dst_image, weight)
    return expanded


def required_hw_nodes(graph: InfluenceGraph) -> int:
    """Minimum HW node count imposed by replica separation.

    Every replica of one module needs its own processor, so the largest
    replica group size is a hard lower bound ("if SW fault-tolerance
    requires three concurrent copies, then a 2-node HW configuration is a
    problem").
    """
    groups = graph.replica_groups()
    if not groups:
        return 1 if len(graph) else 0
    return max(len(group) for group in groups)


def total_influence_weight(graph: InfluenceGraph) -> float:
    """Sum of all influence edge weights (allocation's reduction target)."""
    return sum(w for _s, _t, w in graph.influence_edges())
