"""Hardware resource model.

The paper structures HW using a fault-containment-region (FCR) model and
represents it as an interconnection graph (§5.1).  We model:

* :class:`HWNode` — one processor with a resource set (I/O devices,
  co-processors), a memory capacity, and the FCR it belongs to;
* :class:`HWGraph` — nodes plus undirected communication links with
  costs; "a strongly connected network with n HW nodes" is the
  :func:`fully_connected` constructor.

The HW model is deliberately simple ("this paper considers only a fixed
topology; we assume homogeneous processors, with access to equivalent
sets of resources") but carries enough structure for the resource- and
dilation-aware mapping refinements of §6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError


@dataclass(frozen=True)
class HWNode:
    """One processor.

    Attributes:
        name: Unique identifier.
        fcr: Fault containment region label; a HW fault is assumed
            contained within one FCR.
        resources: Named resources locally attached (e.g. ``{"sensor_bus"}``).
        memory: Memory capacity in abstract units (0 = unconstrained).
    """

    name: str
    fcr: str = "fcr0"
    resources: frozenset[str] = frozenset()
    memory: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise AllocationError("HW node needs a non-empty name")
        if self.memory < 0:
            raise AllocationError("memory must be >= 0")


class HWGraph:
    """Processors plus undirected, cost-weighted communication links."""

    def __init__(self) -> None:
        self._nodes: dict[str, HWNode] = {}
        self._links: dict[frozenset[str], float] = {}

    def add_node(self, node: HWNode) -> None:
        if node.name in self._nodes:
            raise AllocationError(f"HW node {node.name!r} already present")
        self._nodes[node.name] = node

    def add_link(self, a: str, b: str, cost: float = 1.0) -> None:
        """Undirected communication link with the given cost."""
        for name in (a, b):
            if name not in self._nodes:
                raise AllocationError(f"HW node {name!r} not in graph")
        if a == b:
            raise AllocationError("links join distinct nodes")
        if cost < 0:
            raise AllocationError("link cost must be >= 0")
        self._links[frozenset((a, b))] = float(cost)

    def node(self, name: str) -> HWNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise AllocationError(f"HW node {name!r} not in graph") from None

    def nodes(self) -> list[HWNode]:
        return list(self._nodes.values())

    def names(self) -> list[str]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def connected(self, a: str, b: str) -> bool:
        self.node(a)
        self.node(b)
        return frozenset((a, b)) in self._links

    def link_cost(self, a: str, b: str) -> float:
        """Cost of the direct link, or ``inf`` if none exists."""
        self.node(a)
        self.node(b)
        if a == b:
            return 0.0
        return self._links.get(frozenset((a, b)), float("inf"))

    def all_links(self) -> list[tuple[str, str, float]]:
        """Every link as ``(node_a, node_b, cost)`` with sorted endpoints."""
        out = []
        for key, cost in self._links.items():
            a, b = sorted(key)
            out.append((a, b, cost))
        return out

    def fcr_of(self, name: str) -> str:
        return self.node(name).fcr

    def nodes_in_fcr(self, fcr: str) -> list[HWNode]:
        return [node for node in self._nodes.values() if node.fcr == fcr]

    def has_resource(self, name: str, resource: str) -> bool:
        return resource in self.node(name).resources


def fully_connected(
    count: int,
    prefix: str = "hw",
    cost: float = 1.0,
    distinct_fcrs: bool = True,
    resources: dict[str, frozenset[str]] | None = None,
) -> HWGraph:
    """A strongly connected homogeneous HW graph of ``count`` processors.

    ``distinct_fcrs=True`` places each processor in its own FCR (the
    standard dependable-HW assumption); ``resources`` optionally attaches
    resource sets per node name.
    """
    if count < 1:
        raise AllocationError("HW graph needs at least one node")
    graph = HWGraph()
    names = [f"{prefix}{i}" for i in range(1, count + 1)]
    for i, name in enumerate(names):
        graph.add_node(
            HWNode(
                name=name,
                fcr=f"fcr{i + 1}" if distinct_fcrs else "fcr0",
                resources=(resources or {}).get(name, frozenset()),
            )
        )
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            graph.add_link(a, b, cost)
    return graph
