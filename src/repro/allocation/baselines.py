"""Baseline clustering strategies for comparison benches.

The paper argues that dependability-driven condensation (H1-H3, Approach
B) contains faults better than dependability-blind placement.  These
baselines provide the comparison points:

* :func:`random_clustering` — constraint-respecting random partition;
* :func:`round_robin_clustering` — deal nodes over clusters in name
  order, constraint-aware (classic load spreading);
* :func:`load_balance_clustering` — greedy balance of computation time,
  ignoring influence entirely (what a throughput-only integrator does).

All produce a valid :class:`ClusterState` (hard constraints are never
sacrificed — an infeasible assignment would be meaningless as a
baseline), so goodness differences isolate the *objective*, not
feasibility.
"""

from __future__ import annotations

import random

from repro.errors import InfeasibleAllocationError
from repro.allocation.clustering import Cluster, ClusterState
from repro.allocation.heuristics.base import CondensationResult, _replica_lower_bound


def random_clustering(
    state: ClusterState,
    target: int,
    seed: int = 0,
    attempts: int = 200,
) -> CondensationResult:
    """Random constraint-respecting partition into ``target`` blocks.

    Repeatedly shuffles the node order and first-fits into ``target``
    blocks; retries with fresh shuffles until a feasible packing appears.
    """
    _check_target(state, target)
    rng = random.Random(seed)
    names = [m for c in state.clusters for m in c.members]
    for _ in range(attempts):
        order = names[:]
        rng.shuffle(order)
        blocks = _first_fit(state, order, target, randomize=rng)
        if blocks is not None:
            state.clusters = [Cluster(tuple(b)) for b in blocks]
            return CondensationResult(state=state, heuristic="random")
    raise InfeasibleAllocationError(
        f"random baseline found no feasible {target}-block partition in "
        f"{attempts} attempts"
    )


def round_robin_clustering(state: ClusterState, target: int) -> CondensationResult:
    """Deal nodes over ``target`` blocks in name order, constraint-aware.

    Each node goes to the next block in rotation that accepts it; blocks
    that reject it are skipped (rotation continues), so the result stays
    feasible while remaining oblivious to influence.
    """
    _check_target(state, target)
    names = sorted(m for c in state.clusters for m in c.members)
    blocks: list[list[str]] = [[] for _ in range(target)]
    cursor = 0
    for name in names:
        placed = False
        for offset in range(target):
            index = (cursor + offset) % target
            if not blocks[index]:
                blocks[index].append(name)
                placed = True
            elif state.policy_can_combine(blocks[index], [name]):
                blocks[index].append(name)
                placed = True
            if placed:
                cursor = (index + 1) % target
                break
        if not placed:
            raise InfeasibleAllocationError(
                f"round-robin baseline cannot place {name!r}"
            )
    state.clusters = [Cluster(tuple(b)) for b in blocks if b]
    return CondensationResult(state=state, heuristic="round-robin")


def load_balance_clustering(state: ClusterState, target: int) -> CondensationResult:
    """Greedy computation-time balancing (longest processing time first).

    Sorts nodes by decreasing computation time and always adds to the
    least-loaded block that accepts the node.  Influence never enters the
    decision.
    """
    _check_target(state, target)
    names = [m for c in state.clusters for m in c.members]

    def work(name: str) -> float:
        timing = state.graph.fcm(name).attributes.timing
        return timing.computation_time if timing is not None else 0.0

    names.sort(key=lambda n: (-work(n), n))
    blocks: list[list[str]] = [[] for _ in range(target)]
    loads = [0.0] * target
    for name in names:
        order = sorted(range(target), key=lambda i: (loads[i], i))
        placed = False
        for index in order:
            if not blocks[index] or state.policy_can_combine(blocks[index], [name]):
                blocks[index].append(name)
                loads[index] += work(name)
                placed = True
                break
        if not placed:
            raise InfeasibleAllocationError(
                f"load-balance baseline cannot place {name!r}"
            )
    state.clusters = [Cluster(tuple(b)) for b in blocks if b]
    return CondensationResult(state=state, heuristic="load-balance")


def _first_fit(
    state: ClusterState,
    order: list[str],
    target: int,
    randomize: random.Random | None = None,
) -> list[list[str]] | None:
    blocks: list[list[str]] = [[] for _ in range(target)]
    for name in order:
        indices = list(range(target))
        if randomize is not None:
            randomize.shuffle(indices)
        placed = False
        for index in indices:
            if not blocks[index] or state.policy_can_combine(blocks[index], [name]):
                blocks[index].append(name)
                placed = True
                break
        if not placed:
            return None
    return [b for b in blocks if b]


def _check_target(state: ClusterState, target: int) -> None:
    if target < _replica_lower_bound(state):
        raise InfeasibleAllocationError(
            "target is below the replica-separation lower bound"
        )
