"""Compiled combination-policy checks for the vectorized allocation path.

Condensation heuristics ask ``can this pair of clusters merge?`` tens of
thousands of times; the scalar :class:`~repro.allocation.constraints.
CombinationPolicy` answers each query from scratch — rebuilding
:class:`~repro.scheduling.task_model.Job` objects per member and running
the full processor-demand test per call.  This module compiles a policy
against one (immutable) expanded influence graph:

* per-FCM facts (job timing triples, density contributions, criticality
  flags, security levels, replica partners) are extracted once;
* per-cluster aggregates (job tuples, sequential work sums, release /
  deadline extremes) are cached by member tuple and merged pair checks
  are memoized;
* the exact demand test gains an O(1) *full-window prefilter*: the
  interval ``[min release, max deadline]`` always contains every job, so
  a merged cluster whose total work exceeds that span is infeasible
  before any window enumeration.

Every answer is **bit-identical** to the scalar policy: sums are folded
in the scalar's sequence order (float addition is not associative), the
demand comparison uses the same ``_EPS``, and reason *strings* are
produced by delegating to the scalar policy — the compiled layer only
fast-paths the (overwhelmingly common) "no violation" answer.

:func:`compile_policy` returns ``None`` when a policy cannot be compiled
(subclassed policy, unknown constraint type, periodic tasks, or an FCM
whose timing is infeasible alone — the scalar path must surface that
error); callers fall back to the scalar oracle with a recorded engine
decision.
"""

from __future__ import annotations

from repro.errors import InfluenceError, SchedulingError
from repro.allocation.constraints import (
    CombinationPolicy,
    CriticalityExclusion,
    ReplicaSeparation,
    Schedulability,
    SecuritySeparation,
)
from repro.influence.influence_graph import InfluenceGraph
from repro.scheduling.edf import _EPS
from repro.scheduling.feasibility import FeasibilityMethod
from repro.scheduling.task_model import Job

Members = tuple[str, ...]

_EMPTY: frozenset[str] = frozenset()


class _SchedFacts:
    """Per-FCM scheduling facts plus per-block cached aggregates."""

    __slots__ = ("jobs_of", "density_of", "_aggs")

    def __init__(self, graph: InfluenceGraph) -> None:
        self.jobs_of: dict[str, tuple[float, float, float] | None] = {}
        self.density_of: dict[str, float | None] = {}
        self._aggs: dict[Members, tuple] = {}
        for fcm in graph.fcms():
            timing = fcm.attributes.timing
            if timing is None:
                self.jobs_of[fcm.name] = None
                self.density_of[fcm.name] = None
                continue
            # Raises SchedulingError for a window that cannot fit its own
            # work — compile_policy treats that as "not compilable".
            job = Job.from_timing(fcm.name, timing)
            self.jobs_of[fcm.name] = (job.release, job.deadline, job.work)
            window = job.deadline - job.release
            self.density_of[fcm.name] = (
                job.work / window if window > 0 else None
            )

    def agg(self, block: Members) -> tuple:
        """(jobs, work_sum, min_release, max_deadline, density_sum).

        ``work_sum`` and ``density_sum`` are *sequential* left folds in
        member order — the same addition sequence the scalar test
        performs over the full-window demand and the density sum.
        """
        cached = self._aggs.get(block)
        if cached is not None:
            return cached
        jobs: list[tuple[float, float, float]] = []
        work_sum = 0.0
        min_r = None
        max_d = None
        density_sum = 0.0
        jobs_of = self.jobs_of
        density_of = self.density_of
        for name in block:
            triple = jobs_of[name]
            if triple is None:
                continue
            r, d, w = triple
            jobs.append(triple)
            work_sum += w
            if min_r is None or r < min_r:
                min_r = r
            if max_d is None or d > max_d:
                max_d = d
            contribution = density_of[name]
            if contribution is not None:
                density_sum += contribution
        result = (tuple(jobs), work_sum, min_r, max_d, density_sum)
        self._aggs[block] = result
        return result


def _demand_feasible(jobs: tuple[tuple[float, float, float], ...]) -> bool:
    """Exact replica of :func:`repro.scheduling.edf.demand_feasible`
    over (release, deadline, work) triples — no Job construction."""
    if not jobs:
        return True
    releases = sorted({r for r, _d, _w in jobs})
    deadlines = sorted({d for _r, d, _w in jobs})
    for t1 in releases:
        lo = t1 - _EPS
        for t2 in deadlines:
            if t2 <= t1:
                continue
            hi = t2 + _EPS
            demand = 0.0
            for r, d, w in jobs:
                if r >= lo and d <= hi:
                    demand += w
            if demand > (t2 - t1) + _EPS:
                return False
    return True


class CompiledPolicy:
    """A :class:`CombinationPolicy` specialized to one influence graph.

    Boolean queries (:meth:`can_combine`, :meth:`block_valid`) run on
    compiled facts and memoized per member-tuple pair; queries that need
    reason strings delegate to the scalar policy when (and only when) a
    violation actually exists, so every string matches the scalar output
    verbatim.
    """

    def __init__(self, graph: InfluenceGraph, policy: CombinationPolicy) -> None:
        self.graph = graph
        self.policy = policy
        self.graph_version = getattr(graph, "version", None)
        self._sched: _SchedFacts | None = None
        self._pair_memo: dict[tuple[Members, Members], bool] = {}
        self._checks: list = []
        self._has_replica_sep = False
        self._partners: dict[str, frozenset[str]] = {}
        self._partner_union: dict[Members, frozenset[str]] = {}
        self._member_sets: dict[Members, frozenset[str]] = {}
        self._crit_any: dict[Members, bool] = {}
        self._sec_range: dict[Members, tuple[int, int] | None] = {}
        for constraint in policy.constraints:
            if isinstance(constraint, ReplicaSeparation):
                self._has_replica_sep = True
                self._partners = {
                    name: graph.replica_partners(name)
                    for name in graph.fcm_names()
                }
                self._checks.append(self._check_replicas)
            elif isinstance(constraint, Schedulability):
                if self._sched is None:
                    self._sched = _SchedFacts(graph)
                if constraint.method is FeasibilityMethod.DENSITY:
                    self._checks.append(self._check_density)
                else:
                    self._checks.append(self._check_demand)
            elif isinstance(constraint, CriticalityExclusion):
                threshold = constraint.threshold
                flags = {
                    fcm.name: fcm.attributes.criticality >= threshold
                    for fcm in graph.fcms()
                }
                self._checks.append(self._make_criticality_check(flags))
            elif isinstance(constraint, SecuritySeparation):
                levels = {
                    fcm.name: int(fcm.attributes.security)
                    for fcm in graph.fcms()
                }
                self._checks.append(self._make_security_check(levels, constraint.max_span))
            else:  # pragma: no cover - guarded by compile_policy
                raise ValueError(f"uncompilable constraint {constraint!r}")

    # -- per-block cached facts ---------------------------------------
    def _members(self, block: Members) -> frozenset[str]:
        cached = self._member_sets.get(block)
        if cached is None:
            cached = frozenset(block)
            self._member_sets[block] = cached
        return cached

    def _partners_of(self, block: Members) -> frozenset[str]:
        cached = self._partner_union.get(block)
        if cached is None:
            out: set[str] = set()
            partners = self._partners
            for name in block:
                linked = partners.get(name)
                if linked:
                    out |= linked
            cached = frozenset(out) if out else _EMPTY
            self._partner_union[block] = cached
        return cached

    # -- compiled constraint checks (True = no violation) -------------
    def _check_replicas(self, first: Members, second: Members) -> bool:
        return not (self._partners_of(first) & self._members(second))

    def _check_demand(self, first: Members, second: Members) -> bool:
        sched = self._sched
        jobs_a, work_a, min_a, max_a = sched.agg(first)[:4]
        jobs_b, work_b, min_b, max_b = sched.agg(second)[:4]
        if not jobs_a and not jobs_b:
            return True
        # Merged full-window aggregates, folded in scalar order: the
        # demand over [min release, max deadline] is the sequential sum
        # of every job's work (first's members precede second's).
        work = work_a
        for _r, _d, w in jobs_b:
            work += w
        if min_a is None:
            min_r, max_d = min_b, max_b
        elif min_b is None:
            min_r, max_d = min_a, max_a
        else:
            min_r = min_a if min_a <= min_b else min_b
            max_d = max_a if max_a >= max_b else max_b
        if max_d > min_r and work > (max_d - min_r) + _EPS:
            return False
        return _demand_feasible(jobs_a + jobs_b)

    def _check_density(self, first: Members, second: Members) -> bool:
        sched = self._sched
        density = sched.agg(first)[4]
        density_of = sched.density_of
        for name in second:
            contribution = density_of.get(name)
            if contribution is not None:
                density += contribution
        return density <= 1.0 + 1e-12

    def _make_criticality_check(self, flags: dict[str, bool]):
        crit_any = self._crit_any

        def check(first: Members, second: Members) -> bool:
            a = crit_any.get(first)
            if a is None:
                a = crit_any[first] = any(flags[n] for n in first)
            if not a:
                return True
            b = crit_any.get(second)
            if b is None:
                b = crit_any[second] = any(flags[n] for n in second)
            return not b

        return check

    def _make_security_check(self, levels: dict[str, int], max_span: int):
        sec_range = self._sec_range

        def span_of(block: Members) -> tuple[int, int] | None:
            cached = sec_range.get(block)
            if cached is None and block not in sec_range:
                values = [levels[n] for n in block]
                cached = (min(values), max(values)) if values else None
                sec_range[block] = cached
            return cached

        def check(first: Members, second: Members) -> bool:
            a = span_of(first)
            b = span_of(second)
            if a is None:
                lo, hi = b
            elif b is None:
                lo, hi = a
            else:
                lo = a[0] if a[0] <= b[0] else b[0]
                hi = a[1] if a[1] >= b[1] else b[1]
            return hi - lo <= max_span

        return check

    # -- policy surface ------------------------------------------------
    def can_combine(self, first: Members, second: Members) -> bool:
        key = (first, second)
        cached = self._pair_memo.get(key)
        if cached is not None:
            return cached
        if self._has_replica_sep and (self._members(first) & self._members(second)):
            # The scalar path reaches clusters_combinable() regardless of
            # other violations (violations() never short-circuits), so the
            # overlap error must fire here too.
            raise InfluenceError("clusters overlap")
        result = True
        for check in self._checks:
            if not check(first, second):
                result = False
                break
        self._pair_memo[key] = result
        return result

    def violations(self, first: Members, second: Members) -> list[str]:
        if self.can_combine(first, second):
            return []
        return self.policy.violations(self.graph, first, second)

    def require_combinable(self, first: Members, second: Members) -> None:
        if not self.can_combine(first, second):
            self.policy.require_combinable(self.graph, first, second)

    def block_valid(self, members: Members) -> bool:
        block = tuple(members)
        for i, a in enumerate(block):
            pair_a = (a,)
            for b in block[i + 1:]:
                if not self.can_combine(pair_a, (b,)):
                    return False
        if len(block) > 1 and not self.can_combine(block[:1], block[1:]):
            return False
        return True

    def block_violations(self, members: Members) -> list[str]:
        block = tuple(members)
        if self.block_valid(block):
            return []
        return self.policy.block_violations(self.graph, block)


def compile_policy(
    graph: InfluenceGraph,
    policy: CombinationPolicy,
) -> CompiledPolicy | None:
    """Compile ``policy`` against ``graph``; ``None`` when unsupported.

    Unsupported: a :class:`CombinationPolicy` subclass (it may override
    aggregation), a constraint type this module does not model
    (:class:`PeriodicSchedulability`, user extensions), or an FCM whose
    timing window cannot fit its own work — the scalar path raises a
    :class:`SchedulingError` for those, and falling back preserves it.
    """
    if type(policy) is not CombinationPolicy:
        return None
    supported = (
        ReplicaSeparation,
        Schedulability,
        CriticalityExclusion,
        SecuritySeparation,
    )
    for constraint in policy.constraints:
        if not isinstance(constraint, supported):
            return None
        if isinstance(constraint, Schedulability) and constraint.method not in (
            FeasibilityMethod.EXACT,
            FeasibilityMethod.DENSITY,
        ):
            return None
    try:
        return CompiledPolicy(graph, policy)
    except SchedulingError:
        return None
