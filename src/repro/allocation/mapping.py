"""SW-cluster to HW-node mapping (§5.3-5.4, §6).

Once the SW graph is condensed to at most the HW node count, each cluster
is assigned its own processor.  "If HW nodes have identical
characteristics, the actual mapping ... is straightforward, unless
communication costs between SW modules (or between SW modules and
external resources) need to be considered."  Two satisficing heuristics
(§5.4):

* Approach A — *importance of tasks*: place clusters in decreasing
  importance, each on the node satisfying its resource requirements with
  the lowest influence-weighted communication cost to already-placed
  neighbours (dilation minimisation);
* Approach B — *importance of attributes*: proceed lexicographically over
  attributes (criticality first): the most critical clusters take nodes
  in distinct FCRs, ties broken by the next attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, InfeasibleAllocationError
from repro.allocation.clustering import ClusterState
from repro.allocation.constraints import ResourceRequirements
from repro.allocation.hw_model import HWGraph
from repro.allocation.importance import rank_clusters
from repro.model.attributes import (
    DEFAULT_IMPORTANCE_WEIGHTS,
    ImportanceWeights,
)
from repro.obs import current


@dataclass
class Mapping:
    """A complete assignment of clusters to HW nodes (1:1)."""

    state: ClusterState
    hw: HWGraph
    assignment: dict[int, str] = field(default_factory=dict)

    def node_of(self, cluster_index: int) -> str:
        try:
            return self.assignment[cluster_index]
        except KeyError:
            raise AllocationError(
                f"cluster {cluster_index} not assigned"
            ) from None

    def cluster_on(self, hw_name: str) -> int | None:
        for index, node in self.assignment.items():
            if node == hw_name:
                return index
        return None

    def is_complete(self) -> bool:
        return len(self.assignment) == len(self.state.clusters)

    def communication_cost(self) -> float:
        """Influence-weighted link-cost sum over cluster pairs (dilation)."""
        total = 0.0
        n = len(self.state.clusters)
        for i in range(n):
            for j in range(n):
                if i == j or i not in self.assignment or j not in self.assignment:
                    continue
                influence = self.state.influence(i, j)
                if influence <= 0.0:
                    continue
                total += influence * self.hw.link_cost(
                    self.assignment[i], self.assignment[j]
                )
        return total

    def describe(self) -> list[tuple[str, str]]:
        """(HW node, cluster label) pairs, in HW order."""
        out = []
        for hw_name in self.hw.names():
            index = self.cluster_on(hw_name)
            label = self.state.clusters[index].label if index is not None else "-"
            out.append((hw_name, label))
        return out


def map_approach_a(
    state: ClusterState,
    hw: HWGraph,
    resources: ResourceRequirements | None = None,
    weights: ImportanceWeights = DEFAULT_IMPORTANCE_WEIGHTS,
) -> Mapping:
    """Approach A: "Evaluate importance of each SW node based on its
    attributes.  Map 'most important' SW node onto a HW node such that all
    its resource requirements are satisfied."
    """
    _check_capacity(state, hw)
    reqs = resources or ResourceRequirements()
    mapping = Mapping(state=state, hw=hw)
    free = list(hw.names())
    rec = current()

    for index in rank_clusters(state, weights):
        members = state.clusters[index].members
        candidates = [
            name for name in free
            if reqs.satisfied_on(members, hw.node(name).resources)
        ]
        if not candidates:
            raise InfeasibleAllocationError(
                "no free HW node satisfies resources "
                f"{sorted(reqs.required_by(members))!r} for cluster "
                f"{state.clusters[index].label!r}"
            )
        needed = reqs.required_by(members)
        costs = _placement_costs(mapping, index, candidates)
        best = min(
            range(len(candidates)),
            key=lambda k: (
                costs[k],
                # keep special nodes free
                len(hw.node(candidates[k]).resources - needed),
                candidates[k],
            ),
        )
        chosen = candidates[best]
        if rec.enabled:
            rec.decision(
                "map",
                "place",
                subject=state.clusters[index].label,
                reason=f"min dilation cost {costs[best]:.4f} among "
                f"{len(candidates)} candidate nodes",
                node=chosen,
                approach="a",
            )
        mapping.assignment[index] = chosen
        free.remove(chosen)
    return mapping


def map_approach_b(
    state: ClusterState,
    hw: HWGraph,
    resources: ResourceRequirements | None = None,
) -> Mapping:
    """Approach B: lexicographic over attributes, criticality first.

    "All SW nodes are mapped onto HW nodes based on their criticality.
    Once all FCMs have been assigned by the most important attribute, the
    next most important attribute is considered (breaking ties ...)."
    Clusters sort by (criticality, timing urgency, throughput) and the
    most critical clusters take nodes in distinct FCRs first.
    """
    _check_capacity(state, hw)
    reqs = resources or ResourceRequirements()
    mapping = Mapping(state=state, hw=hw)
    free = list(hw.names())
    rec = current()

    def lexicographic_key(index: int):
        attrs = state.attributes(index)
        urgency = 0.0
        if attrs.timing is not None:
            urgency = 1.0 / (1.0 + attrs.timing.laxity)
        return (
            -attrs.criticality,
            -urgency,
            -attrs.throughput,
            state.clusters[index].members,
        )

    used_fcrs: set[str] = set()
    for index in sorted(range(len(state.clusters)), key=lexicographic_key):
        members = state.clusters[index].members
        candidates = [
            name for name in free
            if reqs.satisfied_on(members, hw.node(name).resources)
        ]
        if not candidates:
            raise InfeasibleAllocationError(
                "no free HW node satisfies resources for cluster "
                f"{state.clusters[index].label!r}"
            )
        fresh_fcr = [n for n in candidates if hw.fcr_of(n) not in used_fcrs]
        pool = fresh_fcr or candidates
        needed = reqs.required_by(members)
        costs = _placement_costs(mapping, index, pool)
        chosen = pool[
            min(
                range(len(pool)),
                key=lambda k: (
                    costs[k],
                    len(hw.node(pool[k]).resources - needed),
                    pool[k],
                ),
            )
        ]
        if rec.enabled:
            rec.decision(
                "map",
                "place",
                subject=state.clusters[index].label,
                reason="fresh FCR preferred"
                if fresh_fcr
                else "no unused FCR left; fell back to lowest dilation",
                node=chosen,
                fcr=hw.fcr_of(chosen),
                approach="b",
            )
        mapping.assignment[index] = chosen
        used_fcrs.add(hw.fcr_of(chosen))
        free.remove(chosen)
    return mapping


def improve_mapping(
    mapping: Mapping,
    resources: ResourceRequirements | None = None,
    max_rounds: int = 10,
) -> int:
    """Greedy pairwise-swap improvement of the assignment ("perturbing
    others", §5.4 Approach B).

    Repeatedly swaps the HW nodes of two clusters whenever the swap
    reduces the total communication cost and both clusters' resource
    requirements stay satisfied.  Returns the number of swaps applied.
    On complete homogeneous HW graphs the cost is permutation-invariant
    and no swap helps; the pass matters on ring/irregular topologies.
    """
    reqs = resources or ResourceRequirements()
    hw = mapping.hw
    swaps = 0
    indices = list(mapping.assignment)
    for _ in range(max_rounds):
        improved = False
        current_cost = mapping.communication_cost()
        for a in indices:
            for b in indices:
                if a >= b:
                    continue
                node_a, node_b = mapping.assignment[a], mapping.assignment[b]
                members_a = mapping.state.clusters[a].members
                members_b = mapping.state.clusters[b].members
                if not reqs.satisfied_on(members_a, hw.node(node_b).resources):
                    continue
                if not reqs.satisfied_on(members_b, hw.node(node_a).resources):
                    continue
                mapping.assignment[a], mapping.assignment[b] = node_b, node_a
                new_cost = mapping.communication_cost()
                if new_cost < current_cost - 1e-12:
                    current_cost = new_cost
                    swaps += 1
                    improved = True
                else:
                    mapping.assignment[a], mapping.assignment[b] = node_a, node_b
        if not improved:
            break
    return swaps


def _placement_costs(
    mapping: Mapping,
    index: int,
    candidates: list[str],
) -> list[float]:
    """Dilation cost of placing ``index`` on each candidate HW node.

    One sweep over the placed clusters computes every candidate's cost:
    the (expensive) cluster-pair influence is evaluated once per placed
    neighbour instead of once per (neighbour, candidate), and each
    candidate's total still accumulates contributions in assignment
    insertion order — the exact float addition sequence of the one-
    candidate-at-a-time scoring it replaces.
    """
    state = mapping.state
    hw = mapping.hw
    inf = float("inf")
    totals = [0.0] * len(candidates)
    for other, node in mapping.assignment.items():
        influence = state.influence(index, other) + state.influence(other, index)
        if influence <= 0.0:
            continue
        for k, name in enumerate(candidates):
            cost = hw.link_cost(name, node)
            if cost == inf:
                # Unconnected nodes: massive but finite penalty so a
                # complete assignment is still found and flagged by
                # goodness checks.
                cost = 1e6
            totals[k] += influence * cost
    return totals


def _placement_cost(mapping: Mapping, index: int, hw_name: str) -> float:
    """Dilation cost of placing ``index`` on ``hw_name`` given placements."""
    return _placement_costs(mapping, index, [hw_name])[0]


def _check_capacity(state: ClusterState, hw: HWGraph) -> None:
    if len(state.clusters) > len(hw):
        raise InfeasibleAllocationError(
            f"{len(state.clusters)} clusters exceed {len(hw)} HW nodes; "
            "condense the SW graph further"
        )
