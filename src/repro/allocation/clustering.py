"""Cluster state: the evolving partition of SW nodes during condensation.

"Since, invariably, the SW graph has a much greater number of nodes than
the HW graph, the SW graph must be condensed" (§5.4).  All condensation
heuristics (H1-H3, Approach B, timing packing) operate on a
:class:`ClusterState`: the immutable expanded influence graph plus a
mutable partition into clusters.  Cluster-to-cluster influence is the
Eq. (4) combination over member edges, with the replica override pinning
replica-related cluster pairs to 0 influence and non-combinable.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import AllocationError
from repro.allocation.constraints import CombinationPolicy
from repro.influence.cluster import (
    cluster_contains_replica_of,
    clusters_combinable,
)
from repro.influence.influence_graph import InfluenceGraph
from repro.influence.probability import combine_probabilities
from repro.model.attributes import AttributeSet, combine_all_grouped


@dataclass(frozen=True)
class Cluster:
    """One block of the partition: SW FCMs destined for one HW node."""

    members: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise AllocationError("cluster needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise AllocationError("cluster members must be unique")

    @property
    def label(self) -> str:
        """Compact display label, paper style: ``p1a,2a`` for (p1a, p2a)."""
        first, *rest = self.members
        shortened = [first]
        # Strip the longest common alphabetic prefix heuristic is overkill;
        # the paper just drops the leading 'p' on subsequent members.
        for member in rest:
            shortened.append(member.lstrip("p") if member.startswith("p") else member)
        return ",".join(shortened)

    def merged_with(self, other: "Cluster") -> "Cluster":
        return Cluster(self.members + other.members)

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, name: str) -> bool:
        return name in self.members


class ClusterState:
    """A partition of the expanded SW graph into clusters.

    Created with one singleton cluster per SW node; heuristics call
    :meth:`combine` repeatedly until the desired cluster count is reached.
    The original influence graph is never mutated; cluster-level
    influences are computed from it on demand (Eq. 4).
    """

    def __init__(
        self,
        graph: InfluenceGraph,
        policy: CombinationPolicy | None = None,
        clusters: list[Cluster] | None = None,
    ) -> None:
        self.graph = graph
        self.policy = policy if policy is not None else CombinationPolicy()
        if clusters is None:
            self.clusters: list[Cluster] = [
                Cluster((name,)) for name in graph.fcm_names()
            ]
        else:
            flat = [m for c in clusters for m in c.members]
            if len(flat) != len(set(flat)):
                raise AllocationError("clusters overlap")
            unknown = set(flat) - set(graph.fcm_names())
            if unknown:
                raise AllocationError(f"unknown FCMs in clusters: {sorted(unknown)}")
            self.clusters = list(clusters)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clusters)

    def cluster_of(self, member: str) -> int:
        for i, cluster in enumerate(self.clusters):
            if member in cluster:
                return i
        raise AllocationError(f"{member!r} not in any cluster")

    def influence(self, i: int, j: int) -> float:
        """Eq. (4) influence of cluster ``i`` on cluster ``j``, with the
        paper's replica override.

        0.0 when the clusters are replica-related ("if any of the
        component nodes had an influence of 0 on the neighbour, then the
        final value is also 0") or when no member edge exists.  This is
        the *decision* semantic heuristics merge by; for scoring real
        fault exposure use :meth:`raw_influence`.
        """
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise AllocationError("influence of a cluster on itself is undefined")
        a, b = self.clusters[i], self.clusters[j]
        if not clusters_combinable(self.graph, a.members, b.members):
            return 0.0
        return self.raw_influence(i, j)

    def raw_influence(self, i: int, j: int) -> float:
        """Eq. (4) combination over member edges, *without* the replica
        override — the actual probability a fault in cluster ``i``
        reaches cluster ``j`` over direct edges."""
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise AllocationError("influence of a cluster on itself is undefined")
        a, b = self.clusters[i], self.clusters[j]
        return combine_probabilities(
            self.graph.influence(src, dst)
            for src in a.members
            for dst in b.members
        )

    def mutual_influence(self, i: int, j: int) -> float:
        """Sum of influences in each direction — H1's merge criterion."""
        return self.influence(i, j) + self.influence(j, i)

    def replica_related(self, i: int, j: int) -> bool:
        self._check_index(i)
        self._check_index(j)
        return cluster_contains_replica_of(
            self.graph,
            self.clusters[i].members,
            self.clusters[j].members,
        ) or not clusters_combinable(
            self.graph, self.clusters[i].members, self.clusters[j].members
        )

    def can_combine(self, i: int, j: int) -> bool:
        """Replica constraint plus every policy constraint."""
        self._check_index(i)
        self._check_index(j)
        if i == j:
            return False
        return self.policy.can_combine(
            self.graph,
            self.clusters[i].members,
            self.clusters[j].members,
        )

    def attributes(self, i: int) -> AttributeSet:
        """Grouped (§4.3 envelope) combination of the member attributes.

        Clusters are *groupings* — members keep their own timing windows —
        so the timing summary is the occupancy envelope, not the
        most-stringent merge.
        """
        self._check_index(i)
        return combine_all_grouped(
            [self.graph.fcm(name).attributes for name in self.clusters[i].members]
        )

    def total_cross_influence(self) -> float:
        """Sum of all inter-cluster influences — the condensation target.

        "Group the nodes into sets such that the sum of weights between
        the sets is minimized."  Uses :meth:`raw_influence`: faults cross
        node boundaries along real edges regardless of replica pins, so
        the score must count them (the override applies to merge
        decisions, not to exposure accounting).
        """
        total = 0.0
        for i in range(len(self.clusters)):
            for j in range(len(self.clusters)):
                if i != j:
                    total += self.raw_influence(i, j)
        return total

    def labels(self) -> list[str]:
        return [cluster.label for cluster in self.clusters]

    def as_partition(self) -> list[list[str]]:
        return [list(cluster.members) for cluster in self.clusters]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def combine(self, i: int, j: int, enforce_policy: bool = True) -> int:
        """Merge clusters ``i`` and ``j``; returns the merged index.

        The merged cluster takes the lower index; later clusters shift
        down by one.  With ``enforce_policy`` (default) the combination
        must pass every hard constraint.
        """
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise AllocationError("cannot combine a cluster with itself")
        if enforce_policy:
            self.policy.require_combinable(
                self.graph,
                self.clusters[i].members,
                self.clusters[j].members,
            )
        lo, hi = sorted((i, j))
        merged = self.clusters[lo].merged_with(self.clusters[hi])
        del self.clusters[hi]
        self.clusters[lo] = merged
        return lo

    def copy(self) -> "ClusterState":
        return ClusterState(self.graph, self.policy, list(self.clusters))

    def _check_index(self, i: int) -> None:
        if not 0 <= i < len(self.clusters):
            raise AllocationError(f"cluster index {i} out of range")


def initial_state(
    graph: InfluenceGraph,
    policy: CombinationPolicy | None = None,
) -> ClusterState:
    """One singleton cluster per SW node (Fig. 4's starting point)."""
    return ClusterState(graph, policy)


def seeded_state(
    graph: InfluenceGraph,
    blocks: Iterable[Iterable[str]],
    policy: CombinationPolicy | None = None,
) -> ClusterState:
    """A state with a caller-chosen initial partition (used by tests and
    by the mapping stage when re-validating a given reduction)."""
    clusters = [Cluster(tuple(block)) for block in blocks]
    return ClusterState(graph, policy, clusters)
