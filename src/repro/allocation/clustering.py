"""Cluster state: the evolving partition of SW nodes during condensation.

"Since, invariably, the SW graph has a much greater number of nodes than
the HW graph, the SW graph must be condensed" (§5.4).  All condensation
heuristics (H1-H3, Approach B, timing packing) operate on a
:class:`ClusterState`: the immutable expanded influence graph plus a
mutable partition into clusters.  Cluster-to-cluster influence is the
Eq. (4) combination over member edges, with the replica override pinning
replica-related cluster pairs to 0 influence and non-combinable.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import AllocationError, InfluenceError
from repro.allocation.constraints import CombinationPolicy
from repro.influence.cluster import (
    cluster_contains_replica_of,
    clusters_combinable,
)
from repro.influence.influence_graph import InfluenceGraph
from repro.influence.probability import combine_probabilities
from repro.model.attributes import AttributeSet, combine_all_grouped


@dataclass(frozen=True)
class Cluster:
    """One block of the partition: SW FCMs destined for one HW node."""

    members: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise AllocationError("cluster needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise AllocationError("cluster members must be unique")

    @property
    def label(self) -> str:
        """Compact display label, paper style: ``p1a,2a`` for (p1a, p2a)."""
        first, *rest = self.members
        shortened = [first]
        # Strip the longest common alphabetic prefix heuristic is overkill;
        # the paper just drops the leading 'p' on subsequent members.
        for member in rest:
            shortened.append(member.lstrip("p") if member.startswith("p") else member)
        return ",".join(shortened)

    def merged_with(self, other: "Cluster") -> "Cluster":
        return Cluster(self.members + other.members)

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, name: str) -> bool:
        return name in self.members


class ClusterState:
    """A partition of the expanded SW graph into clusters.

    Created with one singleton cluster per SW node; heuristics call
    :meth:`combine` repeatedly until the desired cluster count is reached.
    The original influence graph is never mutated; cluster-level
    influences are computed from it on demand (Eq. 4).

    The vector allocation engine attaches *compiled artifacts* via
    :meth:`attach_compiled` — a
    :class:`~repro.graphs.matrix.CompiledInfluence` weight matrix and a
    :class:`~repro.allocation.compiled.CompiledPolicy` — after which the
    influence and policy queries answer from member-tuple-keyed caches
    with bit-identical values.  Heuristics must route policy queries
    through the ``policy_*`` dispatch methods (never ``state.policy``
    directly) so both engines share one code path.
    """

    def __init__(
        self,
        graph: InfluenceGraph,
        policy: CombinationPolicy | None = None,
        clusters: list[Cluster] | None = None,
    ) -> None:
        self.graph = graph
        self.policy = policy if policy is not None else CombinationPolicy()
        self._compiled_influence = None
        self._compiled_policy = None
        self._rows_cache: dict | None = None
        self._influence_cache: dict | None = None
        self._combinable_cache: dict | None = None
        self._attr_cache: dict | None = None
        if clusters is None:
            self.clusters: list[Cluster] = [
                Cluster((name,)) for name in graph.fcm_names()
            ]
        else:
            flat = [m for c in clusters for m in c.members]
            if len(flat) != len(set(flat)):
                raise AllocationError("clusters overlap")
            unknown = set(flat) - set(graph.fcm_names())
            if unknown:
                raise AllocationError(f"unknown FCMs in clusters: {sorted(unknown)}")
            self.clusters = list(clusters)

    # ------------------------------------------------------------------
    # Compiled artifacts (vector engine)
    # ------------------------------------------------------------------
    def attach_compiled(self, influence=None, policy=None) -> None:
        """Attach compiled artifacts; enables the cached fast paths.

        ``influence`` is a :class:`~repro.graphs.matrix.CompiledInfluence`
        over this state's graph; ``policy`` a
        :class:`~repro.allocation.compiled.CompiledPolicy` compiled from
        ``self.policy``.  The graph must stay unmutated while attached.
        """
        if influence is not None:
            self._compiled_influence = influence
            self._rows_cache = {}
            self._influence_cache = {}
            self._combinable_cache = {}
            self._attr_cache = {}
        if policy is not None:
            self._compiled_policy = policy

    def adopt_compiled(self, other: "ClusterState") -> None:
        """Share ``other``'s compiled artifacts *and* caches.

        Used by copies and re-seeded states over the same graph; caches
        are keyed by member tuples, so sharing across partitions is safe.
        """
        self._compiled_influence = other._compiled_influence
        self._compiled_policy = other._compiled_policy
        self._rows_cache = other._rows_cache
        self._influence_cache = other._influence_cache
        self._combinable_cache = other._combinable_cache
        self._attr_cache = other._attr_cache

    @property
    def is_compiled(self) -> bool:
        return self._compiled_influence is not None or self._compiled_policy is not None

    def _rows(self, members: tuple[str, ...]) -> list[int]:
        cache = self._rows_cache
        rows = cache.get(members)
        if rows is None:
            rows = self._compiled_influence.rows(members)
            cache[members] = rows
        return rows

    def _combinable(self, first: tuple[str, ...], second: tuple[str, ...]) -> bool:
        """Cached :func:`clusters_combinable` (replica-separation predicate)."""
        cache = self._combinable_cache
        if cache is None:
            return clusters_combinable(self.graph, first, second)
        key = (first, second)
        cached = cache.get(key)
        if cached is None:
            if set(first) & set(second):
                raise InfluenceError("clusters overlap")
            graph = self.graph
            cached = not any(
                graph.is_replica_link(a, b) for a in first for b in second
            )
            cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clusters)

    def cluster_of(self, member: str) -> int:
        for i, cluster in enumerate(self.clusters):
            if member in cluster:
                return i
        raise AllocationError(f"{member!r} not in any cluster")

    def influence(self, i: int, j: int) -> float:
        """Eq. (4) influence of cluster ``i`` on cluster ``j``, with the
        paper's replica override.

        0.0 when the clusters are replica-related ("if any of the
        component nodes had an influence of 0 on the neighbour, then the
        final value is also 0") or when no member edge exists.  This is
        the *decision* semantic heuristics merge by; for scoring real
        fault exposure use :meth:`raw_influence`.
        """
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise AllocationError("influence of a cluster on itself is undefined")
        a, b = self.clusters[i], self.clusters[j]
        if not self._combinable(a.members, b.members):
            return 0.0
        return self.raw_influence(i, j)

    def raw_influence(self, i: int, j: int) -> float:
        """Eq. (4) combination over member edges, *without* the replica
        override — the actual probability a fault in cluster ``i``
        reaches cluster ``j`` over direct edges."""
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise AllocationError("influence of a cluster on itself is undefined")
        a, b = self.clusters[i], self.clusters[j]
        ci = self._compiled_influence
        if ci is None:
            return combine_probabilities(
                self.graph.influence(src, dst)
                for src in a.members
                for dst in b.members
            )
        key = (a.members, b.members)
        cache = self._influence_cache
        value = cache.get(key)
        if value is None:
            value = ci.group_influence(self._rows(a.members), self._rows(b.members))
            cache[key] = value
        return value

    def mutual_influence(self, i: int, j: int) -> float:
        """Sum of influences in each direction — H1's merge criterion."""
        return self.influence(i, j) + self.influence(j, i)

    def replica_related(self, i: int, j: int) -> bool:
        self._check_index(i)
        self._check_index(j)
        return cluster_contains_replica_of(
            self.graph,
            self.clusters[i].members,
            self.clusters[j].members,
        ) or not self._combinable(
            self.clusters[i].members, self.clusters[j].members
        )

    def can_combine(self, i: int, j: int) -> bool:
        """Replica constraint plus every policy constraint."""
        self._check_index(i)
        self._check_index(j)
        if i == j:
            return False
        return self.policy_can_combine(
            self.clusters[i].members,
            self.clusters[j].members,
        )

    # ------------------------------------------------------------------
    # Policy dispatch (scalar policy or compiled fast path)
    # ------------------------------------------------------------------
    def policy_can_combine(self, first: Iterable[str], second: Iterable[str]) -> bool:
        cp = self._compiled_policy
        if cp is not None:
            return cp.can_combine(tuple(first), tuple(second))
        return self.policy.can_combine(self.graph, first, second)

    def policy_violations(self, first: Iterable[str], second: Iterable[str]) -> list[str]:
        cp = self._compiled_policy
        if cp is not None:
            return cp.violations(tuple(first), tuple(second))
        return self.policy.violations(self.graph, first, second)

    def policy_require_combinable(self, first: Iterable[str], second: Iterable[str]) -> None:
        cp = self._compiled_policy
        if cp is not None:
            cp.require_combinable(tuple(first), tuple(second))
            return
        self.policy.require_combinable(self.graph, first, second)

    def policy_block_valid(self, members: Iterable[str]) -> bool:
        cp = self._compiled_policy
        if cp is not None:
            return cp.block_valid(tuple(members))
        return self.policy.block_valid(self.graph, members)

    def policy_block_violations(self, members: Iterable[str]) -> list[str]:
        cp = self._compiled_policy
        if cp is not None:
            return cp.block_violations(tuple(members))
        return self.policy.block_violations(self.graph, members)

    def attributes(self, i: int) -> AttributeSet:
        """Grouped (§4.3 envelope) combination of the member attributes.

        Clusters are *groupings* — members keep their own timing windows —
        so the timing summary is the occupancy envelope, not the
        most-stringent merge.
        """
        self._check_index(i)
        members = self.clusters[i].members
        cache = self._attr_cache
        if cache is not None:
            cached = cache.get(members)
            if cached is None:
                cached = combine_all_grouped(
                    [self.graph.fcm(name).attributes for name in members]
                )
                cache[members] = cached
            return cached
        return combine_all_grouped(
            [self.graph.fcm(name).attributes for name in members]
        )

    def total_cross_influence(self) -> float:
        """Sum of all inter-cluster influences — the condensation target.

        "Group the nodes into sets such that the sum of weights between
        the sets is minimized."  Uses :meth:`raw_influence`: faults cross
        node boundaries along real edges regardless of replica pins, so
        the score must count them (the override applies to merge
        decisions, not to exposure accounting).
        """
        total = 0.0
        for i in range(len(self.clusters)):
            for j in range(len(self.clusters)):
                if i != j:
                    total += self.raw_influence(i, j)
        return total

    def labels(self) -> list[str]:
        return [cluster.label for cluster in self.clusters]

    def as_partition(self) -> list[list[str]]:
        return [list(cluster.members) for cluster in self.clusters]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def combine(self, i: int, j: int, enforce_policy: bool = True) -> int:
        """Merge clusters ``i`` and ``j``; returns the merged index.

        The merged cluster takes the lower index; later clusters shift
        down by one.  With ``enforce_policy`` (default) the combination
        must pass every hard constraint.
        """
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise AllocationError("cannot combine a cluster with itself")
        if enforce_policy:
            self.policy_require_combinable(
                self.clusters[i].members,
                self.clusters[j].members,
            )
        lo, hi = sorted((i, j))
        merged = self.clusters[lo].merged_with(self.clusters[hi])
        del self.clusters[hi]
        self.clusters[lo] = merged
        return lo

    def copy(self) -> "ClusterState":
        clone = ClusterState(self.graph, self.policy, list(self.clusters))
        clone.adopt_compiled(self)
        return clone

    def _check_index(self, i: int) -> None:
        if not 0 <= i < len(self.clusters):
            raise AllocationError(f"cluster index {i} out of range")


def initial_state(
    graph: InfluenceGraph,
    policy: CombinationPolicy | None = None,
) -> ClusterState:
    """One singleton cluster per SW node (Fig. 4's starting point)."""
    return ClusterState(graph, policy)


def seeded_state(
    graph: InfluenceGraph,
    blocks: Iterable[Iterable[str]],
    policy: CombinationPolicy | None = None,
) -> ClusterState:
    """A state with a caller-chosen initial partition (used by tests and
    by the mapping stage when re-validating a given reduction)."""
    clusters = [Cluster(tuple(block)) for block in blocks]
    return ClusterState(graph, policy, clusters)
