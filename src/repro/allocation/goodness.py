"""What constitutes a "good" mapping (§5.3).

"The importance of various criteria may differ, depending on the
application under consideration, but these criteria include: satisfaction
of constraints ... containment of faults ... criticality."

:func:`evaluate_mapping` scores a complete mapping on each criterion;
:func:`evaluate_partition` scores a condensation alone (used to compare
heuristics before mapping).  Lower is better for every numeric score.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocation.clustering import ClusterState
from repro.allocation.constraints import ResourceRequirements
from repro.allocation.mapping import Mapping


@dataclass(frozen=True)
class PartitionScore:
    """Quality of a condensation (cluster partition)."""

    cluster_count: int
    cross_influence: float  # Σ inter-cluster influence (fault containment)
    max_node_criticality: float  # highest summed criticality on one node
    critical_colocations: int  # pairs of critical processes sharing a node
    constraint_violations: tuple[str, ...]

    @property
    def feasible(self) -> bool:
        return not self.constraint_violations


@dataclass(frozen=True)
class MappingScore:
    """Quality of a full SW->HW mapping."""

    partition: PartitionScore
    communication_cost: float  # influence-weighted dilation
    resource_violations: tuple[str, ...]
    replica_separation_ok: bool
    complete: bool = True  # every cluster assigned a HW node

    @property
    def feasible(self) -> bool:
        return (
            self.complete
            and self.partition.feasible
            and not self.resource_violations
            and self.replica_separation_ok
        )


def evaluate_partition(
    state: ClusterState,
    criticality_threshold: float | None = None,
) -> PartitionScore:
    """Score a partition on containment and criticality dispersion.

    ``criticality_threshold`` marks which processes count as "critical"
    for the colocation count; ``None`` uses the mean criticality over all
    nodes as the bar.
    """
    graph = state.graph
    names = [m for c in state.clusters for m in c.members]
    crits = [graph.fcm(n).attributes.criticality for n in names]
    threshold = (
        criticality_threshold
        if criticality_threshold is not None
        else (sum(crits) / len(crits) if crits else 0.0)
    )

    violations: list[str] = []
    max_crit = 0.0
    colocations = 0
    for cluster in state.clusters:
        reasons = state.policy_block_violations(cluster.members)
        violations.extend(
            f"{cluster.label}: {reason}" for reason in reasons
        )
        total_crit = sum(
            graph.fcm(m).attributes.criticality for m in cluster.members
        )
        max_crit = max(max_crit, total_crit)
        critical_members = [
            m for m in cluster.members
            if graph.fcm(m).attributes.criticality >= threshold
        ]
        k = len(critical_members)
        colocations += k * (k - 1) // 2

    return PartitionScore(
        cluster_count=len(state.clusters),
        cross_influence=state.total_cross_influence(),
        max_node_criticality=max_crit,
        critical_colocations=colocations,
        constraint_violations=tuple(violations),
    )


def evaluate_mapping(
    mapping: Mapping,
    resources: ResourceRequirements | None = None,
    criticality_threshold: float | None = None,
) -> MappingScore:
    """Score a complete mapping on all §5.3 criteria."""
    partition = evaluate_partition(mapping.state, criticality_threshold)
    reqs = resources or ResourceRequirements()

    resource_violations: list[str] = []
    for index, hw_name in mapping.assignment.items():
        members = mapping.state.clusters[index].members
        needed = reqs.required_by(members)
        available = mapping.hw.node(hw_name).resources
        missing = needed - available
        if missing:
            resource_violations.append(
                f"cluster {mapping.state.clusters[index].label} on "
                f"{hw_name}: missing {sorted(missing)}"
            )

    # Replica separation across HW nodes: replicas sit in different
    # clusters by construction; a 1:1 assignment keeps them on different
    # nodes — verify both.
    replica_ok = True
    assigned_nodes = list(mapping.assignment.values())
    if len(set(assigned_nodes)) != len(assigned_nodes):
        replica_ok = False
    for group in mapping.state.graph.replica_groups():
        nodes = set()
        for member in group:
            index = mapping.state.cluster_of(member)
            node = mapping.assignment.get(index)
            if node in nodes:
                replica_ok = False
            if node is not None:
                nodes.add(node)

    return MappingScore(
        partition=partition,
        communication_cost=mapping.communication_cost(),
        resource_violations=tuple(resource_violations),
        replica_separation_ok=replica_ok,
        complete=mapping.is_complete(),
    )
