"""Node and cluster importance (§5.1).

"Each node in the graph has an importance value, based on its attributes.
The importance I_i of node N_i is a weighted sum of its attribute values,
using predefined static relative weights."

The weighted sum itself lives in
:class:`repro.model.attributes.ImportanceWeights`; this module lifts it to
clusters (via the §4.3 attribute combination) and provides ranking
helpers used by H3 and by mapping Approach A.
"""

from __future__ import annotations

from repro.allocation.clustering import ClusterState
from repro.model.attributes import (
    DEFAULT_IMPORTANCE_WEIGHTS,
    AttributeSet,
    ImportanceWeights,
)


def node_importance(
    attributes: AttributeSet,
    weights: ImportanceWeights = DEFAULT_IMPORTANCE_WEIGHTS,
) -> float:
    """Importance of one SW node."""
    return weights.importance(attributes)


def cluster_importance(
    state: ClusterState,
    index: int,
    weights: ImportanceWeights = DEFAULT_IMPORTANCE_WEIGHTS,
) -> float:
    """Importance of a cluster: weighted sum over its combined attributes."""
    return weights.importance(state.attributes(index))


def rank_clusters(
    state: ClusterState,
    weights: ImportanceWeights = DEFAULT_IMPORTANCE_WEIGHTS,
) -> list[int]:
    """Cluster indices in decreasing importance (stable by members)."""
    return sorted(
        range(len(state.clusters)),
        key=lambda i: (-cluster_importance(state, i, weights), state.clusters[i].members),
    )


def rank_nodes(
    state: ClusterState,
    weights: ImportanceWeights = DEFAULT_IMPORTANCE_WEIGHTS,
) -> list[str]:
    """All SW node names in decreasing importance."""
    names = [m for cluster in state.clusters for m in cluster.members]
    return sorted(
        names,
        key=lambda n: (-node_importance(state.graph.fcm(n).attributes, weights), n),
    )
