"""Workloads: the paper's example, avionics scenario, random generators."""

from repro.workloads.avionics import (
    AVIONICS_EXPECTATIONS,
    avionics_hw,
    avionics_resources,
    avionics_system,
)
from repro.workloads.automotive import (
    automotive_hw,
    automotive_policy,
    automotive_resources,
    automotive_system,
)
from repro.workloads.failure_scenarios import (
    automotive_failure_rates,
    automotive_zone_loss,
    avionics_cabinet_loss,
    avionics_failure_rates,
)
from repro.workloads.generators import (
    WorkloadSpec,
    random_attributes,
    random_process_graph,
    random_system,
    sweep_sizes,
)
from repro.workloads.paper_example import (
    FIG_3_INFLUENCES,
    FIG_7_CLUSTERS,
    FIG_8_NODE_COUNT,
    HW_NODE_COUNT,
    PAPER_FACTS,
    TABLE_1,
    paper_attributes,
    paper_influence_graph,
    paper_process_fcms,
    paper_system,
)

__all__ = [
    "AVIONICS_EXPECTATIONS",
    "FIG_3_INFLUENCES",
    "FIG_7_CLUSTERS",
    "FIG_8_NODE_COUNT",
    "HW_NODE_COUNT",
    "PAPER_FACTS",
    "TABLE_1",
    "WorkloadSpec",
    "avionics_cabinet_loss",
    "avionics_failure_rates",
    "avionics_hw",
    "avionics_resources",
    "automotive_failure_rates",
    "automotive_hw",
    "automotive_policy",
    "automotive_resources",
    "automotive_system",
    "automotive_zone_loss",
    "avionics_system",
    "paper_attributes",
    "paper_influence_graph",
    "paper_process_fcms",
    "paper_system",
    "random_attributes",
    "random_process_graph",
    "random_system",
    "sweep_sizes",
]
