"""The Section 6 worked example: eight processes p1..p8.

The OCR of the paper lost every digit, so the concrete values below are a
*reconstruction* that satisfies every structural fact the prose preserves
(see DESIGN.md §2 and EXPERIMENTS.md for the full derivation):

* p1 is highly critical and runs TMR (FT=3); p2 and p3 are of
  intermediate criticality with FT=2; p4..p8 need no replication.
* The single-process criticality order is pinned by the Fig. 7 pairing
  (p1a+p8, p1b+p7, p1c+p5, p2a+p6, then the repaired p2b+p3b / p3a+p4):
  p4 > p6 > p5 > p7 > p8.
* The twelve influence labels legible in Fig. 3 form the multiset
  {0.7, 0.7, 0.6, 0.5, 0.3, 0.3, 0.2, 0.2, 0.2, 0.2, 0.1, 0.1}; the edge
  *endpoints* are chosen so that H1's first combination is (p1, p2) — the
  pair the prose names — and the example graph stays weakly connected.
* Timing constraints make {p4, p5, p7} pairwise co-schedulable but
  jointly infeasible, reproducing the "certain combinations of nodes may
  be infeasible" demonstration, while every Fig. 7 pair stays feasible.

Influences in the paper were "randomly generated"; only their multiset
and the first H1 merge are recoverable, so intermediate cluster
identities in Figs. 5-6 may differ from the (unrecoverable) originals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.influence.influence_graph import InfluenceGraph
from repro.model.attributes import AttributeSet, TimingConstraint
from repro.model.fcm import FCM, Level
from repro.model.hierarchy import FCMHierarchy
from repro.model.system import SoftwareSystem

#: Table 1 (reconstructed): process -> (C, FT, EST, TCD, CT).
TABLE_1: dict[str, tuple[float, int, float, float, float]] = {
    "p1": (30.0, 3, 0.0, 10.0, 3.0),
    "p2": (20.0, 2, 0.0, 12.0, 3.0),
    "p3": (15.0, 2, 2.0, 12.0, 3.0),
    "p4": (9.0, 1, 10.0, 16.0, 2.0),
    "p5": (7.0, 1, 11.0, 16.0, 2.0),
    "p6": (8.0, 1, 4.0, 12.0, 3.0),
    "p7": (5.0, 1, 10.0, 15.0, 3.0),
    "p8": (3.0, 1, 12.0, 18.0, 3.0),
}

#: Fig. 3 (reconstructed endpoints, legible weights): directed influences.
FIG_3_INFLUENCES: list[tuple[str, str, float]] = [
    ("p1", "p2", 0.7),
    ("p2", "p1", 0.5),
    ("p2", "p3", 0.7),
    ("p3", "p4", 0.6),
    ("p4", "p3", 0.3),
    ("p5", "p7", 0.3),
    ("p7", "p8", 0.2),
    ("p8", "p7", 0.2),
    ("p4", "p5", 0.2),
    ("p2", "p5", 0.2),
    ("p6", "p1", 0.1),
    ("p5", "p6", 0.1),
]

#: The Fig. 7 clusters the prose pins down exactly (Approach B result).
FIG_7_CLUSTERS: list[set[str]] = [
    {"p1a", "p8"},
    {"p1b", "p7"},
    {"p1c", "p5"},
    {"p2a", "p6"},
    {"p2b", "p3b"},
    {"p3a", "p4"},
]

#: HW node count used by the example ("a strongly connected network with
#: six HW nodes"), and the Fig. 8 refinement target.
HW_NODE_COUNT = 6
FIG_8_NODE_COUNT = 4


def paper_attributes(name: str) -> AttributeSet:
    """Attribute set of one Table 1 process."""
    crit, ft, est, tcd, ct = TABLE_1[name]
    return AttributeSet(
        criticality=crit,
        fault_tolerance=ft,
        timing=TimingConstraint(est, tcd, ct),
    )


def paper_process_fcms() -> list[FCM]:
    """The eight process-level FCMs of Table 1."""
    return [
        FCM(name, Level.PROCESS, paper_attributes(name))
        for name in TABLE_1
    ]


def paper_influence_graph() -> InfluenceGraph:
    """Fig. 3: the initial 8-node SW influence graph."""
    graph = InfluenceGraph()
    for fcm in paper_process_fcms():
        graph.add_fcm(fcm)
    for src, dst, weight in FIG_3_INFLUENCES:
        graph.set_influence(src, dst, weight)
    return graph


def paper_system() -> SoftwareSystem:
    """The full example as a :class:`SoftwareSystem` (process level only;
    the paper's example works at process granularity)."""
    system = SoftwareSystem(name="icdcs98-example")
    hierarchy = FCMHierarchy()
    for fcm in paper_process_fcms():
        hierarchy.add(fcm)
    system.hierarchy = hierarchy
    system.influence[Level.PROCESS] = paper_influence_graph()
    return system


@dataclass(frozen=True)
class PaperFacts:
    """Structural facts the reproduction must honour (used by tests)."""

    replicated_node_count: int = 12  # 3 + 2 + 2 + 5
    influence_edge_count: int = 12
    first_h1_merge: tuple[str, str] = ("p1", "p2")
    jointly_infeasible: tuple[str, str, str] = ("p4", "p5", "p7")
    infeasible_pair_demo: tuple[tuple[float, float, float], tuple[float, float, float]] = (
        (0.0, 3.0, 2.0),
        (1.0, 4.0, 3.0),
    )


PAPER_FACTS = PaperFacts()
