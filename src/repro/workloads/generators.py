"""Seeded synthetic workload generation.

The heuristic-comparison and scaling benches need families of systems
with controllable size, influence density, replication mix and timing
load.  :func:`random_process_graph` generates process-level influence
graphs; :func:`random_system` builds full three-level systems (processes
containing tasks containing procedures) for the composition and
verification tests.

All generation is deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.influence.influence_graph import InfluenceGraph
from repro.model.attributes import AttributeSet, TimingConstraint
from repro.model.fcm import FCM, Level
from repro.model.hierarchy import FCMHierarchy
from repro.model.system import SoftwareSystem


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic process population.

    Attributes:
        processes: Number of processes (pre-replication).
        edge_probability: Probability an ordered pair gets an influence
            edge.
        replicated_fraction: Fraction of processes given FT in {2, 3}.
        max_influence: Influence values are uniform in (0, max_influence].
        horizon: Timing windows are laid out within [0, horizon].
        utilization: Average fraction of each window used as computation
            time (low values keep random clusters schedulable).
    """

    processes: int = 8
    edge_probability: float = 0.25
    replicated_fraction: float = 0.25
    max_influence: float = 0.8
    horizon: float = 100.0
    utilization: float = 0.3

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise SimulationError("processes must be >= 1")
        if not 0.0 <= self.edge_probability <= 1.0:
            raise SimulationError("edge_probability must be in [0, 1]")
        if not 0.0 <= self.replicated_fraction <= 1.0:
            raise SimulationError("replicated_fraction must be in [0, 1]")
        if not 0.0 < self.max_influence <= 1.0:
            raise SimulationError("max_influence must be in (0, 1]")
        if self.horizon <= 0:
            raise SimulationError("horizon must be > 0")
        if not 0.0 < self.utilization <= 1.0:
            raise SimulationError("utilization must be in (0, 1]")


def random_attributes(rng: random.Random, spec: WorkloadSpec, replicated: bool) -> AttributeSet:
    """One random attribute set under ``spec``."""
    start = rng.uniform(0.0, spec.horizon * 0.6)
    window = rng.uniform(spec.horizon * 0.2, spec.horizon * 0.4)
    deadline = min(start + window, spec.horizon)
    work = max(0.01, (deadline - start) * spec.utilization * rng.uniform(0.5, 1.5))
    work = min(work, deadline - start)
    return AttributeSet(
        criticality=rng.uniform(1.0, 30.0),
        fault_tolerance=rng.choice((2, 3)) if replicated else 1,
        timing=TimingConstraint(start, deadline, work),
        throughput=rng.uniform(0.0, 10.0),
    )


def random_process_graph(
    spec: WorkloadSpec | None = None,
    seed: int = 0,
) -> InfluenceGraph:
    """A random process-level influence graph under ``spec``."""
    spec = spec or WorkloadSpec()
    rng = random.Random(seed)
    graph = InfluenceGraph()
    names = [f"p{i}" for i in range(1, spec.processes + 1)]
    replicated_count = round(spec.processes * spec.replicated_fraction)
    replicated = set(names[:replicated_count])
    for name in names:
        graph.add_fcm(
            FCM(
                name,
                Level.PROCESS,
                random_attributes(rng, spec, name in replicated),
            )
        )
    for src in names:
        for dst in names:
            if src == dst:
                continue
            if rng.random() < spec.edge_probability:
                graph.set_influence(
                    src, dst, rng.uniform(0.01, spec.max_influence)
                )
    return graph


def random_system(
    processes: int = 3,
    tasks_per_process: int = 3,
    procedures_per_task: int = 3,
    seed: int = 0,
) -> SoftwareSystem:
    """A full three-level system with hierarchy links.

    Process/task/procedure attributes are generated with decreasing
    criticality variance down the hierarchy; influence graphs at each
    level get a sparse random edge set among siblings.
    """
    rng = random.Random(seed)
    spec = WorkloadSpec(processes=processes)
    system = SoftwareSystem(name=f"synthetic-{seed}")
    hierarchy = FCMHierarchy()

    for p in range(1, processes + 1):
        process_name = f"p{p}"
        hierarchy.add(
            FCM(process_name, Level.PROCESS, random_attributes(rng, spec, rng.random() < 0.2))
        )
        for t in range(1, tasks_per_process + 1):
            task_name = f"{process_name}.t{t}"
            hierarchy.add(
                FCM(
                    task_name,
                    Level.TASK,
                    AttributeSet(criticality=rng.uniform(1.0, 15.0)),
                ),
                parent=process_name,
            )
            for f in range(1, procedures_per_task + 1):
                hierarchy.add(
                    FCM(
                        f"{task_name}.f{f}",
                        Level.PROCEDURE,
                        AttributeSet(criticality=rng.uniform(0.0, 5.0)),
                    ),
                    parent=task_name,
                )
    system.hierarchy = hierarchy

    for level in (Level.PROCESS, Level.TASK, Level.PROCEDURE):
        graph = system.influence_at(level)
        names = graph.fcm_names()
        for src in names:
            for dst in names:
                if src != dst and rng.random() < 0.15:
                    graph.set_influence(src, dst, rng.uniform(0.05, 0.6))
    return system


def sweep_sizes(
    sizes: list[int],
    seed: int = 0,
    spec: WorkloadSpec | None = None,
) -> dict[int, InfluenceGraph]:
    """One random process graph per requested size (scaling benches)."""
    base = spec or WorkloadSpec()
    out = {}
    for i, size in enumerate(sizes):
        sized = WorkloadSpec(
            processes=size,
            edge_probability=base.edge_probability,
            replicated_fraction=base.replicated_fraction,
            max_influence=base.max_influence,
            horizon=base.horizon,
            utilization=base.utilization,
        )
        out[size] = random_process_graph(sized, seed=seed + i)
    return out
