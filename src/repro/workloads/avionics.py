"""An AIMS-like integrated flight-control workload.

The paper's motivating example: "the integration for flight control SW
involves display, sensor, collision avoidance, and navigation SW onto a
shared platform" (the Boeing 777 AIMS system).  This module builds that
scenario as a full three-level system:

* four subsystems (processes pre-integration): ``flight_ctl`` (TMR,
  highest criticality), ``collision_avoid`` (duplex), ``navigation``,
  ``sensor_io``, ``display``, ``maintenance`` — mixed criticality on a
  shared platform;
* each process carries tasks (control loop, voter, filters, ...) and
  procedures, with influence factors drawn from the paper's mechanisms
  (shared memory between sensor and navigation, messages from navigation
  to display, timing coupling in the control loop);
* resource needs: ``sensor_io`` requires the ``sensor_bus`` resource;
  ``display`` requires ``display_head`` — exercising the resource-aware
  mapping path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocation.constraints import ResourceRequirements
from repro.allocation.hw_model import HWGraph, HWNode
from repro.influence.factors import FactorKind, InfluenceFactor
from repro.model.attributes import AttributeSet, SecurityLevel, TimingConstraint
from repro.model.fcm import FCM, Level
from repro.model.hierarchy import FCMHierarchy
from repro.model.system import SoftwareSystem

#: process name -> (criticality, FT, EST, TCD, CT, throughput)
PROCESSES: dict[str, tuple[float, int, float, float, float, float]] = {
    "flight_ctl": (100.0, 3, 0.0, 20.0, 5.0, 50.0),
    "collision_avoid": (80.0, 2, 0.0, 25.0, 6.0, 20.0),
    "navigation": (60.0, 1, 5.0, 40.0, 8.0, 30.0),
    "sensor_io": (50.0, 1, 0.0, 15.0, 4.0, 80.0),
    "display": (20.0, 1, 10.0, 60.0, 10.0, 15.0),
    "maintenance": (5.0, 1, 30.0, 100.0, 10.0, 5.0),
}

#: Tasks per process (suffix, relative criticality share).
TASKS: dict[str, list[str]] = {
    "flight_ctl": ["control_loop", "voter", "actuator_out"],
    "collision_avoid": ["tracker", "advisory"],
    "navigation": ["position", "route"],
    "sensor_io": ["adc_scan", "calibrate"],
    "display": ["render", "annunciator"],
    "maintenance": ["logger"],
}

#: Process-level influence factors: (src, dst, kind, p1, p2, p3).
PROCESS_FACTORS: list[tuple[str, str, FactorKind, float, float, float]] = [
    ("sensor_io", "flight_ctl", FactorKind.SHARED_MEMORY, 0.05, 0.9, 0.8),
    ("sensor_io", "navigation", FactorKind.SHARED_MEMORY, 0.05, 0.8, 0.7),
    ("sensor_io", "collision_avoid", FactorKind.MESSAGE_PASSING, 0.05, 0.6, 0.7),
    ("navigation", "flight_ctl", FactorKind.MESSAGE_PASSING, 0.04, 0.7, 0.6),
    ("navigation", "display", FactorKind.MESSAGE_PASSING, 0.04, 0.5, 0.4),
    ("collision_avoid", "flight_ctl", FactorKind.MESSAGE_PASSING, 0.03, 0.8, 0.7),
    ("collision_avoid", "display", FactorKind.MESSAGE_PASSING, 0.03, 0.4, 0.4),
    ("flight_ctl", "display", FactorKind.MESSAGE_PASSING, 0.02, 0.3, 0.3),
    ("maintenance", "display", FactorKind.RESOURCE_SHARING, 0.10, 0.3, 0.3),
    ("maintenance", "navigation", FactorKind.RESOURCE_SHARING, 0.10, 0.2, 0.3),
    ("display", "maintenance", FactorKind.MESSAGE_PASSING, 0.02, 0.4, 0.5),
]


def avionics_system() -> SoftwareSystem:
    """The full flight-control system with hierarchy and influences."""
    system = SoftwareSystem(name="avionics")
    hierarchy = FCMHierarchy()

    for name, (crit, ft, est, tcd, ct, tput) in PROCESSES.items():
        hierarchy.add(
            FCM(
                name,
                Level.PROCESS,
                AttributeSet(
                    criticality=crit,
                    fault_tolerance=ft,
                    timing=TimingConstraint(est, tcd, ct),
                    throughput=tput,
                    security=(
                        SecurityLevel.RESTRICTED
                        if name in ("flight_ctl", "collision_avoid")
                        else SecurityLevel.UNCLASSIFIED
                    ),
                ),
            )
        )
        for i, suffix in enumerate(TASKS[name]):
            task_name = f"{name}.{suffix}"
            hierarchy.add(
                FCM(
                    task_name,
                    Level.TASK,
                    AttributeSet(criticality=crit / (i + 1.5)),
                ),
                parent=name,
            )
            for proc_suffix in ("init", "step"):
                hierarchy.add(
                    FCM(
                        f"{task_name}.{proc_suffix}",
                        Level.PROCEDURE,
                        AttributeSet(criticality=crit / 10.0),
                    ),
                    parent=task_name,
                )
    system.hierarchy = hierarchy

    graph = system.influence_at(Level.PROCESS)
    for src, dst, kind, p1, p2, p3 in PROCESS_FACTORS:
        graph.set_influence(
            src,
            dst,
            factors=[InfluenceFactor(kind, p1, p2, p3)],
        )

    # Task-level coupling inside flight_ctl: the control loop's timing
    # affects the voter; the voter's messages affect actuator output.
    task_graph = system.influence_at(Level.TASK)
    task_graph.set_influence(
        "flight_ctl.control_loop",
        "flight_ctl.voter",
        factors=[InfluenceFactor(FactorKind.TIMING, 0.05, 0.9, 0.9)],
    )
    task_graph.set_influence(
        "flight_ctl.voter",
        "flight_ctl.actuator_out",
        factors=[InfluenceFactor(FactorKind.MESSAGE_PASSING, 0.03, 0.8, 0.8)],
    )
    return system


def avionics_resources() -> ResourceRequirements:
    """Resource needs: sensor I/O and display are location-bound."""
    return ResourceRequirements(
        needs={
            "sensor_io": frozenset({"sensor_bus"}),
            "display": frozenset({"display_head"}),
        }
    )


def avionics_hw(nodes: int = 6) -> HWGraph:
    """A cabinet of ``nodes`` processors; node 1 carries the sensor bus,
    node 2 the display head; distinct FCR per processor."""
    hw = HWGraph()
    for i in range(1, nodes + 1):
        resources: frozenset[str] = frozenset()
        if i == 1:
            resources = frozenset({"sensor_bus"})
        elif i == 2:
            resources = frozenset({"display_head"})
        hw.add_node(HWNode(f"cab{i}", fcr=f"fcr{i}", resources=resources))
    names = hw.names()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            hw.add_link(a, b, 1.0)
    return hw


@dataclass(frozen=True)
class AvionicsExpectations:
    """Facts the avionics scenario must satisfy (tests assert these)."""

    replicated_nodes: int = 9  # 3 + 2 + 4 singles
    min_hw_nodes: int = 3  # TMR lower bound


AVIONICS_EXPECTATIONS = AvionicsExpectations()
