"""An automotive brake-by-wire workload — a second realistic domain.

The framework claims generality across "diverse task criticality
requirements, different fault-tolerance needs, and varied throughput,
timing and security constraints" (§1).  Avionics exercises TMR and fixed
resources; this scenario exercises the *duplex + fail-silent* pattern
typical of automotive E/E architectures, channel-derived influences, and
tight periodic loops:

* ``brake_ctl`` — duplex (FT=2) brake controller, hard 10 ms loop;
* ``wheel_speed`` — sensor fusion feeding everyone over shared memory;
* ``stability`` — ESC algorithm, duplex;
* ``pedal`` — pedal-position acquisition, wired to the pedal bus;
* ``telltale`` — driver display, soft timing;
* ``diag`` — diagnostics/logging, lowest criticality, chatty.
"""

from __future__ import annotations

from repro.allocation.constraints import (
    CombinationPolicy,
    PeriodicSchedulability,
    ResourceRequirements,
)
from repro.allocation.hw_model import HWGraph, HWNode
from repro.influence.estimation import Medium, UsageHistory
from repro.model.attributes import AttributeSet, TimingConstraint
from repro.model.communication import Channel, channels_to_influence
from repro.model.fcm import FCM, Level
from repro.model.system import SoftwareSystem
from repro.scheduling.task_model import PeriodicTask

#: name -> (criticality, FT, EST, TCD, CT)
PROCESSES: dict[str, tuple[float, int, float, float, float]] = {
    "brake_ctl": (100.0, 2, 0.0, 10.0, 2.0),
    "stability": (80.0, 2, 0.0, 20.0, 4.0),
    "wheel_speed": (70.0, 1, 0.0, 5.0, 1.0),
    "pedal": (60.0, 1, 0.0, 8.0, 1.0),
    "telltale": (15.0, 1, 10.0, 100.0, 5.0),
    "diag": (5.0, 1, 20.0, 200.0, 10.0),
}

CHANNELS: list[Channel] = [
    Channel("wheel_speed", "brake_ctl", Medium.SHARED_MEMORY, volume=16, rate=100),
    Channel("wheel_speed", "stability", Medium.SHARED_MEMORY, volume=16, rate=100),
    Channel("pedal", "brake_ctl", Medium.MESSAGE, volume=4, rate=100),
    Channel("stability", "brake_ctl", Medium.MESSAGE, volume=8, rate=50),
    Channel("brake_ctl", "telltale", Medium.MESSAGE, volume=2, rate=10),
    Channel("stability", "telltale", Medium.MESSAGE, volume=2, rate=10),
    Channel("diag", "telltale", Medium.MESSAGE, volume=2, rate=1),
    Channel("brake_ctl", "diag", Medium.MESSAGE, volume=32, rate=5),
    Channel("stability", "diag", Medium.MESSAGE, volume=32, rate=5),
]

HISTORIES: dict[str, UsageHistory] = {
    "brake_ctl": UsageHistory(executions=2_000_000, faults=4),
    "stability": UsageHistory(executions=1_000_000, faults=6),
    "wheel_speed": UsageHistory(executions=5_000_000, faults=50),
    "pedal": UsageHistory(executions=5_000_000, faults=25),
    "telltale": UsageHistory(executions=500_000, faults=40),
    "diag": UsageHistory(executions=500_000, faults=100),
}

#: Periodic control loops per process (RM-checked during condensation).
PERIODIC_TASKS: dict[str, tuple[PeriodicTask, ...]] = {
    "brake_ctl": (PeriodicTask("brake.loop", period=10, work=2),),
    "stability": (PeriodicTask("esc.loop", period=20, work=4),),
    "wheel_speed": (PeriodicTask("ws.sample", period=5, work=1),),
    "pedal": (PeriodicTask("pedal.sample", period=8, work=1),),
}

MISSION_TIME = 3600.0  # one hour of driving


def automotive_system() -> SoftwareSystem:
    """The brake-by-wire system with channel-derived influences."""
    system = SoftwareSystem(name="brake-by-wire")
    for name, (crit, ft, est, tcd, ct) in PROCESSES.items():
        system.hierarchy.add(
            FCM(
                name,
                Level.PROCESS,
                AttributeSet(
                    criticality=crit,
                    fault_tolerance=ft,
                    timing=TimingConstraint(est, tcd, ct),
                ),
            )
        )
    graph = system.influence_at(Level.PROCESS)
    channels_to_influence(
        graph, CHANNELS, HISTORIES, mission_time=MISSION_TIME
    )
    return system


def automotive_policy() -> CombinationPolicy:
    """Default policy plus the periodic RM constraint."""
    policy = CombinationPolicy()
    policy.constraints.append(PeriodicSchedulability(tasks=PERIODIC_TASKS))
    return policy


def automotive_resources() -> ResourceRequirements:
    return ResourceRequirements(
        needs={
            "pedal": frozenset({"pedal_bus"}),
            "wheel_speed": frozenset({"wheel_bus"}),
        }
    )


def automotive_hw(nodes: int = 4) -> HWGraph:
    """ECUs on a ring bus: neighbours cheap, others two hops."""
    hw = HWGraph()
    for i in range(1, nodes + 1):
        resources: frozenset[str] = frozenset()
        if i == 1:
            resources = frozenset({"pedal_bus"})
        elif i == 2:
            resources = frozenset({"wheel_bus"})
        hw.add_node(HWNode(f"ecu{i}", fcr=f"zone{i}", resources=resources))
    names = hw.names()
    for i, a in enumerate(names):
        for j in range(i + 1, len(names)):
            b = names[j]
            ring_distance = min(j - i, len(names) - (j - i))
            hw.add_link(a, b, float(ring_distance))
    return hw
