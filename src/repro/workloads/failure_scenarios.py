"""Scripted HW failure scenarios for the avionics and automotive workloads.

Each scenario pairs a workload's HW graph with the failure sequence a
certification argument would actually rehearse: losing a cabinet (or
ECU zone), riding out a transient outage, and losing a resource-bearing
node so the degradation planner must shed something.  They feed
:func:`repro.resilience.campaign.replay_scenario` directly.
"""

from __future__ import annotations

from repro.resilience.failures import (
    FailureEvent,
    FailureKind,
    FailureScenario,
    FCRFailureRates,
)

#: Avionics cabinet FCR labels (matches :func:`avionics_hw`).
_AVIONICS_FCRS = tuple(f"fcr{i}" for i in range(1, 7))

#: Automotive zone FCR labels (matches :func:`automotive_hw`).
_AUTOMOTIVE_ZONES = tuple(f"zone{i}" for i in range(1, 5))


def avionics_failure_rates() -> FCRFailureRates:
    """Per-cabinet rates: rare permanent losses, occasional transients.

    Cabinets 1-2 carry location-bound resources (sensor bus, display
    head) and are built more robust — half the baseline rates.
    """
    permanent = {fcr: 0.004 for fcr in _AVIONICS_FCRS}
    transient = {fcr: 0.02 for fcr in _AVIONICS_FCRS}
    for hardened in ("fcr1", "fcr2"):
        permanent[hardened] = 0.002
        transient[hardened] = 0.01
    return FCRFailureRates(
        permanent=permanent,
        transient=transient,
        link_rate=0.0005,
        mean_repair_time=6.0,
    )


def avionics_cabinet_loss() -> FailureScenario:
    """Cabinet loss drill on the 6-node avionics platform.

    A spare cabinet dies outright, another rides out a transient outage,
    then the display-head cabinet (``cab2``) is lost — forcing the
    planner to shed the display function (class C) rather than anything
    flight-critical.
    """
    return FailureScenario(
        name="avionics-cabinet-loss",
        events=(
            FailureEvent(time=10.0, kind=FailureKind.PERMANENT_NODE, node="cab4"),
            FailureEvent(
                time=40.0,
                kind=FailureKind.TRANSIENT_NODE,
                node="cab5",
                repair_time=6.0,
            ),
            FailureEvent(time=70.0, kind=FailureKind.PERMANENT_NODE, node="cab2"),
        ),
        description="spare cabinet lost, transient outage, display cabinet lost",
    )


def automotive_failure_rates() -> FCRFailureRates:
    """Per-zone ECU rates: automotive-grade transients dominate."""
    return FCRFailureRates(
        permanent={zone: 0.003 for zone in _AUTOMOTIVE_ZONES},
        transient={zone: 0.03 for zone in _AUTOMOTIVE_ZONES},
        link_rate=0.002,
        mean_repair_time=3.0,
    )


def automotive_zone_loss() -> FailureScenario:
    """Zone-loss drill on the 4-ECU ring.

    A transient brown-out on a spare ECU, then permanent loss of the
    pedal-bus ECU (``ecu1``), then a ring-link cut between the
    survivors.
    """
    return FailureScenario(
        name="automotive-zone-loss",
        events=(
            FailureEvent(
                time=5.0,
                kind=FailureKind.TRANSIENT_NODE,
                node="ecu4",
                repair_time=3.0,
            ),
            FailureEvent(time=12.0, kind=FailureKind.PERMANENT_NODE, node="ecu1"),
            FailureEvent(time=20.0, kind=FailureKind.LINK, link=("ecu2", "ecu3")),
        ),
        description="ECU brown-out, pedal-bus ECU lost, ring link cut",
    )
