"""Exception hierarchy for the DDSI framework.

Every error raised by the library derives from :class:`DDSIError`, so callers
can catch one base class at API boundaries.  Sub-hierarchies mirror the major
subsystems: model construction, composition rules, influence computation,
scheduling, and allocation.
"""

from __future__ import annotations


class DDSIError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(DDSIError):
    """Invalid FCM model construction or mutation."""


class HierarchyError(ModelError):
    """Violation of the FCM hierarchy structure (levels, tree shape)."""


class AttributeError_(ModelError):
    """Invalid FCM attribute value or combination.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`AttributeError`.
    """


class CompositionError(DDSIError):
    """A composition operation violates rules R1-R5."""


class RuleViolation(CompositionError):
    """A specific integration rule was violated.

    Attributes:
        rule: Rule identifier, e.g. ``"R2"``.
    """

    def __init__(self, rule: str, message: str) -> None:
        super().__init__(f"{rule}: {message}")
        self.rule = rule


class InfluenceError(DDSIError):
    """Invalid influence/separation computation input."""


class ProbabilityError(InfluenceError):
    """A probability value fell outside [0, 1]."""


class GraphError(DDSIError):
    """Invalid graph operation (missing node, duplicate edge, ...)."""


class SchedulingError(DDSIError):
    """Invalid scheduling input (e.g. negative computation time)."""


class AllocationError(DDSIError):
    """SW-to-HW allocation failed or received inconsistent input."""


class InfeasibleAllocationError(AllocationError):
    """No feasible assignment of SW FCMs to HW nodes exists.

    Raised, for example, when replication requirements exceed the number of
    hardware nodes (the paper's ``three concurrent copies on a 2-node HW
    configuration`` problem).
    """


class ConstraintViolation(AllocationError):
    """A hard constraint (replica separation, schedulability, resources)
    would be violated by a proposed combination or mapping."""


class VerificationError(DDSIError):
    """A verification check failed."""


class SimulationError(DDSIError):
    """Fault-injection simulation received invalid configuration."""


class ObservabilityError(DDSIError):
    """Invalid trace/metrics input: malformed NDJSON, unwritable sink,
    or a metric registered twice with conflicting types."""


class ExecutionError(DDSIError):
    """The supervised campaign runner failed permanently.

    Raised when a batch cannot be completed even after the full
    degradation ladder (pool retries, batch splitting, serial fallback),
    or when the runner receives inconsistent configuration."""


class CheckpointError(ExecutionError):
    """A campaign checkpoint cannot be used for resume.

    Raised on fingerprint mismatch (the checkpoint belongs to a different
    campaign) or an unreadable checkpoint file.  Corrupt *trailing* lines
    are not an error — they are reported and their batches recomputed."""


class CampaignInterrupted(ExecutionError):
    """The runner was interrupted mid-campaign (chaos or signal).

    Completed batches are already in the checkpoint; the run can be
    continued with ``resume``."""
