"""Hardware failure models: what goes wrong, where, and when.

Three failure classes cover the paper's FCR argument (§5.1 — "a HW fault
is assumed contained within one FCR"):

* *permanent node loss* — the processor never returns;
* *transient node outage* — the processor returns after a repair time;
* *link failure* — one communication link drops (permanently).

Failures are drawn from per-FCR rates (:class:`FCRFailureRates`) as
competing exponential clocks, or scripted explicitly as a
:class:`FailureScenario` — the DAVOS-style campaign input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SimulationError
from repro.allocation.hw_model import HWGraph


class FailureKind(Enum):
    """Hardware failure classes."""

    PERMANENT_NODE = "permanent"
    TRANSIENT_NODE = "transient"
    LINK = "link"


@dataclass(frozen=True)
class FailureEvent:
    """One hardware failure at a point in simulated time.

    Attributes:
        time: Simulated time of occurrence (>= 0).
        kind: Failure class.
        node: Failed node name (node failures).
        link: Failed link endpoints, sorted (link failures).
        repair_time: Outage duration for transient failures (> 0).
    """

    time: float
    kind: FailureKind
    node: str | None = None
    link: tuple[str, str] | None = None
    repair_time: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise SimulationError("failure time must be >= 0")
        if self.kind is FailureKind.LINK:
            if self.link is None or self.node is not None:
                raise SimulationError("link failures carry link=, not node=")
        else:
            if self.node is None or self.link is not None:
                raise SimulationError("node failures carry node=, not link=")
        if self.kind is FailureKind.TRANSIENT_NODE and self.repair_time <= 0.0:
            raise SimulationError("transient failures need repair_time > 0")
        if self.kind is not FailureKind.TRANSIENT_NODE and self.repair_time != 0.0:
            raise SimulationError("only transient failures carry a repair_time")


@dataclass(frozen=True)
class FailureScenario:
    """A named, scripted failure sequence (events in time order)."""

    name: str
    events: tuple[FailureEvent, ...]
    description: str = ""

    def __post_init__(self) -> None:
        times = [event.time for event in self.events]
        if times != sorted(times):
            raise SimulationError("scenario events must be in time order")


@dataclass(frozen=True)
class FCRFailureRates:
    """Per-FCR failure rates (exponential, per unit of simulated time).

    Attributes:
        permanent: FCR label -> permanent node-loss rate.
        transient: FCR label -> transient outage rate.
        link_rate: Rate per HW link for permanent link failures.
        mean_repair_time: Mean of the (exponential) transient repair time.
    """

    permanent: dict[str, float] = field(default_factory=dict)
    transient: dict[str, float] = field(default_factory=dict)
    link_rate: float = 0.0
    mean_repair_time: float = 5.0

    def __post_init__(self) -> None:
        for label, rate in {**self.permanent, **self.transient}.items():
            if rate < 0.0:
                raise SimulationError(f"negative failure rate for FCR {label!r}")
        if self.link_rate < 0.0:
            raise SimulationError("link_rate must be >= 0")
        if self.mean_repair_time <= 0.0:
            raise SimulationError("mean_repair_time must be > 0")

    @classmethod
    def uniform(
        cls,
        hw: HWGraph,
        permanent: float = 0.005,
        transient: float = 0.02,
        link_rate: float = 0.0,
        mean_repair_time: float = 5.0,
    ) -> "FCRFailureRates":
        """Identical rates for every FCR present in ``hw``."""
        fcrs = sorted({hw.fcr_of(name) for name in hw.names()})
        return cls(
            permanent={fcr: permanent for fcr in fcrs},
            transient={fcr: transient for fcr in fcrs},
            link_rate=link_rate,
            mean_repair_time=mean_repair_time,
        )

    def permanent_rate(self, fcr: str) -> float:
        return self.permanent.get(fcr, 0.0)

    def transient_rate(self, fcr: str) -> float:
        return self.transient.get(fcr, 0.0)


def draw_failure_sequence(
    hw: HWGraph,
    rates: FCRFailureRates,
    count: int,
    rng: random.Random,
    horizon: float | None = None,
) -> list[FailureEvent]:
    """Draw up to ``count`` failures as competing exponential clocks.

    Each alive node contributes its FCR's permanent and transient rates;
    each intact link contributes ``link_rate``.  A permanently failed node
    stops failing (it is gone); transiently failed nodes may fail again —
    the planner treats overlapping outages cumulatively.  Returns fewer
    than ``count`` events when the horizon is reached or every rate has
    burned out.
    """
    if count < 0:
        raise SimulationError("count must be >= 0")
    alive = sorted(hw.names())
    intact_links = sorted((a, b) for a, b, _cost in hw.all_links())
    events: list[FailureEvent] = []
    now = 0.0
    while len(events) < count:
        choices: list[tuple[float, FailureKind, str | tuple[str, str]]] = []
        for name in alive:
            fcr = hw.fcr_of(name)
            if rates.permanent_rate(fcr) > 0.0:
                choices.append(
                    (rates.permanent_rate(fcr), FailureKind.PERMANENT_NODE, name)
                )
            if rates.transient_rate(fcr) > 0.0:
                choices.append(
                    (rates.transient_rate(fcr), FailureKind.TRANSIENT_NODE, name)
                )
        if rates.link_rate > 0.0:
            for link in intact_links:
                if link[0] in alive and link[1] in alive:
                    choices.append((rates.link_rate, FailureKind.LINK, link))
        total = sum(rate for rate, _kind, _target in choices)
        if total <= 0.0:
            break
        now += rng.expovariate(total)
        if horizon is not None and now >= horizon:
            break
        pick = rng.random() * total
        for rate, kind, target in choices:
            pick -= rate
            if pick <= 0.0:
                break
        if kind is FailureKind.LINK:
            assert isinstance(target, tuple)
            events.append(FailureEvent(time=now, kind=kind, link=target))
            intact_links.remove(target)
        elif kind is FailureKind.PERMANENT_NODE:
            assert isinstance(target, str)
            events.append(FailureEvent(time=now, kind=kind, node=target))
            alive.remove(target)
        else:
            assert isinstance(target, str)
            repair = rng.expovariate(1.0 / rates.mean_repair_time)
            events.append(
                FailureEvent(time=now, kind=kind, node=target, repair_time=repair)
            )
    return events
