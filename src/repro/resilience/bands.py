"""Criticality classes for degraded-mode accounting.

The paper treats criticality as a continuous attribute; degraded-mode
reporting needs discrete *classes* ("did we keep every class-A function
alive?"), in the spirit of DO-178B/ISO 26262 assurance levels.  A
:class:`CriticalityBands` maps each process's criticality — as a fraction
of the system's maximum — onto the labels ``A`` (most critical), ``B``,
``C``.  Replicas inherit the class of their origin process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.allocation.clustering import ClusterState
from repro.influence.influence_graph import InfluenceGraph

#: Class labels, most critical first.
CLASS_LABELS: tuple[str, str, str] = ("A", "B", "C")


@dataclass(frozen=True)
class CriticalityBands:
    """Fractional thresholds splitting criticality into classes.

    A process whose criticality is at least ``a_floor`` times the system
    maximum is class ``A``; at least ``b_floor`` times, class ``B``;
    anything below is class ``C``.
    """

    a_floor: float = 0.6
    b_floor: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.b_floor < self.a_floor <= 1.0:
            raise SimulationError(
                "bands need 0 < b_floor < a_floor <= 1, got "
                f"({self.a_floor}, {self.b_floor})"
            )

    def classify(self, fraction: float) -> str:
        """Class label for a criticality fraction in [0, 1]."""
        if fraction >= self.a_floor:
            return "A"
        if fraction >= self.b_floor:
            return "B"
        return "C"


DEFAULT_BANDS = CriticalityBands()


def origin_of(graph: InfluenceGraph, name: str) -> str:
    """The original process a node stands for (itself unless a replica)."""
    fcm = graph.fcm(name)
    return fcm.replica_of or fcm.name


def process_classes(
    graph: InfluenceGraph,
    bands: CriticalityBands = DEFAULT_BANDS,
) -> dict[str, str]:
    """Class label per *origin* process of the (expanded) graph.

    Replicas collapse onto their origin; criticality fractions are taken
    against the highest process criticality in the system.
    """
    crits: dict[str, float] = {}
    for fcm in graph.fcms():
        origin = fcm.replica_of or fcm.name
        crit = fcm.attributes.criticality
        crits[origin] = max(crits.get(origin, 0.0), crit)
    if not crits:
        return {}
    top = max(crits.values())
    if top <= 0.0:
        return {origin: CLASS_LABELS[-1] for origin in crits}
    return {origin: bands.classify(crit / top) for origin, crit in crits.items()}


def cluster_class(
    state: ClusterState,
    index: int,
    bands: CriticalityBands = DEFAULT_BANDS,
) -> str:
    """Class of a cluster: the best class among its members' origins."""
    classes = process_classes(state.graph, bands)
    member_classes = {
        classes[origin_of(state.graph, member)]
        for member in state.clusters[index].members
    }
    for label in CLASS_LABELS:
        if label in member_classes:
            return label
    return CLASS_LABELS[-1]
