"""Recovery policies: restart, retry, failover.

De Florio & Deconinck's REL makes recovery actions first-class vocabulary;
we model the three the paper's degraded-mode story needs, each with a
simulated-time cost and a success probability:

* :class:`RestartInPlace` — the node returns (transient outage) and the
  cluster restarts on it;
* :class:`BoundedRetry` — redeploy attempts with a bounded attempt count
  (permanent loss with spare capacity, or a failed restart);
* :class:`FailoverToReplica` — switch to an already-running replica; the
  cheapest action, only available when FT replication left a live copy.

:func:`recover_cluster` is the decision ladder the campaign driver walks
for each displaced cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of one recovery attempt chain.

    Attributes:
        policy: Which policy (chain) ran, e.g. ``"failover"`` or
            ``"restart+retry"``.
        succeeded: Whether service was restored.
        attempts: Total attempts consumed across the chain.
        duration: Simulated time from failure to restoration (or to
            giving up).
    """

    policy: str
    succeeded: bool
    attempts: int
    duration: float


def _check_probability(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise SimulationError(f"probability must be in [0, 1], got {value}")


def _check_duration(value: float) -> None:
    if value < 0.0:
        raise SimulationError(f"duration must be >= 0, got {value}")


@dataclass(frozen=True)
class RestartInPlace:
    """Restart the cluster on its (repaired) node."""

    restart_time: float = 2.0
    success_probability: float = 0.9

    def __post_init__(self) -> None:
        _check_probability(self.success_probability)
        _check_duration(self.restart_time)

    def attempt(self, rng: random.Random) -> RecoveryResult:
        succeeded = rng.random() < self.success_probability
        return RecoveryResult("restart", succeeded, 1, self.restart_time)


@dataclass(frozen=True)
class BoundedRetry:
    """Redeploy with at most ``max_attempts`` tries."""

    max_attempts: int = 3
    attempt_time: float = 1.5
    success_probability: float = 0.7

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError("max_attempts must be >= 1")
        _check_probability(self.success_probability)
        _check_duration(self.attempt_time)

    def attempt(self, rng: random.Random) -> RecoveryResult:
        duration = 0.0
        for attempt in range(1, self.max_attempts + 1):
            duration += self.attempt_time
            if rng.random() < self.success_probability:
                return RecoveryResult("retry", True, attempt, duration)
        return RecoveryResult("retry", False, self.max_attempts, duration)


@dataclass(frozen=True)
class FailoverToReplica:
    """Switch service to a live replica; succeeds whenever one exists."""

    switch_time: float = 0.5

    def __post_init__(self) -> None:
        _check_duration(self.switch_time)

    def attempt(self, rng: random.Random) -> RecoveryResult:
        return RecoveryResult("failover", True, 1, self.switch_time)


@dataclass(frozen=True)
class RecoveryPolicySet:
    """The three policies a campaign composes."""

    restart: RestartInPlace = field(default_factory=RestartInPlace)
    retry: BoundedRetry = field(default_factory=BoundedRetry)
    failover: FailoverToReplica = field(default_factory=FailoverToReplica)


DEFAULT_POLICIES = RecoveryPolicySet()


def recover_cluster(
    policies: RecoveryPolicySet,
    rng: random.Random,
    masked: bool,
    transient: bool,
    repair_time: float = 0.0,
    replaced: bool = True,
) -> RecoveryResult:
    """Recovery decision ladder for one displaced cluster.

    ``masked`` — a live replica covers the function: failover.
    ``transient`` — the node returns after ``repair_time``: restart in
    place once repaired, falling back to bounded retry elsewhere.
    Otherwise (permanent loss) — bounded-retry redeploy if the planner
    found a new home (``replaced``); with no home left the cluster stays
    down and the result reports failure in zero time.
    """
    if masked:
        return policies.failover.attempt(rng)
    if transient:
        restart = policies.restart.attempt(rng)
        if restart.succeeded:
            return RecoveryResult(
                "restart", True, restart.attempts, repair_time + restart.duration
            )
        retry = policies.retry.attempt(rng)
        return RecoveryResult(
            "restart+retry",
            retry.succeeded,
            restart.attempts + retry.attempts,
            repair_time + restart.duration + retry.duration,
        )
    if replaced:
        return policies.retry.attempt(rng)
    return RecoveryResult("none", False, 0, 0.0)
