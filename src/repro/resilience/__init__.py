"""Degraded-mode resilience: failure injection, remapping, recovery.

The paper argues for FT replication (§5.4) and for clustering strongly
interacting FCMs (§5.3) so the integrated system *survives hardware
faults* — this package closes the loop by actually killing HW nodes and
measuring what remains:

* :mod:`repro.resilience.bands` — criticality classes (A/B/C) used for
  degraded-mode accounting;
* :mod:`repro.resilience.failures` — failure models: permanent node loss,
  transient outage with repair time, link failure, drawn from per-FCR
  rates or scripted as :class:`FailureScenario`;
* :mod:`repro.resilience.degradation` — the planner that re-homes
  clusters on the surviving HW, shedding the least critical ones when
  capacity runs out, replica separation preserved;
* :mod:`repro.resilience.recovery` — restart / retry / failover policies
  with simulated-time cost (REL recovery vocabulary);
* :mod:`repro.resilience.campaign` — failure campaigns over simulated
  time reporting availability per criticality class, shed counts, and
  time-to-recover percentiles.
"""

from repro.resilience.bands import (
    DEFAULT_BANDS,
    CriticalityBands,
    cluster_class,
    origin_of,
    process_classes,
)
from repro.resilience.campaign import (
    ResilienceReport,
    replay_scenario,
    run_resilience_campaign,
)
from repro.resilience.degradation import (
    DegradationPlan,
    plan_degradation,
    surviving_hw,
)
from repro.resilience.failures import (
    FailureEvent,
    FailureKind,
    FailureScenario,
    FCRFailureRates,
    draw_failure_sequence,
)
from repro.resilience.recovery import (
    DEFAULT_POLICIES,
    BoundedRetry,
    FailoverToReplica,
    RecoveryPolicySet,
    RecoveryResult,
    RestartInPlace,
    recover_cluster,
)

__all__ = [
    "BoundedRetry",
    "CriticalityBands",
    "DEFAULT_BANDS",
    "DEFAULT_POLICIES",
    "DegradationPlan",
    "FCRFailureRates",
    "FailoverToReplica",
    "FailureEvent",
    "FailureKind",
    "FailureScenario",
    "RecoveryPolicySet",
    "RecoveryResult",
    "ResilienceReport",
    "RestartInPlace",
    "cluster_class",
    "draw_failure_sequence",
    "origin_of",
    "plan_degradation",
    "process_classes",
    "recover_cluster",
    "replay_scenario",
    "run_resilience_campaign",
    "surviving_hw",
]
