"""Resilience campaigns: failure sequences over simulated time.

Where :mod:`repro.faultsim.campaign` asks *how far does a SW fault
travel?*, a resilience campaign asks the paper-central question the
static pipeline never answers: *when HW nodes die, does the integrated
system degrade gracefully?*  Each trial draws a failure sequence
(:mod:`repro.resilience.failures`), re-plans the mapping after every
event (:mod:`repro.resilience.degradation`), walks the recovery ladder
per displaced cluster (:mod:`repro.resilience.recovery`), and charges
downtime to every origin process left without a live copy.  The report
aggregates availability per criticality class, shedding, separation
violations, and time-to-recover percentiles.

Campaigns execute through :mod:`repro.exec` with per-trial seeds, so a
report is bit-identical whether it was computed serially, on a worker
pool, or resumed from a checkpoint mid-run (see docs/EXECUTION.md).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.exec.batching import derive_seed
from repro.exec.runner import ExecPolicy, ExecReport, run_supervised
from repro.faultsim.engine import record_engine_decision, resolve_engine
from repro.allocation.constraints import ResourceRequirements
from repro.core.results import IntegrationOutcome
from repro.obs import current
from repro.resilience.bands import (
    CLASS_LABELS,
    DEFAULT_BANDS,
    CriticalityBands,
    origin_of,
    process_classes,
)
from repro.resilience.degradation import plan_degradation
from repro.resilience.failures import (
    FailureEvent,
    FailureKind,
    FailureScenario,
    FCRFailureRates,
    draw_failure_sequence,
)
from repro.resilience.recovery import (
    DEFAULT_POLICIES,
    RecoveryPolicySet,
    recover_cluster,
)


@dataclass(frozen=True)
class ResilienceReport:
    """Aggregates of one resilience campaign.

    Attributes:
        trials: Number of simulated failure sequences.
        failures_per_trial: Failure budget per sequence (drawn sequences
            may be shorter when rates burn out).
        horizon: Simulated-time horizon per trial.
        availability: Criticality class -> mean availability in [0, 1].
        class_sizes: Criticality class -> number of origin processes.
        mean_clusters_shed: Mean (over trials) of the worst concurrent
            shed-cluster count.
        max_clusters_shed: Worst concurrent shed count over all trials.
        separation_violations: Degraded plans that violated replica
            separation (must stay 0 for a sound planner).
        class_a_outages: Trials in which some class-A process lost every
            hosted copy at least once.
        recoveries: Successful recovery actions across all trials.
        recovery_p50: Median time-to-recover.
        recovery_p95: 95th-percentile time-to-recover.
        recovery_worst: Worst time-to-recover.
        elapsed_s: Wall time of the campaign loop (``perf_counter``;
            excluded from equality so seeded reruns still compare equal).
        trials_per_s: Campaign throughput (also excluded from equality).
        exec_report: How the supervised runner completed the campaign
            (also excluded from equality).
    """

    trials: int
    failures_per_trial: int
    horizon: float
    availability: dict[str, float] = field(default_factory=dict)
    class_sizes: dict[str, int] = field(default_factory=dict)
    mean_clusters_shed: float = 0.0
    max_clusters_shed: int = 0
    separation_violations: int = 0
    class_a_outages: int = 0
    recoveries: int = 0
    recovery_p50: float = 0.0
    recovery_p95: float = 0.0
    recovery_worst: float = 0.0
    elapsed_s: float = field(default=0.0, compare=False)
    trials_per_s: float = field(default=0.0, compare=False)
    exec_report: ExecReport | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def min_availability(self) -> float:
        """The worst class availability (1.0 when no classes exist)."""
        return min(self.availability.values(), default=1.0)


def run_resilience_campaign(
    outcome: IntegrationOutcome,
    failures: int = 2,
    trials: int = 100,
    seed: int = 0,
    horizon: float = 100.0,
    rates: FCRFailureRates | None = None,
    policies: RecoveryPolicySet | None = None,
    bands: CriticalityBands = DEFAULT_BANDS,
    resources: ResourceRequirements | None = None,
    approach: str = "a",
    scenario: FailureScenario | None = None,
    policy: ExecPolicy | None = None,
    checkpoint: str | None = None,
    resume: str | None = None,
    chaos=None,
    engine: str = "auto",
) -> ResilienceReport:
    """Run ``trials`` failure sequences against an integrated system.

    With ``scenario`` given, every trial replays the same scripted events
    (recovery outcomes still vary by trial); otherwise each trial draws
    ``failures`` events from ``rates`` (uniform per-FCR defaults).

    Trial ``t`` always runs on ``random.Random(derive_seed(seed, t))``,
    so the report does not depend on ``policy`` (workers, batch size),
    retries, or checkpoint/resume history.

    ``engine="vector"`` accelerates the *planning* side of each trial:
    the outcome's influence graph and combination policy are compiled
    once (shared with the allocation engine's compile cache), degraded
    mappings are memoized by ``(failed nodes, failed links)`` — re-
    planning is deterministic, so a repeated failure state reuses the
    plan — and origin lookups are precomputed.  The stochastic side
    (failure draws, recovery outcomes) stays on the same per-trial
    ``random.Random(derive_seed(seed, t))`` streams, so vector reports
    are **bit-identical** to scalar ones at equal seeds — unlike the
    fault campaign, where the two engines draw different streams and
    agree statistically.  One observable difference: memoized re-plans
    skip ``plan_degradation``'s recorder events, so ``degrade_plans_
    total`` counts planned *states*, not events, under vector.
    """
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    choice = resolve_engine(engine)
    record_engine_decision("resilience", choice)
    if failures < 1 and scenario is None:
        raise SimulationError("failures must be >= 1")
    if horizon <= 0.0:
        raise SimulationError("horizon must be > 0")
    hw = outcome.mapping.hw
    rates = rates or FCRFailureRates.uniform(hw)
    policies = policies or DEFAULT_POLICIES
    state = outcome.condensation.state
    graph = state.graph
    classes = process_classes(graph, bands)
    origins = sorted(classes)

    if choice.is_vector:
        if not state.is_compiled:
            from repro.allocation.compiled import compile_policy
            from repro.faultsim.kernel import compile_graph
            from repro.graphs.matrix import CompiledInfluence

            compiled_graph = compile_graph(graph)
            state.attach_compiled(
                influence=CompiledInfluence.from_weights(
                    compiled_graph.names, compiled_graph.weights
                ),
                policy=compile_policy(graph, state.policy),
            )

        plan_memo: dict[tuple, object] = {}

        def planner(failed_now, links):
            key = (failed_now, links)
            plan = plan_memo.get(key)
            if plan is None:
                # plan_degradation is deterministic (rng-free), so one
                # plan per failure state serves every trial that reaches
                # it; trials copy the plan's dicts before mutating.
                plan = plan_degradation(
                    outcome,
                    list(failed_now),
                    failed_links=links,
                    approach=approach,
                    resources=resources,
                    bands=bands,
                )
                plan_memo[key] = plan
            return plan

        origin_cache: dict[str, str] = {}

        def origin(member: str) -> str:
            cached = origin_cache.get(member)
            if cached is None:
                cached = origin_of(graph, member)
                origin_cache[member] = cached
            return cached
    else:

        def planner(failed_now, links):
            return plan_degradation(
                outcome,
                list(failed_now),
                failed_links=links,
                approach=approach,
                resources=resources,
                bands=bands,
            )

        def origin(member: str) -> str:
            return origin_of(graph, member)

    def run_batch(start: int, size: int, campaign_seed: int) -> dict:
        records = []
        for trial in range(start, start + size):
            rng = random.Random(derive_seed(campaign_seed, trial))
            if scenario is not None:
                events = [e for e in scenario.events if e.time < horizon]
            else:
                events = draw_failure_sequence(hw, rates, failures, rng, horizon)
            kinds: dict[str, int] = {}
            for event in events:
                label = event.kind.name.lower()
                kinds[label] = kinds.get(label, 0) + 1
            downtime, shed, violations, a_outage, recoveries = _simulate_trial(
                outcome, events, rng, horizon, policies, planner, origin,
            )
            records.append(
                {
                    "downtime": downtime,
                    "shed": shed,
                    "violations": violations,
                    "a_outage": a_outage,
                    "recoveries": recoveries,
                    "failure_kinds": kinds,
                }
            )
        return {"records": records}

    rec = current()
    exec_policy = policy or ExecPolicy(batch_size=trials)
    availability_sums = {origin: 0.0 for origin in origins}
    shed_total = 0
    shed_worst = 0
    separation_violations = 0
    class_a_outages = 0
    recovery_durations: list[float] = []

    t0 = time.perf_counter()
    with rec.span(
        "resilience.campaign",
        trials=trials,
        failures=failures,
        seed=seed,
        horizon=horizon,
        scripted=scenario is not None,
        workers=exec_policy.workers,
        engine=choice.engine,
    ):
        payloads, exec_report = run_supervised(
            run_batch,
            trials=trials,
            seed=seed,
            kind="resilience",
            params={
                "failures": failures,
                "horizon": horizon,
                "approach": approach,
                "scripted": scenario.name if scenario is not None else None,
                "system": outcome.system_name,
            },
            policy=exec_policy,
            combine=lambda a, b: {"records": a["records"] + b["records"]},
            checkpoint=checkpoint,
            resume=resume,
            chaos=chaos,
        )
        for payload in payloads:
            for record in payload["records"]:
                downtime = record["downtime"]
                for origin in origins:
                    lost = min(downtime.get(origin, 0.0), horizon)
                    availability_sums[origin] += 1.0 - lost / horizon
                shed_total += record["shed"]
                shed_worst = max(shed_worst, record["shed"])
                separation_violations += record["violations"]
                if record["a_outage"]:
                    class_a_outages += 1
                recovery_durations.extend(record["recoveries"])
                if rec.enabled:
                    for label, count in record["failure_kinds"].items():
                        rec.counter("resilience_failures_total").inc(
                            count, kind=label
                        )
    elapsed = time.perf_counter() - t0
    rate = trials / elapsed if elapsed > 0 else 0.0
    if rec.enabled:
        rec.counter("resilience_trials_total").inc(trials)
        rec.gauge("resilience_trials_per_s").set(rate)
        # Simulated-time buckets (same units as ``horizon``), not seconds.
        recovery_hist = rec.histogram(
            "resilience_recovery_duration",
            buckets=(0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0),
        )
        for duration in recovery_durations:
            recovery_hist.observe(duration)

    class_sizes: dict[str, int] = {}
    class_availability: dict[str, float] = {}
    for label in CLASS_LABELS:
        members = [origin for origin in origins if classes[origin] == label]
        if not members:
            continue
        class_sizes[label] = len(members)
        class_availability[label] = sum(
            availability_sums[origin] / trials for origin in members
        ) / len(members)

    ordered = sorted(recovery_durations)
    return ResilienceReport(
        trials=trials,
        failures_per_trial=failures if scenario is None else len(scenario.events),
        horizon=horizon,
        availability=class_availability,
        class_sizes=class_sizes,
        mean_clusters_shed=shed_total / trials,
        max_clusters_shed=shed_worst,
        separation_violations=separation_violations,
        class_a_outages=class_a_outages,
        recoveries=len(ordered),
        recovery_p50=_percentile(ordered, 0.50),
        recovery_p95=_percentile(ordered, 0.95),
        recovery_worst=ordered[-1] if ordered else 0.0,
        elapsed_s=elapsed,
        trials_per_s=rate,
        exec_report=exec_report,
    )


def replay_scenario(
    outcome: IntegrationOutcome,
    scenario: FailureScenario,
    seed: int = 0,
    horizon: float | None = None,
    policies: RecoveryPolicySet | None = None,
    bands: CriticalityBands = DEFAULT_BANDS,
    resources: ResourceRequirements | None = None,
    approach: str = "a",
) -> ResilienceReport:
    """Replay one scripted scenario once (a single deterministic trial)."""
    if horizon is None:
        last = max((event.time for event in scenario.events), default=0.0)
        horizon = last + 20.0
    return run_resilience_campaign(
        outcome,
        trials=1,
        seed=seed,
        horizon=horizon,
        policies=policies,
        bands=bands,
        resources=resources,
        approach=approach,
        scenario=scenario,
    )


def _simulate_trial(
    outcome: IntegrationOutcome,
    events: list[FailureEvent],
    rng: random.Random,
    horizon: float,
    policies: RecoveryPolicySet,
    planner,
    origin,
) -> tuple[dict[str, float], int, int, bool, list[float]]:
    """One failure sequence; returns (downtime per origin, worst shed
    count, separation violations, class-A outage happened, recovery
    durations).

    ``planner(failed_nodes, failed_links)`` supplies the degraded plan
    for a failure state (possibly memoized — the trial copies the plan's
    dicts before mutating them); ``origin(member)`` resolves a member
    name to its origin process (possibly cached)."""
    state = outcome.condensation.state
    perm_failed: set[str] = set()
    transient_down: dict[str, float] = {}
    failed_links: list[tuple[str, str]] = []
    hosting: dict[int, str] = dict(outcome.mapping.assignment)
    hosted_members: dict[int, tuple[str, ...]] = {
        index: state.clusters[index].members for index in hosting
    }
    downtime: dict[str, float] = {}
    recovery_durations: list[float] = []
    shed_worst = 0
    violations = 0
    a_outage = False

    for event in events:
        now = event.time
        transient_down = {
            node: end for node, end in transient_down.items() if end > now
        }
        if event.kind is FailureKind.PERMANENT_NODE:
            assert event.node is not None
            perm_failed.add(event.node)
        elif event.kind is FailureKind.TRANSIENT_NODE:
            assert event.node is not None
            transient_down[event.node] = max(
                transient_down.get(event.node, 0.0), now + event.repair_time
            )
        else:
            assert event.link is not None
            failed_links.append(event.link)

        failed_now = perm_failed | set(transient_down)
        plan = planner(tuple(sorted(failed_now)), tuple(failed_links))
        shed_worst = max(shed_worst, len(plan.shed))
        if not plan.separation_ok:
            violations += 1
        if any(label == "A" for label in plan.uncovered_classes.values()):
            a_outage = True

        # Copies still alive on up nodes, before re-homing: the masking set.
        live_origins: set[str] = set()
        for index, node in hosting.items():
            if node in failed_now:
                continue
            for member in hosted_members[index]:
                live_origins.add(origin(member))

        displaced = (
            [i for i, node in hosting.items() if node == event.node]
            if event.node is not None
            else []
        )
        for index in sorted(displaced):
            members = hosted_members[index]
            masked = all(origin(m) in live_origins for m in members)
            result = recover_cluster(
                policies,
                rng,
                masked=masked,
                transient=event.kind is FailureKind.TRANSIENT_NODE,
                repair_time=event.repair_time,
                replaced=index in plan.assignment,
            )
            if result.succeeded:
                recovery_durations.append(result.duration)
            remaining = horizon - now
            for member in members:
                source = origin(member)
                if source in live_origins:
                    continue  # replication masks the loss for this process
                if result.succeeded:
                    lost = min(result.duration, remaining)
                else:
                    lost = remaining
                downtime[source] = downtime.get(source, 0.0) + lost

        hosting = dict(plan.assignment)
        hosted_members = dict(plan.hosted_members)

    return downtime, shed_worst, violations, a_outage, recovery_durations


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]
