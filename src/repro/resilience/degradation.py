"""Degraded-mode planning: re-home clusters after HW failures.

Given an :class:`IntegrationOutcome` and a set of failed nodes, the
planner re-maps the software onto the surviving HW graph with the same
§5.4 mapping approaches used at integration time.  When the survivors
cannot host everything, the planner degrades in preference order:

1. *split* clusters holding members whose required resource no surviving
   node offers, shedding only those members (a stranded sensor driver
   must not drag flight control down with it);
2. *shed* whole clusters — preferring clusters whose every member is
   still covered by a replica elsewhere (losing them costs no function),
   then ascending criticality — until the survivors can host the rest;
3. verify the replica-separation invariant (§5.4: no two replicas of one
   module co-located) on the degraded mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, InfeasibleAllocationError
from repro.allocation.clustering import seeded_state
from repro.allocation.constraints import ResourceRequirements
from repro.allocation.hw_model import HWGraph
from repro.allocation.mapping import Mapping, map_approach_a, map_approach_b
from repro.core.results import IntegrationOutcome
from repro.obs import current
from repro.resilience.bands import (
    DEFAULT_BANDS,
    CriticalityBands,
    origin_of,
    process_classes,
)


def surviving_hw(
    hw: HWGraph,
    failed_nodes: tuple[str, ...] | list[str] | set[str],
    failed_links: tuple[tuple[str, str], ...] = (),
) -> HWGraph:
    """The HW graph minus failed nodes and links (incident links go too)."""
    failed = set(failed_nodes)
    unknown = failed - set(hw.names())
    if unknown:
        raise AllocationError(f"unknown HW nodes failed: {sorted(unknown)!r}")
    down_links = {frozenset(link) for link in failed_links}
    out = HWGraph()
    for node in hw.nodes():
        if node.name not in failed:
            out.add_node(node)
    for a, b, cost in hw.all_links():
        if a in failed or b in failed or frozenset((a, b)) in down_links:
            continue
        out.add_link(a, b, cost)
    return out


@dataclass
class DegradationPlan:
    """Result of degraded-mode planning after a failure set.

    Attributes:
        failed_nodes: The failed HW nodes the plan reacted to.
        hw: The surviving HW graph.
        mapping: Degraded mapping of the retained clusters (``None`` when
            nothing could be placed).
        assignment: Original cluster index -> surviving HW node.
        hosted_members: Original cluster index -> members actually hosted
            there (smaller than the original cluster when it was split).
        retained: Original indices of clusters that kept a home.
        shed: Original indices of clusters dropped entirely.
        shed_labels: Display labels of the shed clusters.
        shed_members: Members dropped by splitting stranded clusters.
        uncovered: Origin processes with *no* hosted copy left.
        uncovered_classes: Criticality class of each uncovered process.
        separation_ok: Replica separation holds on the degraded mapping.
        separation_violations: Human-readable separation violations.
        notes: Planner decisions (splits, shedding, fallbacks).
    """

    failed_nodes: tuple[str, ...]
    hw: HWGraph
    mapping: Mapping | None
    assignment: dict[int, str]
    hosted_members: dict[int, tuple[str, ...]]
    retained: tuple[int, ...]
    shed: tuple[int, ...]
    shed_labels: tuple[str, ...]
    shed_members: tuple[str, ...]
    uncovered: tuple[str, ...]
    uncovered_classes: dict[str, str]
    separation_ok: bool
    separation_violations: tuple[str, ...] = ()
    notes: list[str] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.mapping is not None and self.separation_ok

    def describe(self) -> list[str]:
        lines = [
            f"failed nodes: {', '.join(self.failed_nodes) or '-'}",
            f"retained {len(self.retained)} clusters on "
            f"{len(self.hw)} surviving HW nodes",
        ]
        if self.shed_labels:
            lines.append("shed clusters: " + ", ".join(self.shed_labels))
        if self.shed_members:
            lines.append("shed members: " + ", ".join(self.shed_members))
        if self.uncovered:
            lines.append(
                "uncovered: "
                + ", ".join(
                    f"{name} (class {self.uncovered_classes[name]})"
                    for name in self.uncovered
                )
            )
        if not self.separation_ok:
            lines.extend(f"violation: {v}" for v in self.separation_violations)
        lines.extend(self.notes)
        return lines


def plan_degradation(
    outcome: IntegrationOutcome,
    failed_nodes: tuple[str, ...] | list[str] | set[str],
    failed_links: tuple[tuple[str, str], ...] = (),
    approach: str = "a",
    resources: ResourceRequirements | None = None,
    bands: CriticalityBands = DEFAULT_BANDS,
) -> DegradationPlan:
    """Re-map ``outcome``'s clusters onto the HW surviving the failures.

    ``approach`` selects the §5.4 mapping heuristic (``"a"`` importance of
    tasks, ``"b"`` importance of attributes).  Splitting and shedding only
    happen when the survivors cannot host everything; see the module
    docstring for the preference order.
    """
    if approach not in ("a", "b"):
        raise AllocationError(f"unknown mapping approach {approach!r}")
    state = outcome.condensation.state
    graph = state.graph
    survivors = surviving_hw(outcome.mapping.hw, failed_nodes, failed_links)
    classes = process_classes(graph, bands)
    notes: list[str] = []
    rec = current()

    # Working partition: original cluster index -> current member tuple.
    blocks: dict[int, tuple[str, ...]] = {
        index: cluster.members for index, cluster in enumerate(state.clusters)
    }
    shed: list[int] = []
    shed_members: list[str] = []

    # 1. Split clusters around members whose resources became unreachable.
    available: set[str] = set()
    for node in survivors.nodes():
        available |= node.resources
    if resources is not None:
        for index in sorted(blocks):
            members = blocks[index]
            stranded = tuple(
                m for m in members if resources.required_by([m]) - available
            )
            if not stranded:
                continue
            rest = tuple(m for m in members if m not in stranded)
            shed_members.extend(stranded)
            if rest:
                blocks[index] = rest
                notes.append(
                    f"split {state.clusters[index].label}: shed "
                    f"{', '.join(stranded)} (resource unreachable)"
                )
                if rec.enabled:
                    rec.decision(
                        "degrade",
                        "split",
                        subject=state.clusters[index].label,
                        reason="resource unreachable on surviving HW",
                        shed_members=list(stranded),
                    )
            else:
                del blocks[index]
                shed.append(index)
                notes.append(
                    f"shed {state.clusters[index].label} (resource unreachable)"
                )
                if rec.enabled:
                    rec.decision(
                        "degrade",
                        "shed",
                        subject=state.clusters[index].label,
                        reason="resource unreachable on surviving HW",
                    )

    def shed_one(reason: str) -> None:
        victim = _pick_shed(graph, blocks)
        shed.append(victim)
        shed_members.extend(blocks.pop(victim))
        notes.append(f"shed {state.clusters[victim].label} ({reason})")
        if rec.enabled:
            rec.decision(
                "degrade",
                "shed",
                subject=state.clusters[victim].label,
                reason=reason,
            )

    # 2. Shed whole clusters until the survivors can host the rest.
    while len(blocks) > len(survivors):
        shed_one("capacity")

    mapping: Mapping | None = None
    retained: list[int] = []
    while blocks:
        retained = sorted(blocks)
        sub_state = seeded_state(
            graph, [blocks[i] for i in retained], state.policy
        )
        # When the outcome ran under the vector engine, re-mapping the
        # degraded partition reuses its compiled influence/policy (and
        # their caches) instead of re-deriving scalar answers.
        sub_state.adopt_compiled(state)
        mapper = map_approach_a if approach == "a" else map_approach_b
        try:
            mapping = mapper(sub_state, survivors, resources)
            break
        except InfeasibleAllocationError as exc:
            shed_one(f"infeasible: {exc}")
            mapping = None
    if not blocks:
        retained = []

    assignment: dict[int, str] = {}
    hosted_members: dict[int, tuple[str, ...]] = {}
    if mapping is not None:
        for sub_index, hw_name in mapping.assignment.items():
            original = retained[sub_index]
            assignment[original] = hw_name
            hosted_members[original] = blocks[original]

    hosted_origins = {
        origin_of(graph, member)
        for members in hosted_members.values()
        for member in members
    }
    all_origins = {origin_of(graph, name) for name in graph.fcm_names()}
    uncovered = tuple(sorted(all_origins - hosted_origins))

    violations = _separation_violations(graph, hosted_members, assignment)
    if rec.enabled:
        rec.counter("degrade_plans_total").inc()
        if violations:
            rec.counter("degrade_separation_violations_total").inc(len(violations))

    return DegradationPlan(
        failed_nodes=tuple(sorted(set(failed_nodes))),
        hw=survivors,
        mapping=mapping,
        assignment=assignment,
        hosted_members=hosted_members,
        retained=tuple(retained),
        shed=tuple(sorted(shed)),
        shed_labels=tuple(state.clusters[i].label for i in sorted(shed)),
        shed_members=tuple(shed_members),
        uncovered=uncovered,
        uncovered_classes={name: classes[name] for name in uncovered},
        separation_ok=not violations,
        separation_violations=violations,
        notes=notes,
    )


def _pick_shed(graph, blocks: dict[int, tuple[str, ...]]) -> int:
    """The next cluster to shed, least harmful first.

    Prefer clusters every member of which has a surviving replica in
    another retained cluster (shedding them drops no function); break
    ties — and fall back when no such cluster exists — by ascending
    maximum member criticality, then by member tuple for determinism.
    """

    def covered_elsewhere(index: int) -> bool:
        other_origins = {
            origin_of(graph, member)
            for j, members in blocks.items()
            if j != index
            for member in members
        }
        return all(
            origin_of(graph, member) in other_origins
            for member in blocks[index]
        )

    def max_criticality(index: int) -> float:
        return max(
            graph.fcm(member).attributes.criticality
            for member in blocks[index]
        )

    return min(
        blocks,
        key=lambda i: (
            not covered_elsewhere(i),
            max_criticality(i),
            blocks[i],
        ),
    )


def _separation_violations(
    graph,
    hosted_members: dict[int, tuple[str, ...]],
    assignment: dict[int, str],
) -> tuple[str, ...]:
    """Replica-separation violations of a (possibly partial) assignment."""
    violations: list[str] = []
    nodes = list(assignment.values())
    if len(set(nodes)) != len(nodes):
        violations.append("two clusters assigned to one HW node")
    placed: dict[str, list[tuple[str, str]]] = {}
    for index, hw_name in assignment.items():
        for member in hosted_members[index]:
            fcm = graph.fcm(member)
            if fcm.replica_of is None:
                continue
            placed.setdefault(fcm.replica_of, []).append((member, hw_name))
    for origin, located in sorted(placed.items()):
        hosts = [hw_name for _member, hw_name in located]
        if len(set(hosts)) != len(hosts):
            violations.append(
                f"replicas of {origin} co-located: "
                + ", ".join(f"{m}@{n}" for m, n in sorted(located))
            )
    return tuple(violations)
