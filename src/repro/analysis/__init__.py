"""Analysis extensions: trade-offs, codesign, exact optima, refinement.

These realise the paper's deferred and future-work items (§6 trade-off
analysis, §7 HW/SW codesign and parameter measurement) on top of the
core framework.
"""

from repro.analysis.annealing import AnnealingOptions, AnnealingReport, anneal
from repro.analysis.codesign import (
    CodesignResult,
    DependabilityTargets,
    PlatformEvaluation,
    PlatformOption,
    choose_platform,
    evaluate_platform,
)
from repro.analysis.optimal import (
    MAX_EXACT_NODES,
    OptimalResult,
    optimal_condensation,
    optimality_gap,
    state_from_optimal,
)
from repro.analysis.sensitivity import (
    SensitivityPoint,
    partition_distance,
    perturb_influences,
    sensitivity_sweep,
)
from repro.analysis.tradeoff import (
    TradeoffCurve,
    TradeoffPoint,
    sweep_integration_levels,
)

__all__ = [
    "AnnealingOptions",
    "AnnealingReport",
    "CodesignResult",
    "DependabilityTargets",
    "MAX_EXACT_NODES",
    "OptimalResult",
    "PlatformEvaluation",
    "PlatformOption",
    "SensitivityPoint",
    "TradeoffCurve",
    "TradeoffPoint",
    "anneal",
    "choose_platform",
    "evaluate_platform",
    "optimal_condensation",
    "optimality_gap",
    "partition_distance",
    "perturb_influences",
    "sensitivity_sweep",
    "state_from_optimal",
    "sweep_integration_levels",
]
