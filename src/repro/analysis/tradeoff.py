"""Integration-level trade-off analysis.

The paper raises, and defers, the question "Is there a limit to the level
of integration one should design for?" (§6) — integrating harder (fewer
HW nodes) saves hardware but concentrates criticality, consumes timing
slack, and eventually becomes infeasible.  This module answers it for a
concrete system: sweep the HW node count from the replica-separation
lower bound up to one-node-per-SW-node, integrate at each level, and
record the §5.3 goodness criteria so the knee is visible.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import DDSIError
from repro.allocation.clustering import ClusterState, initial_state
from repro.allocation.goodness import evaluate_partition
from repro.allocation.heuristics.base import CondensationResult
from repro.allocation.heuristics.h1_influence import condense_h1
from repro.allocation.sw_graph import required_hw_nodes
from repro.faultsim.campaign import run_campaign
from repro.influence.influence_graph import InfluenceGraph

Condenser = Callable[[ClusterState, int], CondensationResult]


@dataclass(frozen=True)
class TradeoffPoint:
    """Goodness of integrating down to ``hw_nodes`` processors."""

    hw_nodes: int
    feasible: bool
    cross_influence: float
    max_node_criticality: float
    min_slack: float  # tightest per-cluster timing slack fraction
    fault_escape_rate: float

    @property
    def hardware_saved(self) -> int:
        """Relative measure only — interpreted against the sweep maximum."""
        return -self.hw_nodes


@dataclass(frozen=True)
class TradeoffCurve:
    """The full sweep, densest integration first."""

    points: tuple[TradeoffPoint, ...]

    def feasible_points(self) -> list[TradeoffPoint]:
        return [p for p in self.points if p.feasible]

    def minimum_hw(self) -> int:
        """Fewest processors any feasible integration achieved."""
        feasible = self.feasible_points()
        if not feasible:
            raise DDSIError("no feasible integration level in the sweep")
        return min(p.hw_nodes for p in feasible)

    def knee(self, influence_budget: float) -> TradeoffPoint:
        """Densest feasible integration whose cross-influence stays within
        ``influence_budget`` — the paper's "limit to the level of
        integration" made operational."""
        candidates = [
            p for p in self.feasible_points()
            if p.cross_influence <= influence_budget + 1e-12
        ]
        if not candidates:
            raise DDSIError(
                f"no integration level meets influence budget {influence_budget}"
            )
        return min(candidates, key=lambda p: p.hw_nodes)


def _min_slack(state: ClusterState) -> float:
    """Smallest (1 - work/window) over clusters with timing constraints."""
    slack = 1.0
    for i in range(len(state.clusters)):
        attrs = state.attributes(i)
        if attrs.timing is None or attrs.timing.window <= 0:
            continue
        slack = min(
            slack, 1.0 - attrs.timing.computation_time / attrs.timing.window
        )
    return slack


def sweep_integration_levels(
    graph: InfluenceGraph,
    condenser: Condenser = condense_h1,
    campaign_trials: int = 500,
    seed: int = 0,
) -> TradeoffCurve:
    """Integrate ``graph`` at every HW node count from the replica lower
    bound to the SW node count, scoring each level.

    Infeasible levels (the condenser cannot reach the target under the
    hard constraints) are recorded with ``feasible=False`` and NaN-free
    placeholder scores, so the curve shows exactly where integration
    stops being possible.
    """
    lower = max(1, required_hw_nodes(graph))
    upper = len(graph)
    points: list[TradeoffPoint] = []
    for target in range(lower, upper + 1):
        state = initial_state(graph.copy())
        try:
            result = condenser(state, target)
        except DDSIError:
            points.append(
                TradeoffPoint(
                    hw_nodes=target,
                    feasible=False,
                    cross_influence=float("inf"),
                    max_node_criticality=float("inf"),
                    min_slack=-1.0,
                    fault_escape_rate=1.0,
                )
            )
            continue
        score = evaluate_partition(result.state)
        campaign = run_campaign(
            graph, result.partition(), trials=campaign_trials, seed=seed
        )
        points.append(
            TradeoffPoint(
                hw_nodes=target,
                feasible=score.feasible,
                cross_influence=score.cross_influence,
                max_node_criticality=score.max_node_criticality,
                min_slack=_min_slack(result.state),
                fault_escape_rate=campaign.cross_cluster_rate,
            )
        )
    return TradeoffCurve(points=tuple(points))
