"""Exact optimal condensation for small systems.

The paper states the condensation problem — "given a graph with directed
weighted edges, group the nodes into sets such that the sum of weights
between the sets is minimized" — has no tractable deterministic solution,
which is why H1-H3 are heuristics.  For *small* systems exhaustive search
is feasible, and it gives the yardstick the heuristic-optimality bench
(E7) measures against.

:func:`optimal_condensation` enumerates set partitions (restricted
growth strings) with branch-and-bound pruning, subject to the same hard
constraints the heuristics honour, and returns the partition minimising
total cross-cluster influence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, InfeasibleAllocationError
from repro.allocation.clustering import Cluster, ClusterState
from repro.allocation.constraints import CombinationPolicy
from repro.influence.influence_graph import InfluenceGraph

# Exhaustive search over set partitions is Bell(n); keep n honest.
MAX_EXACT_NODES = 12


@dataclass(frozen=True)
class OptimalResult:
    """The provably best feasible partition found."""

    partition: tuple[tuple[str, ...], ...]
    cross_influence: float
    partitions_examined: int


def optimal_condensation(
    graph: InfluenceGraph,
    max_clusters: int,
    policy: CombinationPolicy | None = None,
    exact: bool = True,
) -> OptimalResult:
    """Minimum cross-cluster influence over all feasible partitions.

    With ``exact=True`` (default) the partition must use *exactly*
    ``max_clusters`` blocks — the paper's "required number of nodes",
    and the count every heuristic produces, so optimality gaps compare
    like with like.  ``exact=False`` allows fewer blocks (idle HW),
    which trivially favours denser partitions whenever the constraints
    permit them.

    Enumerates partitions with branch-and-bound, skipping assignments
    that violate the policy (checked incrementally: a node joining a
    block must be combinable with it).  Raises
    :class:`InfeasibleAllocationError` if no feasible partition exists
    within the budget.
    """
    names = graph.fcm_names()
    if len(names) > MAX_EXACT_NODES:
        raise AllocationError(
            f"exact search is limited to {MAX_EXACT_NODES} nodes "
            f"(got {len(names)}); use a heuristic"
        )
    if max_clusters < 1:
        raise AllocationError("max_clusters must be >= 1")
    if exact and max_clusters > len(names):
        raise AllocationError(
            f"cannot fill exactly {max_clusters} blocks with {len(names)} nodes"
        )
    pol = policy if policy is not None else CombinationPolicy()

    # Precompute pairwise influence for the bound.
    influence: dict[tuple[str, str], float] = {}
    for src, dst, w in graph.influence_edges():
        influence[(src, dst)] = w

    best: dict = {"cost": float("inf"), "partition": None, "count": 0}

    def cross_cost(blocks: list[list[str]]) -> float:
        """Total cross-cluster influence, Eq. (4) per ordered block pair —
        the exact objective :meth:`ClusterState.total_cross_influence`
        reports, so gaps compare like with like."""
        member_of = {}
        for i, block in enumerate(blocks):
            for m in block:
                member_of[m] = i
        survival: dict[tuple[int, int], float] = {}
        for (src, dst), w in influence.items():
            if src not in member_of or dst not in member_of:
                continue
            a, b = member_of[src], member_of[dst]
            if a == b:
                continue
            survival[(a, b)] = survival.get((a, b), 1.0) * (1.0 - w)
        return sum(1.0 - s for s in survival.values())

    def lower_bound(blocks: list[list[str]], placed: int) -> float:
        """Cost already committed among placed nodes.  Valid bound: edges
        between different blocks never return inside, and the per-pair
        noisy-or only grows as further edges join a pair."""
        return cross_cost(blocks)

    def recurse(index: int, blocks: list[list[str]]) -> None:
        best["count"] += 1
        if lower_bound(blocks, index) >= best["cost"]:
            return
        remaining = len(names) - index
        if exact and len(blocks) + remaining < max_clusters:
            return  # not enough nodes left to open the required blocks
        if index == len(names):
            if exact and len(blocks) != max_clusters:
                return
            cost = cross_cost(blocks)
            if cost < best["cost"]:
                best["cost"] = cost
                best["partition"] = tuple(tuple(b) for b in blocks)
            return
        node = names[index]
        for block in blocks:
            if pol.can_combine(graph, block, [node]):
                block.append(node)
                recurse(index + 1, blocks)
                block.pop()
        if len(blocks) < max_clusters:
            blocks.append([node])
            recurse(index + 1, blocks)
            blocks.pop()

    recurse(0, [])
    if best["partition"] is None:
        raise InfeasibleAllocationError(
            f"no feasible partition into <= {max_clusters} clusters"
        )
    return OptimalResult(
        partition=best["partition"],
        cross_influence=best["cost"],
        partitions_examined=best["count"],
    )


def optimality_gap(
    graph: InfluenceGraph,
    heuristic_state: ClusterState,
    max_clusters: int,
) -> tuple[float, float, float]:
    """(heuristic cost, optimal cost, ratio) for a condensation result.

    Ratio is 1.0 when the heuristic matched the optimum; ``inf`` when the
    optimum is 0 and the heuristic is not.
    """
    heuristic_cost = heuristic_state.total_cross_influence()
    optimal = optimal_condensation(
        graph, max_clusters, policy=heuristic_state.policy
    )
    if optimal.cross_influence == 0.0:
        ratio = 1.0 if heuristic_cost == 0.0 else float("inf")
    else:
        ratio = heuristic_cost / optimal.cross_influence
    return heuristic_cost, optimal.cross_influence, ratio


def state_from_optimal(
    graph: InfluenceGraph,
    result: OptimalResult,
    policy: CombinationPolicy | None = None,
) -> ClusterState:
    """Materialise the optimal partition as a :class:`ClusterState`."""
    return ClusterState(
        graph,
        policy,
        [Cluster(tuple(block)) for block in result.partition],
    )
