"""Sensitivity of the integration to influence-estimation error.

§7: "developing techniques to determine and measure actual parameters
such as 'influence' across FCMs is crucial for the techniques to be
applied to real systems."  How accurate must those measurements be?  This
module perturbs every influence value by multiplicative noise, re-runs
the condensation, and measures how much the resulting partition moves —
the link between E4's estimation error and the stability of the final
design.

Partition distance is measured by the Rand index complement over node
pairs (0 = identical partition, 1 = maximally different).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import DDSIError, SimulationError
from repro.allocation.clustering import initial_state
from repro.allocation.heuristics.h1_influence import condense_h1
from repro.influence.influence_graph import InfluenceGraph


def perturb_influences(
    graph: InfluenceGraph,
    relative_noise: float,
    seed: int = 0,
) -> InfluenceGraph:
    """A copy with every influence scaled by U(1-noise, 1+noise), clamped
    to [0, 1].  Replica links (structural, not measured) are untouched."""
    if relative_noise < 0:
        raise SimulationError("relative_noise must be >= 0")
    rng = random.Random(seed)
    noisy = graph.copy()
    for src, dst, weight in graph.influence_edges():
        factor = rng.uniform(1.0 - relative_noise, 1.0 + relative_noise)
        noisy.set_influence(src, dst, min(1.0, max(0.0, weight * factor)))
    return noisy


def partition_distance(
    first: list[list[str]],
    second: list[list[str]],
) -> float:
    """1 - Rand index over node pairs; 0 iff the partitions agree."""
    member_a = {m: i for i, block in enumerate(first) for m in block}
    member_b = {m: i for i, block in enumerate(second) for m in block}
    if set(member_a) != set(member_b):
        raise DDSIError("partitions cover different node sets")
    names = sorted(member_a)
    if len(names) < 2:
        return 0.0
    agree = 0
    total = 0
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            total += 1
            same_a = member_a[a] == member_a[b]
            same_b = member_b[a] == member_b[b]
            agree += same_a == same_b
    return 1.0 - agree / total


@dataclass(frozen=True)
class SensitivityPoint:
    relative_noise: float
    mean_distance: float
    max_distance: float
    mean_cost_ratio: float  # noisy-design cost on TRUE graph / clean cost


def sensitivity_sweep(
    graph: InfluenceGraph,
    target: int,
    noise_levels: list[float],
    replicates: int = 5,
    seed: int = 0,
) -> list[SensitivityPoint]:
    """For each noise level: re-estimate -> re-condense -> compare.

    The "cost ratio" evaluates the partition produced from noisy data on
    the *true* graph — the real price of estimation error.
    """
    if replicates < 1:
        raise SimulationError("replicates must be >= 1")
    clean_result = condense_h1(initial_state(graph.copy()), target)
    clean_partition = clean_result.partition()
    clean_cost = clean_result.state.total_cross_influence()

    points: list[SensitivityPoint] = []
    for noise in noise_levels:
        distances = []
        ratios = []
        for r in range(replicates):
            noisy = perturb_influences(graph, noise, seed=seed + r * 977 + int(noise * 1e6))
            noisy_result = condense_h1(initial_state(noisy), target)
            partition = noisy_result.partition()
            distances.append(partition_distance(clean_partition, partition))
            # Evaluate the noisy design against the truth.
            from repro.allocation.clustering import ClusterState, Cluster

            true_state = ClusterState(
                graph,
                clean_result.state.policy,
                [Cluster(tuple(b)) for b in partition],
            )
            cost = true_state.total_cross_influence()
            ratios.append(cost / clean_cost if clean_cost > 0 else 1.0)
        points.append(
            SensitivityPoint(
                relative_noise=noise,
                mean_distance=sum(distances) / len(distances),
                max_distance=max(distances),
                mean_cost_ratio=sum(ratios) / len(ratios),
            )
        )
    return points
