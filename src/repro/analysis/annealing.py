"""Simulated-annealing refinement of a condensation.

The greedy heuristics commit early; annealing explores single-node moves
and pair swaps between clusters, accepting uphill moves with the usual
Metropolis rule, never violating the hard constraints.  Used both as a
post-pass ("polish the H1 result") and as a strong baseline in the
optimality-gap bench.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import AllocationError
from repro.allocation.clustering import Cluster, ClusterState


@dataclass(frozen=True)
class AnnealingOptions:
    iterations: int = 2000
    initial_temperature: float = 0.5
    cooling: float = 0.995
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise AllocationError("iterations must be >= 1")
        if not 0 < self.cooling < 1:
            raise AllocationError("cooling must be in (0, 1)")
        if self.initial_temperature <= 0:
            raise AllocationError("initial_temperature must be > 0")


@dataclass(frozen=True)
class AnnealingReport:
    initial_cost: float
    final_cost: float
    accepted_moves: int
    attempted_moves: int

    @property
    def improvement(self) -> float:
        return self.initial_cost - self.final_cost


def anneal(
    state: ClusterState,
    options: AnnealingOptions | None = None,
) -> AnnealingReport:
    """Refine ``state`` in place by constrained local search.

    Moves: relocate one node to another cluster, or swap two nodes
    between clusters.  A move is attempted only if the resulting blocks
    pass every hard constraint; cluster count never changes (empty
    clusters are forbidden — the HW budget is fixed).
    """
    opts = options or AnnealingOptions()
    rng = random.Random(opts.seed)
    graph = state.graph
    policy = state.policy

    blocks: list[list[str]] = [list(c.members) for c in state.clusters]
    if len(blocks) < 2:
        return AnnealingReport(
            initial_cost=state.total_cross_influence(),
            final_cost=state.total_cross_influence(),
            accepted_moves=0,
            attempted_moves=0,
        )

    def cost_of(candidate: list[list[str]]) -> float:
        trial = ClusterState(
            graph, policy, [Cluster(tuple(b)) for b in candidate]
        )
        trial.adopt_compiled(state)
        return trial.total_cross_influence()

    current_cost = cost_of(blocks)
    initial_cost = current_cost
    best_blocks = [list(b) for b in blocks]
    best_cost = current_cost
    temperature = opts.initial_temperature
    accepted = 0
    attempted = 0

    for _ in range(opts.iterations):
        temperature *= opts.cooling
        move_kind = rng.random()
        i, j = rng.sample(range(len(blocks)), 2)
        candidate = [list(b) for b in blocks]
        if move_kind < 0.6:
            # Relocate a random node from block i to block j.
            if len(candidate[i]) <= 1:
                continue
            node = rng.choice(candidate[i])
            candidate[i].remove(node)
            candidate[j].append(node)
        else:
            # Swap one node between the blocks.
            a = rng.choice(candidate[i])
            b = rng.choice(candidate[j])
            candidate[i].remove(a)
            candidate[j].remove(b)
            candidate[i].append(b)
            candidate[j].append(a)
        attempted += 1
        if not state.policy_block_valid(candidate[i]):
            continue
        if not state.policy_block_valid(candidate[j]):
            continue
        new_cost = cost_of(candidate)
        delta = new_cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            blocks = candidate
            current_cost = new_cost
            accepted += 1
            if current_cost < best_cost:
                best_cost = current_cost
                best_blocks = [list(b) for b in blocks]

    state.clusters = [Cluster(tuple(b)) for b in best_blocks]
    return AnnealingReport(
        initial_cost=initial_cost,
        final_cost=best_cost,
        accepted_moves=accepted,
        attempted_moves=attempted,
    )
