"""HW/SW codesign: choosing a platform under dependability targets.

Paper §7 (future work): "develop a tradeoff analysis between HW and SW
requirements as they affect one another, especially when design
restrictions are provided on the choice of an available HW platform, yet
some flexibility remains."

Given a *menu* of candidate platforms (each with a node count, resource
placement, per-node cost) and dependability targets (maximum cross-node
influence, maximum fault-escape rate, required resources), pick the
cheapest platform on which the system integrates feasibly within the
targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DDSIError, InfeasibleAllocationError
from repro.allocation.clustering import initial_state
from repro.allocation.constraints import ResourceRequirements
from repro.allocation.goodness import evaluate_mapping
from repro.allocation.heuristics.h1_influence import condense_h1
from repro.allocation.hw_model import HWGraph
from repro.allocation.mapping import map_approach_a
from repro.allocation.sw_graph import required_hw_nodes
from repro.faultsim.campaign import run_campaign
from repro.influence.influence_graph import InfluenceGraph


@dataclass(frozen=True)
class PlatformOption:
    """One entry on the hardware menu."""

    name: str
    hw: HWGraph
    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise DDSIError("platform cost must be >= 0")


@dataclass(frozen=True)
class DependabilityTargets:
    """What the integrated system must achieve."""

    max_cross_influence: float = float("inf")
    max_fault_escape_rate: float = 1.0
    campaign_trials: int = 500


@dataclass(frozen=True)
class PlatformEvaluation:
    """Outcome of integrating the system on one platform."""

    option: PlatformOption
    feasible: bool
    meets_targets: bool
    cross_influence: float
    fault_escape_rate: float
    reason: str = ""


@dataclass(frozen=True)
class CodesignResult:
    chosen: PlatformEvaluation | None
    evaluations: tuple[PlatformEvaluation, ...]

    def require_chosen(self) -> PlatformEvaluation:
        if self.chosen is None:
            raise InfeasibleAllocationError(
                "no platform on the menu meets the dependability targets; "
                + "; ".join(
                    f"{e.option.name}: {e.reason}" for e in self.evaluations
                )
            )
        return self.chosen


def evaluate_platform(
    graph: InfluenceGraph,
    option: PlatformOption,
    targets: DependabilityTargets,
    resources: ResourceRequirements | None = None,
    seed: int = 0,
) -> PlatformEvaluation:
    """Integrate the (already expanded) SW graph on one platform."""
    lower = required_hw_nodes(graph)
    if len(option.hw) < lower:
        return PlatformEvaluation(
            option=option,
            feasible=False,
            meets_targets=False,
            cross_influence=float("inf"),
            fault_escape_rate=1.0,
            reason=f"only {len(option.hw)} nodes; replication needs {lower}",
        )
    try:
        state = initial_state(graph.copy())
        result = condense_h1(state, len(option.hw))
        mapping = map_approach_a(result.state, option.hw, resources)
    except DDSIError as exc:
        return PlatformEvaluation(
            option=option,
            feasible=False,
            meets_targets=False,
            cross_influence=float("inf"),
            fault_escape_rate=1.0,
            reason=str(exc),
        )
    score = evaluate_mapping(mapping, resources)
    campaign = run_campaign(
        graph, result.partition(), trials=targets.campaign_trials, seed=seed
    )
    meets = (
        score.feasible
        and score.partition.cross_influence <= targets.max_cross_influence + 1e-12
        and campaign.cross_cluster_rate <= targets.max_fault_escape_rate + 1e-12
    )
    reason = ""
    if not score.feasible:
        reason = "mapping constraints violated"
    elif score.partition.cross_influence > targets.max_cross_influence:
        reason = (
            f"cross-influence {score.partition.cross_influence:.3f} exceeds "
            f"target {targets.max_cross_influence:.3f}"
        )
    elif campaign.cross_cluster_rate > targets.max_fault_escape_rate:
        reason = (
            f"escape rate {campaign.cross_cluster_rate:.3f} exceeds target "
            f"{targets.max_fault_escape_rate:.3f}"
        )
    return PlatformEvaluation(
        option=option,
        feasible=score.feasible,
        meets_targets=meets,
        cross_influence=score.partition.cross_influence,
        fault_escape_rate=campaign.cross_cluster_rate,
        reason=reason,
    )


def choose_platform(
    graph: InfluenceGraph,
    menu: list[PlatformOption],
    targets: DependabilityTargets,
    resources: ResourceRequirements | None = None,
    seed: int = 0,
) -> CodesignResult:
    """Cheapest platform meeting the targets; evaluations for the whole
    menu are returned so the trade-off is auditable."""
    if not menu:
        raise DDSIError("platform menu is empty")
    evaluations = [
        evaluate_platform(graph, option, targets, resources, seed=seed)
        for option in menu
    ]
    qualifying = [e for e in evaluations if e.meets_targets]
    chosen = min(
        qualifying, key=lambda e: (e.option.cost, e.option.name), default=None
    )
    return CodesignResult(chosen=chosen, evaluations=tuple(evaluations))
