"""Extensions beyond the canonical three-level model.

Currently: the OO class level the paper's footnote 4 describes.
"""

from repro.extensions.oo import (
    ClassFaultKind,
    ClassGroup,
    EncapsulationReport,
    check_encapsulation,
    class_influence_graph,
    require_encapsulated,
    validate_classes,
)

__all__ = [
    "ClassFaultKind",
    "ClassGroup",
    "EncapsulationReport",
    "check_encapsulation",
    "class_influence_graph",
    "require_encapsulated",
    "validate_classes",
]
