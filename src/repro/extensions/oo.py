"""Objects/classes as an additional grouping level.

Footnote 4 of the paper: "Object-oriented implementation, on the other
hand, introduces objects/classes as another natural level in the
hierarchy, with its own kinds of faults", and §3 promises the framework
can "add/delete levels (or elements of the hierarchy) as desired".

This extension realises the OO level *without* disturbing the canonical
three-level model: a :class:`ClassGroup` is a named set of procedure
FCMs sharing hidden state.  The machinery provides:

* encapsulation verification — no ``GLOBAL_VARIABLE`` factor may cross a
  class boundary (information hiding, the §3.3 technique, made checkable);
* class-level influence — the Eq. (4) condensation of the procedure
  influence graph by the class partition, exactly the operation used for
  allocation clusters, reused one level down;
* class fault kinds — the OO-specific fault classes the footnote alludes
  to (encapsulation breach, broken invariant between methods).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ModelError, VerificationError
from repro.influence.cluster import condense_influence
from repro.influence.factors import FactorKind
from repro.influence.influence_graph import InfluenceGraph
from repro.model.fcm import FCM, Level


class ClassFaultKind(Enum):
    """Fault classes specific to the OO level."""

    ENCAPSULATION_BREACH = "encapsulation_breach"  # hidden state reached from outside
    INVARIANT_VIOLATION = "invariant_violation"  # method left shared state bad


@dataclass(frozen=True)
class ClassGroup:
    """One class: a set of method procedures sharing hidden state."""

    name: str
    methods: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("class needs a name")
        if not self.methods:
            raise ModelError(f"class {self.name!r} needs at least one method")
        if len(set(self.methods)) != len(self.methods):
            raise ModelError(f"class {self.name!r} lists a method twice")


@dataclass(frozen=True)
class EncapsulationReport:
    """Result of the information-hiding check over a class partition."""

    breaches: tuple[tuple[str, str], ...]  # (source proc, target proc) pairs

    @property
    def passed(self) -> bool:
        return not self.breaches


def validate_classes(
    graph: InfluenceGraph,
    classes: list[ClassGroup],
) -> None:
    """Classes must partition a subset of the procedure FCMs."""
    seen: set[str] = set()
    for cls in classes:
        for method in cls.methods:
            if method in seen:
                raise ModelError(
                    f"procedure {method!r} belongs to two classes"
                )
            seen.add(method)
            if not graph.has_fcm(method):
                raise ModelError(f"method {method!r} not in influence graph")
            fcm = graph.fcm(method)
            if fcm.level is not Level.PROCEDURE:
                raise ModelError(
                    f"method {method!r} is a {fcm.level.name}, not a procedure"
                )


def check_encapsulation(
    graph: InfluenceGraph,
    classes: list[ClassGroup],
) -> EncapsulationReport:
    """Information hiding: no global-variable factor crosses classes.

    Intra-class globals are the class's hidden state — allowed.  A
    ``GLOBAL_VARIABLE`` factor on an edge between procedures of
    *different* classes (or between a class method and an unclassed
    procedure) is an encapsulation breach.
    """
    validate_classes(graph, classes)
    class_of: dict[str, str] = {
        method: cls.name for cls in classes for method in cls.methods
    }
    breaches: list[tuple[str, str]] = []
    for src, dst, _w in graph.influence_edges():
        src_class = class_of.get(src)
        dst_class = class_of.get(dst)
        if src_class is None and dst_class is None:
            continue  # globals among free procedures: the ordinary
            # §4.2.2 concern, not a class-boundary breach
        if src_class == dst_class:
            continue  # same class: hidden state, fine
        factors = graph.factors(src, dst)
        if any(f.kind is FactorKind.GLOBAL_VARIABLE for f in factors):
            breaches.append((src, dst))
    return EncapsulationReport(breaches=tuple(sorted(breaches)))


def class_influence_graph(
    graph: InfluenceGraph,
    classes: list[ClassGroup],
) -> InfluenceGraph:
    """The class-level influence graph: Eq. (4) condensation by class.

    Procedures not claimed by any class become singleton "free
    procedures" carrying their own name.  Class nodes are procedure-level
    FCMs named after the class (the OO level slots between procedures and
    tasks; representing it at procedure granularity keeps the canonical
    Level enum untouched).
    """
    validate_classes(graph, classes)
    claimed = {m for cls in classes for m in cls.methods}
    partition: list[list[str]] = [list(cls.methods) for cls in classes]
    labels: list[str] = [cls.name for cls in classes]
    for name in graph.fcm_names():
        if name not in claimed:
            partition.append([name])
            labels.append(name)
    if len(set(labels)) != len(labels):
        raise ModelError("class names collide with free procedure names")

    values = condense_influence(graph, partition)
    out = InfluenceGraph()
    for label, block in zip(labels, partition):
        # Combined attributes: grouped combination over members.
        from repro.model.attributes import combine_all_grouped

        attrs = combine_all_grouped(
            [graph.fcm(m).attributes for m in block]
        )
        out.add_fcm(FCM(label, Level.PROCEDURE, attrs))
    for (i, j), value in values.items():
        if value > 0.0:
            out.set_influence(labels[i], labels[j], value)
    return out


def require_encapsulated(
    graph: InfluenceGraph,
    classes: list[ClassGroup],
) -> None:
    """Raise :class:`VerificationError` on any encapsulation breach."""
    report = check_encapsulation(graph, classes)
    if not report.passed:
        pairs = ", ".join(f"{s}->{t}" for s, t in report.breaches)
        raise VerificationError(
            f"information hiding violated across class boundaries: {pairs}"
        )
