"""Command-line interface: ``python -m repro``.

Subcommands:

* ``integrate SYSTEM.json --hw HW.json [--heuristic h1] [--mapping a]
  [--validate-trials N --seed S]`` — run the full pipeline and print the
  clusters, mapping and score, optionally followed by fault-injection
  campaign validation.
* ``audit SYSTEM.json`` — structural + non-interference audit.
* ``tradeoff SYSTEM.json`` — sweep integration levels (E-style table).
* ``resilience --workload paper --failures 2 --seed 0`` — integrate a
  built-in workload, then run a HW-failure campaign and report
  availability per criticality class.
* ``faultsim --workload paper --trials 1000`` — integrate a built-in
  workload, then run a fault-injection campaign over the resulting
  partition.
* ``exec chaos`` — the supervised runner's chaos self-test: killed
  workers, torn checkpoints, interrupted campaigns, all checked against
  a serial baseline.
* ``example NAME`` — dump a built-in workload (``paper`` or ``avionics``)
  as JSON, as a starting template.

``resilience`` and ``faultsim`` both take supervised-runner flags
(``--workers``, ``--batch-size``, ``--trial-timeout``, ``--checkpoint``,
``--resume``); campaign results are bit-identical whichever combination
is used.
* ``trace summarize TRACE.ndjson`` — aggregate an NDJSON trace into a
  per-stage timing table (``--tree`` renders the span tree instead).
* ``trace critical-path TRACE.ndjson`` — dominant-path report with
  per-span self-time vs. child-time.
* ``trace diff A.ndjson B.ndjson`` — align spans by path and report
  per-stage wall-time / count deltas; exits 1 on regression beyond the
  noise threshold, 2 when the runs are incomparable (``--force``
  overrides the provenance refusal).
* ``trace export TRACE.ndjson --format {chrome,collapsed}`` — Chrome
  trace-event JSON (Perfetto / ``chrome://tracing``) or collapsed
  stacks for flamegraph tooling.
* ``exec digest TRACE.ndjson`` — per-batch (and, for shard-lease
  traces, per-shard) run-health tables from the supervisor's decision
  events.
* ``exec watch STATUS.json`` — live refreshing per-shard health view of
  a running sharded campaign (the JSON named by ``--status-file``).
* ``metrics export [METRICS.json] --format prom`` — render a metrics
  snapshot in Prometheus text exposition format; process-level gauges
  (RSS, CPU seconds, open fds) are always included, even with no
  snapshot file at all.
* ``profile report TRACE.ndjson`` — top-N self-time, per-span sample
  attribution, and per-shard peak-RSS/CPU tables from a trace's
  ``profile`` events (record them with ``--profile``).
* ``bench check`` — compare the latest ``BENCH_pipeline.json`` against
  the committed baseline (``bench update-baseline`` refreshes it).

Every subcommand accepts ``--trace FILE`` (write an NDJSON span/decision
trace) and ``--metrics FILE`` (write a metrics-registry JSON snapshot);
``integrate`` and ``resilience`` additionally take ``-v/--verbose`` for a
one-line stage-timing footer.  With none of those given, the library runs
against the no-op recorder and records nothing.  Campaign subcommands
also take ``--profile [HZ]``: a sampling stack/resource profiler whose
``profile`` events land in the trace (and, for sharded runs, stream
back from every worker and merge per shard).

The CLI is a thin veneer over the library; every code path it exercises
is also covered by the API tests, and ``tests/io/test_cli.py`` drives the
veneer itself.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.tradeoff import sweep_integration_levels
from repro.errors import DDSIError
from repro.allocation.hw_model import fully_connected
from repro.allocation.sw_graph import expand_replication
from repro.core.framework import (
    FrameworkOptions,
    Heuristic,
    IntegrationFramework,
    MappingApproach,
)
from repro.io.serialization import (
    hw_to_dict,
    load_hw,
    load_system,
    system_to_dict,
)
from repro.metrics.report import (
    format_table,
    render_campaign,
    render_clusters,
    render_exec_report,
    render_mapping,
    render_resilience,
    render_shard_report,
)
from repro.model.fcm import Level
from repro.obs import (
    Recorder,
    current,
    load_ndjson,
    render_summary,
    render_tree,
    stage_footer,
    use,
)
from repro.verification.checks import audit_system
from repro.workloads import (
    HW_NODE_COUNT,
    automotive_failure_rates,
    automotive_hw,
    automotive_policy,
    automotive_resources,
    automotive_system,
    automotive_zone_loss,
    avionics_cabinet_loss,
    avionics_failure_rates,
    avionics_hw,
    avionics_resources,
    avionics_system,
    paper_system,
)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Attach ``--trace`` / ``--metrics`` to one subcommand parser."""
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write an NDJSON span/decision trace of this run here",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write a JSON metrics snapshot of this run here",
    )


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    """Attach ``--profile [HZ]`` to one campaign subcommand parser."""
    from repro.obs.profile import DEFAULT_PROFILE_HZ

    parser.add_argument(
        "--profile", nargs="?", type=float, const=DEFAULT_PROFILE_HZ,
        default=None, metavar="HZ",
        help="sample stacks and process resources at HZ (default "
        f"{DEFAULT_PROFILE_HZ:g}) into the trace as profile events; on "
        "sharded campaigns every worker profiles too and the samples "
        "merge per shard (results stay bit-identical)",
    )


def _workers_arg(value: str) -> int:
    """Parse ``--workers``: a count, or ``auto`` for the available CPUs."""
    from repro.errors import ExecutionError
    from repro.exec.batching import resolve_workers

    try:
        return resolve_workers(value)
    except ExecutionError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    """Attach supervised-runner flags to a campaign subcommand."""
    parser.add_argument(
        "--workers", type=_workers_arg, default=0, metavar="N",
        help="run campaign batches on a supervised worker pool of N "
        "processes (0 = serial in-process, 'auto' = the CPUs this "
        "process may run on)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=0, metavar="N",
        help="trials per batch (0 = derive from trials and workers); the "
        "result is identical for every batch size",
    )
    parser.add_argument(
        "--trial-timeout", type=float, default=None, metavar="SECONDS",
        help="per-trial time budget; a batch exceeding batch_size x this "
        "is treated as hung and retried",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="stream completed batches to this NDJSON checkpoint file",
    )
    parser.add_argument(
        "--resume", default=None, metavar="FILE",
        help="resume from a checkpoint file, skipping completed batches "
        "(implies checkpointing to the same file)",
    )
    parser.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
        help="sharded runs: expire a lease whose worker has been silent "
        "this long and re-dispatch its uncovered remainder (must exceed "
        "one block's wall time)",
    )


def _add_shard_flags(parser: argparse.ArgumentParser) -> None:
    """Attach shard-backend flags to a campaign subcommand."""
    parser.add_argument(
        "--backend", choices=["local", "subprocess", "tcp"], default=None,
        help="run the campaign as shard leases over this execution "
        "backend ('local' forked slots, 'subprocess' isolated "
        "python -m repro shard workers, 'tcp' workers over real network "
        "connections); results are bit-identical to a serial run",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="split the campaign into N block-aligned shards (0 with "
        "--backend = derive from CPUs); implies the shard supervisor",
    )
    parser.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="with --backend tcp: bind the lease listener here and wait "
        "for remote 'repro exec shard-worker --connect' workers to dial "
        "in (default: loopback listener + self-spawned local workers)",
    )
    parser.add_argument(
        "--status-file", default=None, metavar="FILE",
        help="sharded runs: atomically rewrite this JSON with live "
        "per-shard health while the campaign runs (watch it with "
        "'repro exec watch FILE')",
    )
    parser.add_argument(
        "--telemetry-stream", default=None, metavar="FILE",
        help="sharded runs: write the raw worker-telemetry batches "
        "(NDJSON) here; also forces worker telemetry on even without "
        "--trace",
    )


def _exec_policy(args: argparse.Namespace):
    """An :class:`ExecPolicy` from CLI flags, or None for the defaults."""
    from repro.exec import ExecPolicy

    # --checkpoint/--resume alone must also opt in: without a policy the
    # campaign runs as one all-trials batch, so the checkpoint would only
    # be written at completion and resume could never recover anything.
    if not (
        args.workers
        or args.batch_size
        or args.trial_timeout
        or args.checkpoint
        or args.resume
        or getattr(args, "heartbeat_timeout", None)
    ):
        return None
    return ExecPolicy(
        workers=args.workers,
        batch_size=args.batch_size,
        trial_timeout=args.trial_timeout,
        heartbeat_timeout=getattr(args, "heartbeat_timeout", None),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dependability-driven software integration (ICDCS'98)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    integrate = sub.add_parser("integrate", help="run the full pipeline")
    integrate.add_argument(
        "system", nargs="?", default=None,
        help="system JSON file (or use --workload for a built-in one)",
    )
    integrate.add_argument(
        "--workload",
        choices=["paper", "avionics", "automotive"],
        default=None,
        help="integrate a built-in workload (system + HW + resources) "
        "instead of a system file",
    )
    integrate.add_argument("--hw", help="HW graph JSON file")
    integrate.add_argument(
        "--hw-nodes", type=int, default=None,
        help="use a fully connected HW graph of this size instead of --hw",
    )
    integrate.add_argument(
        "--heuristic",
        choices=[h.value for h in Heuristic],
        default=Heuristic.H1.value,
    )
    integrate.add_argument(
        "--mapping",
        choices=[m.value for m in MappingApproach],
        default=MappingApproach.IMPORTANCE.value,
    )
    integrate.add_argument(
        "--engine",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="allocation engine: 'vector' compiles the influence graph "
        "and combination policy to array/cached form (bit-identical "
        "results), 'auto' picks vector when numpy is importable and "
        "the policy is compilable",
    )
    integrate.add_argument(
        "--out", default=None, help="write the outcome as JSON here"
    )
    integrate.add_argument(
        "--validate-trials", type=int, default=0, metavar="N",
        help="after integrating, validate by a fault-injection campaign "
        "of N trials (0 = skip)",
    )
    integrate.add_argument(
        "--seed", type=int, default=0, help="campaign validation RNG seed"
    )
    integrate.add_argument(
        "-v", "--verbose", action="store_true",
        help="print a one-line stage-timing footer",
    )
    _add_obs_flags(integrate)
    _add_profile_flag(integrate)

    audit = sub.add_parser("audit", help="audit a system design")
    audit.add_argument("system", help="system JSON file")
    audit.add_argument("--influence-budget", type=float, default=1.0)
    audit.add_argument("--separation-floor", type=float, default=0.0)
    _add_obs_flags(audit)

    tradeoff = sub.add_parser("tradeoff", help="sweep integration levels")
    tradeoff.add_argument("system", help="system JSON file")
    tradeoff.add_argument("--trials", type=int, default=300)
    _add_obs_flags(tradeoff)

    resilience = sub.add_parser(
        "resilience", help="run a HW-failure campaign on a workload"
    )
    resilience.add_argument(
        "--workload",
        choices=["paper", "avionics", "automotive"],
        default="paper",
        help="built-in workload (system + HW + resources)",
    )
    resilience.add_argument(
        "--failures", type=int, default=2, help="HW failures per trial"
    )
    resilience.add_argument("--trials", type=int, default=100)
    resilience.add_argument("--seed", type=int, default=0)
    resilience.add_argument(
        "--horizon", type=float, default=100.0, help="simulated time per trial"
    )
    resilience.add_argument(
        "--scenario", action="store_true",
        help="replay the workload's scripted failure scenario instead of "
        "drawing random failures (avionics/automotive only)",
    )
    resilience.add_argument(
        "--heuristic",
        choices=[h.value for h in Heuristic],
        default=Heuristic.H1.value,
    )
    resilience.add_argument(
        "--mapping",
        choices=[m.value for m in MappingApproach],
        default=MappingApproach.IMPORTANCE.value,
    )
    resilience.add_argument(
        "--engine",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="trial engine: 'vector' compiles the policy/graph once and "
        "memoizes degraded plans (bit-identical to scalar at equal "
        "seeds), 'auto' picks vector when numpy is importable",
    )
    resilience.add_argument(
        "-v", "--verbose", action="store_true",
        help="print stage-timing and campaign-throughput footers",
    )
    _add_exec_flags(resilience)
    _add_obs_flags(resilience)
    _add_profile_flag(resilience)

    faultsim = sub.add_parser(
        "faultsim", help="run a fault-injection campaign on a workload"
    )
    faultsim.add_argument(
        "--workload",
        choices=["paper", "avionics", "automotive"],
        default="paper",
        help="built-in workload (system + HW + resources)",
    )
    faultsim.add_argument("--trials", type=int, default=1000)
    faultsim.add_argument("--seed", type=int, default=0)
    faultsim.add_argument(
        "--heuristic",
        choices=[h.value for h in Heuristic],
        default=Heuristic.H1.value,
    )
    faultsim.add_argument(
        "--mapping",
        choices=[m.value for m in MappingApproach],
        default=MappingApproach.IMPORTANCE.value,
    )
    faultsim.add_argument(
        "--engine",
        choices=["auto", "scalar", "vector"],
        default="auto",
        help="trial engine: 'scalar' per-trial oracle, 'vector' NumPy "
        "batch kernel, 'auto' vector when numpy is importable",
    )
    faultsim.add_argument(
        "-v", "--verbose", action="store_true",
        help="print stage-timing and campaign-throughput footers",
    )
    _add_exec_flags(faultsim)
    _add_shard_flags(faultsim)
    _add_obs_flags(faultsim)
    _add_profile_flag(faultsim)

    exec_cmd = sub.add_parser(
        "exec", help="supervised-runner utilities"
    )
    exec_sub = exec_cmd.add_subparsers(dest="exec_command", required=True)
    digest = exec_sub.add_parser(
        "digest",
        help="aggregate a trace's exec decision events (retries, splits, "
        "crashes, backoff) into a run-health table",
    )
    digest.add_argument("file", help="NDJSON trace file")
    chaos = exec_sub.add_parser(
        "chaos",
        help="run the runner's chaos self-test (killed workers, torn "
        "checkpoints, interrupted campaigns); with --shards, the "
        "shard-lease self-test (killed shard workers, stalled "
        "heartbeats, corrupted partial checkpoints)",
    )
    chaos.add_argument(
        "--trials", type=int, default=None,
        help="faultsim trials per self-test campaign (default: 32, or "
        "1024 with --shards so every shard spans whole 256-trial "
        "blocks)",
    )
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the shard-level chaos proofs over N shards instead of "
        "the batch-pool self-test",
    )
    chaos.add_argument(
        "--backend", choices=["local", "subprocess", "tcp"],
        default="local",
        help="execution backend for the shard-level proofs; 'tcp' adds "
        "the NetChaos proofs (dropped connections, delayed frames, "
        "torn/duplicated lines, full partition + resume)",
    )
    chaos.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="directory for checkpoint scratch files (default: a fresh "
        "temporary directory)",
    )
    _add_obs_flags(chaos)
    shard_worker = exec_sub.add_parser(
        "shard-worker",
        help="serve shard leases over stdin/stdout, or over TCP with "
        "--connect (spawned by the subprocess/tcp backends, or started "
        "by hand on a remote host; not for interactive use)",
    )
    shard_worker.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="dial a 'repro ... --backend tcp' supervisor and serve "
        "leases over the connection instead of stdin/stdout",
    )
    shard_worker.add_argument(
        "--reconnect", type=int, default=0, metavar="N",
        help="with --connect: re-dial up to N times after the "
        "connection ends (each session registers as a fresh slot)",
    )
    watch = exec_sub.add_parser(
        "watch",
        help="live per-shard health view of a running sharded campaign "
        "(reads the JSON named by the campaign's --status-file)",
    )
    watch.add_argument("file", help="campaign status JSON file")
    watch.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default 1s)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render the current status once and exit (no refresh loop)",
    )

    example = sub.add_parser("example", help="dump a built-in workload")
    example.add_argument("name", choices=["paper", "avionics"])
    example.add_argument("--out", default=None, help="write JSON here (default stdout)")
    _add_obs_flags(example)

    trace = sub.add_parser("trace", help="inspect NDJSON traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="aggregate a trace into a per-stage timing table"
    )
    summarize.add_argument("file", help="NDJSON trace file")
    summarize.add_argument(
        "--tree", action="store_true",
        help="render the span tree instead of the aggregate table",
    )
    critical = trace_sub.add_parser(
        "critical-path",
        help="walk the span tree's dominant path (self vs child time)",
    )
    critical.add_argument("file", help="NDJSON trace file")
    diff = trace_sub.add_parser(
        "diff",
        help="compare two traces per span path; exit 1 on regression",
    )
    diff.add_argument("baseline", help="baseline NDJSON trace (A)")
    diff.add_argument("candidate", help="candidate NDJSON trace (B)")
    diff.add_argument(
        "--threshold", type=float, default=20.0, metavar="PCT",
        help="relative growth considered a regression (default 20%%)",
    )
    diff.add_argument(
        "--min-delta-ms", type=float, default=0.5, metavar="MS",
        help="absolute growth below this is noise (default 0.5ms)",
    )
    diff.add_argument(
        "--force", action="store_true",
        help="diff even when provenance says the runs are incomparable",
    )
    export = trace_sub.add_parser(
        "export",
        help="convert a trace for external tools (Perfetto, flamegraphs)",
    )
    export.add_argument("file", help="NDJSON trace file")
    export.add_argument(
        "--format", choices=["chrome", "collapsed"], default="chrome",
        help="chrome = trace-event JSON (Perfetto / chrome://tracing); "
        "collapsed = flamegraph.pl collapsed stacks",
    )
    export.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="output file (default: stdout)",
    )

    metrics_cmd = sub.add_parser(
        "metrics", help="inspect metrics-registry snapshots"
    )
    metrics_sub = metrics_cmd.add_subparsers(dest="metrics_command", required=True)
    metrics_export = metrics_sub.add_parser(
        "export",
        help="convert a metrics snapshot (--metrics FILE output) for "
        "external scrapers",
    )
    metrics_export.add_argument(
        "file", nargs="?", default=None,
        help="metrics snapshot JSON file (omit to export only the "
        "process-level gauges)",
    )
    metrics_export.add_argument(
        "--format", choices=["prom"], default="prom",
        help="prom = Prometheus text exposition format",
    )
    metrics_export.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="output file (default: stdout)",
    )

    profile_cmd = sub.add_parser(
        "profile", help="inspect sampled-profile events in traces"
    )
    profile_sub = profile_cmd.add_subparsers(
        dest="profile_command", required=True
    )
    profile_report = profile_sub.add_parser(
        "report",
        help="top-N self-time, per-span attribution, and per-shard "
        "resource tables from a trace recorded with --profile",
    )
    profile_report.add_argument("file", help="NDJSON trace file")
    profile_report.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="rows per table (default 15)",
    )

    bench = sub.add_parser(
        "bench", help="benchmark baseline utilities (the perf ratchet)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_check = bench_sub.add_parser(
        "check",
        help="compare the latest bench run against the committed baseline; "
        "exit 1 beyond tolerance",
    )
    bench_update = bench_sub.add_parser(
        "update-baseline",
        help="rewrite the committed baseline from the latest bench run",
    )
    for sub_parser in (bench_check, bench_update):
        sub_parser.add_argument(
            "--latest", default="BENCH_pipeline.json", metavar="FILE",
            help="bench results to gate (default: BENCH_pipeline.json)",
        )
        sub_parser.add_argument(
            "--baseline", default="benchmarks/BENCH_baseline.json",
            metavar="FILE",
            help="baseline document (default: benchmarks/BENCH_baseline.json)",
        )
    bench_check.add_argument(
        "--tolerance", type=float, default=None, metavar="FRACTION",
        help="override the wall-time tolerance (e.g. 0.5 allows +50%%); "
        "stage and throughput tolerances scale with it",
    )
    return parser


def _builtin_workload(name: str, heuristic: str, mapping: str):
    """(system, hw, options, rates, scenario) for one built-in workload."""
    if name == "paper":
        system, hw = paper_system(), fully_connected(HW_NODE_COUNT)
        options = FrameworkOptions(
            heuristic=Heuristic(heuristic),
            mapping=MappingApproach(mapping),
        )
        rates, scenario = None, None
    elif name == "avionics":
        system, hw = avionics_system(), avionics_hw(6)
        options = FrameworkOptions(
            heuristic=Heuristic(heuristic),
            mapping=MappingApproach(mapping),
            resources=avionics_resources(),
        )
        rates, scenario = avionics_failure_rates(), avionics_cabinet_loss()
    else:
        system, hw = automotive_system(), automotive_hw()
        options = FrameworkOptions(
            heuristic=Heuristic(heuristic),
            mapping=MappingApproach(mapping),
            policy=automotive_policy(),
            resources=automotive_resources(),
        )
        rates, scenario = automotive_failure_rates(), automotive_zone_loss()
    return system, hw, options, rates, scenario


def _print_stage_footer() -> None:
    footer = stage_footer(current())
    if footer:
        print(footer)


def _cmd_integrate(args: argparse.Namespace) -> int:
    if args.workload:
        system, hw, options, _rates, _scenario = _builtin_workload(
            args.workload, args.heuristic, args.mapping
        )
        if args.hw:
            hw = load_hw(args.hw)
        elif args.hw_nodes:
            hw = fully_connected(args.hw_nodes)
    else:
        if not args.system:
            print(
                "error: provide a system file or --workload NAME",
                file=sys.stderr,
            )
            return 2
        system = load_system(args.system)
        if args.hw:
            hw = load_hw(args.hw)
        elif args.hw_nodes:
            hw = fully_connected(args.hw_nodes)
        else:
            print("error: provide --hw FILE or --hw-nodes N", file=sys.stderr)
            return 2
        options = FrameworkOptions(
            heuristic=Heuristic(args.heuristic),
            mapping=MappingApproach(args.mapping),
        )
    options.engine = args.engine
    framework = IntegrationFramework(system, options)
    outcome = framework.integrate(hw)
    campaign = None
    if args.validate_trials > 0:
        campaign = framework.validate_by_campaign(
            outcome, trials=args.validate_trials, seed=args.seed,
            engine=args.engine,
        )
    print(render_clusters(outcome.condensation.state))
    print()
    print(render_mapping(outcome.mapping))
    print()
    print(outcome.summary())
    if args.verbose:
        _print_stage_footer()
        if campaign is not None:
            print(
                f"campaign: {campaign.elapsed_s:.3f}s · "
                f"{campaign.trials_per_s:.0f} trials/s"
            )
    if args.out:
        from repro.io.serialization import dump_outcome

        dump_outcome(outcome, args.out)
        print(f"wrote {args.out}")
    return 0 if outcome.feasible else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    report = audit_system(
        system,
        influence_budget=args.influence_budget,
        separation_floor=args.separation_floor,
    )
    if report.passed:
        print("audit passed")
        return 0
    for line in report.describe():
        print(f"finding: {line}")
    return 1


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    system = load_system(args.system)
    graph = expand_replication(system.influence_at(Level.PROCESS))
    curve = sweep_integration_levels(graph, campaign_trials=args.trials)
    rows = [
        (
            p.hw_nodes,
            "yes" if p.feasible else "no",
            p.cross_influence if p.feasible else "-",
            p.max_node_criticality if p.feasible else "-",
            f"{p.fault_escape_rate:.3f}" if p.feasible else "-",
        )
        for p in curve.points
    ]
    print(
        format_table(
            ["HW nodes", "feasible", "cross-influence", "max criticality", "escape rate"],
            rows,
            title="Integration-level trade-off",
        )
    )
    from repro.metrics.figures import tradeoff_chart

    print()
    print(tradeoff_chart(curve))
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.resilience.campaign import replay_scenario, run_resilience_campaign

    system, hw, options, rates, scenario = _builtin_workload(
        args.workload, args.heuristic, args.mapping
    )
    options.engine = args.engine
    framework = IntegrationFramework(system, options)
    outcome = framework.integrate(hw)
    if args.scenario:
        if scenario is None:
            print(
                "error: the paper workload has no scripted scenario",
                file=sys.stderr,
            )
            return 2
        report = replay_scenario(
            outcome,
            scenario,
            seed=args.seed,
            resources=options.resources,
            approach=options.mapping.value,
        )
        print(f"scenario: {scenario.name} — {scenario.description}")
    else:
        report = run_resilience_campaign(
            outcome,
            failures=args.failures,
            trials=args.trials,
            seed=args.seed,
            horizon=args.horizon,
            rates=rates,
            resources=options.resources,
            approach=options.mapping.value,
            policy=_exec_policy(args),
            checkpoint=args.checkpoint,
            resume=args.resume,
            engine=args.engine,
        )
    print(render_resilience(report))
    if report.exec_report is not None and (
        args.verbose or report.exec_report.workers
    ):
        print(render_exec_report(report.exec_report))
    if args.verbose:
        _print_stage_footer()
        print(
            f"campaign: {report.elapsed_s:.3f}s · "
            f"{report.trials_per_s:.0f} trials/s"
        )
    return 0 if report.separation_violations == 0 else 1


def _cmd_faultsim(args: argparse.Namespace) -> int:
    from repro.faultsim.campaign import run_campaign

    system, hw, options, _rates, _scenario = _builtin_workload(
        args.workload, args.heuristic, args.mapping
    )
    framework = IntegrationFramework(system, options)
    outcome = framework.integrate(hw)
    state = outcome.condensation.state
    result = run_campaign(
        state.graph,
        state.as_partition(),
        trials=args.trials,
        seed=args.seed,
        policy=_exec_policy(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
        engine=args.engine,
        backend=args.backend,
        shards=args.shards,
        status_file=args.status_file,
        telemetry_stream=args.telemetry_stream,
        listen=args.listen,
        profile=args.profile,
    )
    print(
        render_campaign(
            result,
            title=f"Fault-injection campaign ({args.workload}, "
            f"{args.trials} trials, seed {args.seed})",
        )
    )
    if result.exec_report is not None and (
        args.verbose or result.exec_report.workers
    ):
        if hasattr(result.exec_report, "leases_granted"):
            print(render_shard_report(result.exec_report))
        else:
            print(render_exec_report(result.exec_report))
    if args.verbose:
        _print_stage_footer()
        print(
            f"campaign: {result.elapsed_s:.3f}s · "
            f"{result.trials_per_s:.0f} trials/s · "
            f"engine {result.engine}"
        )
    return 0


def _cmd_exec(args: argparse.Namespace) -> int:
    import tempfile

    from repro.exec import run_chaos_selftest, run_shard_chaos_selftest

    if args.exec_command == "shard-worker":
        if args.connect is not None:
            from repro.exec.tcp import tcp_worker_main

            return tcp_worker_main(args.connect, reconnect=args.reconnect)
        from repro.exec.transport import shard_worker_main

        return shard_worker_main()
    if args.exec_command == "digest":
        from repro.obs.analyze import digest_exec_events, render_digest

        events = load_ndjson(args.file)
        print(render_digest(digest_exec_events(events)))
        return 0
    if args.exec_command == "watch":
        return _cmd_exec_watch(args)

    def selftest(workdir: str):
        if args.shards:
            return run_shard_chaos_selftest(
                workdir,
                trials=args.trials or 1024,
                shards=args.shards,
                workers=args.workers,
                seed=args.seed,
                backend=args.backend,
            )
        return run_chaos_selftest(
            workdir,
            trials=args.trials or 32,
            workers=args.workers,
            seed=args.seed,
        )

    if args.workdir is not None:
        result = selftest(args.workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
            result = selftest(workdir)
    for line in result.describe():
        print(line)
    print(
        "chaos self-test "
        + ("PASSED" if result.passed else "FAILED")
        + f" ({len(result.checks)} checks, {len(result.failures)} failures)"
    )
    return 0 if result.passed else 1


def _cmd_exec_watch(args: argparse.Namespace) -> int:
    import os
    import time as _time

    from repro.obs.telemetry import load_status, render_status

    if args.once:
        print(render_status(load_status(args.file)))
        return 0
    waited_notice = False
    try:
        while True:
            if not os.path.exists(args.file):
                if not waited_notice:
                    print(f"waiting for {args.file} ...", flush=True)
                    waited_notice = True
                _time.sleep(args.interval)
                continue
            status = load_status(args.file)
            # Clear + home, then the current view: a cheap live display
            # that works in any ANSI terminal.
            sys.stdout.write("\x1b[2J\x1b[H")
            print(render_status(status), flush=True)
            if status.get("complete"):
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs.metrics import to_prometheus_text
    from repro.obs.profile import process_metrics_snapshot

    if args.file is not None:
        try:
            with open(args.file) as handle:
                snapshot = json.load(handle)
        except OSError as exc:
            raise DDSIError(
                f"cannot read metrics file {args.file!r}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"metrics file {args.file!r} is not valid JSON: {exc}"
            ) from exc
    else:
        snapshot = {"format": "repro-metrics", "version": 1, "metrics": {}}
    # Standard process-level gauges ride along with every export;
    # campaign metrics win on a name collision.
    if isinstance(snapshot.get("metrics"), dict):
        for name, data in process_metrics_snapshot()["metrics"].items():
            snapshot["metrics"].setdefault(name, data)
    text = to_prometheus_text(snapshot)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text)
        except OSError as exc:
            raise DDSIError(
                f"cannot write export file {args.out!r}: {exc}"
            ) from exc
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import render_profile_report

    events = load_ndjson(args.file)
    print(render_profile_report(events, top=args.top))
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    system = paper_system() if args.name == "paper" else avionics_system()
    payload = system_to_dict(system)
    if args.name == "avionics":
        payload["_hw_hint"] = hw_to_dict(avionics_hw(6))
    text = json.dumps(payload, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summarize":
        events = load_ndjson(args.file)
        if args.tree:
            print(render_tree(events))
        else:
            print(render_summary(events))
        return 0
    if args.trace_command == "critical-path":
        from repro.obs.analyze import render_critical_path

        print(render_critical_path(load_ndjson(args.file)))
        return 0
    if args.trace_command == "diff":
        return _cmd_trace_diff(args)
    return _cmd_trace_export(args)


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.obs.analyze import (
        comparability_problems,
        diff_traces,
        render_diff,
    )

    events_a = load_ndjson(args.baseline)
    events_b = load_ndjson(args.candidate)
    refusals, _warnings = comparability_problems(events_a, events_b)
    if refusals and not args.force:
        for refusal in refusals:
            print(f"error: incomparable traces: {refusal}", file=sys.stderr)
        print("(use --force to diff anyway)", file=sys.stderr)
        return 2
    diff = diff_traces(
        events_a,
        events_b,
        threshold=args.threshold / 100.0,
        min_delta_s=args.min_delta_ms / 1000.0,
    )
    if refusals:
        diff.warnings = [f"forced: {r}" for r in refusals] + diff.warnings
    print(render_diff(diff))
    return 1 if diff.regression else 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro.obs.analyze import to_chrome_trace, to_collapsed_stacks

    events = load_ndjson(args.file)
    if args.format == "chrome":
        text = json.dumps(to_chrome_trace(events), indent=1)
    else:
        text = to_collapsed_stacks(events)
    if args.out:
        try:
            with open(args.out, "w") as handle:
                handle.write(text + "\n")
        except OSError as exc:
            raise DDSIError(
                f"cannot write export file {args.out!r}: {exc}"
            ) from exc
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs.analyze import (
        check_bench,
        load_baseline,
        render_bench_check,
        write_baseline,
    )
    from repro.obs.analyze.bench import load_latest

    entries = load_latest(args.latest)
    if args.bench_command == "update-baseline":
        write_baseline(entries, args.baseline)
        print(
            f"wrote {args.baseline} from {args.latest} "
            f"({len(entries)} case(s))"
        )
        return 0
    baseline = load_baseline(args.baseline)
    tolerance = None
    if args.tolerance is not None:
        # One knob scales the whole gate: stages get 4/3 of the wall
        # tolerance (noisier), throughput may drop by at most half of it.
        tolerance = {
            "wall_s": args.tolerance,
            "stage_s": args.tolerance * 4.0 / 3.0,
            "trials_per_s": min(args.tolerance / 2.0, 0.95),
        }
    check = check_bench(entries, baseline, tolerance=tolerance)
    print(render_bench_check(check))
    return 0 if check.passed else 1


def _check_writable(path: str, what: str) -> None:
    """Fail fast (DDSIError -> exit 2) before running a long command."""
    try:
        with open(path, "w"):
            pass
    except OSError as exc:
        raise DDSIError(f"cannot write {what} file {path!r}: {exc}") from exc


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "integrate": _cmd_integrate,
        "audit": _cmd_audit,
        "tradeoff": _cmd_tradeoff,
        "resilience": _cmd_resilience,
        "faultsim": _cmd_faultsim,
        "exec": _cmd_exec,
        "example": _cmd_example,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "profile": _cmd_profile,
        "bench": _cmd_bench,
    }
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    verbose = getattr(args, "verbose", False)
    profile_hz = getattr(args, "profile", None)
    try:
        if not (trace_path or metrics_path or verbose or profile_hz):
            return handlers[args.command](args)
        if trace_path:
            _check_writable(trace_path, "trace")
        if metrics_path:
            _check_writable(metrics_path, "metrics")
        recorder = Recorder()
        recorder.set_provenance(
            command=args.command, workload=getattr(args, "workload", None)
        )
        with use(recorder):
            if profile_hz:
                from repro.obs.profile import Profiler

                # The profiler context appends its drained events to the
                # recorder on exit — before the trace is written below.
                with Profiler(recorder, hz=profile_hz):
                    code = handlers[args.command](args)
            else:
                code = handlers[args.command](args)
        if trace_path:
            recorder.write_trace(trace_path)
        if metrics_path:
            recorder.write_metrics(metrics_path)
        return code
    except DDSIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
