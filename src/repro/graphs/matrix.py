"""Adjacency-matrix utilities for influence computations.

Two consumers share this plumbing:

* the separation power series (Eq. 3) — ``P + P^2 + P^3 + ...`` over a
  dense adjacency matrix with a stable node ordering, truncated power
  sums, and the closed-form ``(I - P)^{-1} - I`` limit;
* the vectorized allocation engine — :class:`CompiledInfluence` holds the
  complement matrix ``1 - W`` so cluster-to-cluster influence (Eq. 2's
  noisy-or over every member pair) reduces to a product over one
  sub-block, bit-identical to the scalar
  :func:`~repro.influence.probability.combine_probabilities` fold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError, InfluenceError
from repro.graphs.digraph import Digraph, Node
from repro.obs import current


def adjacency_matrix(graph: Digraph, order: list[Node] | None = None) -> tuple[np.ndarray, list[Node]]:
    """Dense adjacency (weight) matrix and the node order used.

    ``matrix[i, j]`` is the weight of edge ``order[i] -> order[j]`` or 0.
    """
    nodes = list(order) if order is not None else graph.nodes()
    if order is not None:
        missing = [n for n in nodes if not graph.has_node(n)]
        if missing:
            raise GraphError(f"order contains unknown nodes: {missing!r}")
        if len(set(nodes)) != len(nodes):
            raise GraphError("order contains duplicate nodes")
        if len(nodes) != len(graph):
            raise GraphError("order must cover every node exactly once")
    index = {node: i for i, node in enumerate(nodes)}
    matrix = np.zeros((len(nodes), len(nodes)))
    for src, dst, w in graph.edges():
        matrix[index[src], index[dst]] = w
    return matrix, nodes


@dataclass(frozen=True)
class CompiledInfluence:
    """An influence graph's weights lowered to arrays for allocation.

    ``weights[i, j]`` is the influence of ``names[i]`` on ``names[j]``
    (0 where no edge exists, replica links included at their fixed 0);
    ``complements`` is the elementwise ``1.0 - weights`` — the same
    float64 subtraction the scalar fold performs per pair, precomputed
    once.

    :meth:`group_influence` reproduces
    ``combine_probabilities(graph.influence(s, d) for s in a for d in b)``
    bit-for-bit: the sub-block is raveled in C order (source-major,
    destination-inner — the scalar loop order) and folded left-to-right
    by :func:`math.prod`, which performs the identical multiplication
    sequence.  Float multiplication is not associative, so the order is
    part of the contract.
    """

    names: tuple[str, ...]
    index: dict[str, int]
    weights: np.ndarray
    complements: np.ndarray

    @classmethod
    def from_weights(cls, names: tuple[str, ...], weights: np.ndarray) -> "CompiledInfluence":
        """Build from an already-compiled weight matrix.

        The fault kernel's ``CompiledGraph.weights`` qualifies, so one
        compile serves both allocation and the fault campaign.
        """
        return cls(
            names=tuple(names),
            index={name: i for i, name in enumerate(names)},
            weights=weights,
            complements=1.0 - weights,
        )

    def __len__(self) -> int:
        return len(self.names)

    def rows(self, names: "list[str] | tuple[str, ...]") -> list[int]:
        """Row indices of ``names``, in the given order."""
        index = self.index
        return [index[name] for name in names]

    def group_influence(self, rows_a: list[int], rows_b: list[int]) -> float:
        """Eq. (2) combined influence of member rows ``a`` on rows ``b``."""
        if len(rows_a) == 1 and len(rows_b) == 1:
            return 1.0 - self.complements[rows_a[0], rows_b[0]]
        block = self.complements[np.ix_(rows_a, rows_b)]
        return 1.0 - math.prod(block.ravel().tolist())

    def pair_weight(self, a: int, b: int) -> float:
        """The raw edge weight between two single rows."""
        return float(self.weights[a, b])


def power_series_sum(matrix: np.ndarray, max_order: int) -> np.ndarray:
    """``P + P^2 + ... + P^max_order`` computed iteratively.

    ``max_order`` counts the number of terms; the paper's Eq. (3) writes
    three explicit terms (direct, one-hop, two-hop transitive), i.e.
    ``max_order=3``.
    """
    if max_order < 1:
        raise InfluenceError("max_order must be >= 1")
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InfluenceError("matrix must be square")
    rec = current()
    if rec.enabled:
        rec.counter("power_series_calls_total").inc(form="truncated")
        rec.counter("power_series_terms_total").inc(max_order)
        with rec.timed("power_series_s", form="truncated"):
            return _power_series_sum(matrix, max_order)
    return _power_series_sum(matrix, max_order)


def _power_series_sum(matrix: np.ndarray, max_order: int) -> np.ndarray:
    acc = matrix.copy()
    term = matrix.copy()
    for _ in range(max_order - 1):
        term = term @ matrix
        acc += term
    return acc


# Convergence guard (Eq. 3): the power series is only meaningful while
# its terms shrink; on a divergent influence matrix (spectral radius
# >= 1) a deep truncation silently returns astronomically wrong values.
MAX_SERIES_ORDER = 128
_NEGLIGIBLE_TERM = 1e-300


def power_series_sum_guarded(
    matrix: np.ndarray,
    max_order: int,
    growth_patience: int = 2,
) -> tuple[np.ndarray, int, bool]:
    """``P + ... + P^k`` with divergence detection.

    Accumulates at most ``max_order`` terms (itself capped at
    :data:`MAX_SERIES_ORDER`), watching the infinity norm of each term:

    * a term that underflows to negligible ends the sum early —
      the remaining tail cannot change the result;
    * ``growth_patience`` consecutive non-decreasing terms mean the
      series is not converging — the sum stops there and is flagged.

    Returns ``(sum, terms_used, diverging)``; ``diverging`` is True when
    the guard tripped and the returned truncation must not be trusted as
    an approximation of the infinite series.
    """
    if max_order < 1:
        raise InfluenceError("max_order must be >= 1")
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InfluenceError("matrix must be square")
    max_order = min(max_order, MAX_SERIES_ORDER)
    rec = current()
    if rec.enabled:
        rec.counter("power_series_calls_total").inc(form="guarded")
        with rec.timed("power_series_s", form="guarded"):
            result = _power_series_sum_guarded(matrix, max_order, growth_patience)
        rec.counter("power_series_terms_total").inc(result[1])
        return result
    return _power_series_sum_guarded(matrix, max_order, growth_patience)


def _power_series_sum_guarded(
    matrix: np.ndarray,
    max_order: int,
    growth_patience: int,
) -> tuple[np.ndarray, int, bool]:
    acc = matrix.copy()
    term = matrix.copy()
    previous_norm = float(np.max(np.abs(term))) if term.size else 0.0
    growth_streak = 0
    terms = 1
    for _ in range(max_order - 1):
        term = term @ matrix
        norm = float(np.max(np.abs(term))) if term.size else 0.0
        if norm < _NEGLIGIBLE_TERM:
            break
        acc += term
        terms += 1
        if norm >= previous_norm:
            growth_streak += 1
            if growth_streak >= growth_patience:
                return acc, terms, True
        else:
            growth_streak = 0
        previous_norm = norm
    return acc, terms, False


def spectral_radius(matrix: np.ndarray) -> float:
    """Largest eigenvalue magnitude; the series converges iff this is < 1."""
    if matrix.size == 0:
        return 0.0
    return float(max(abs(np.linalg.eigvals(matrix))))


def power_series_limit(matrix: np.ndarray) -> np.ndarray:
    """Closed form of the infinite series: ``(I - P)^{-1} - I``.

    Raises :class:`InfluenceError` when the series diverges
    (spectral radius >= 1).
    """
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InfluenceError("matrix must be square")
    radius = spectral_radius(matrix)
    if radius >= 1.0 - 1e-12:
        raise InfluenceError(
            f"influence series diverges (spectral radius {radius:.4f} >= 1); "
            "use a truncated order instead"
        )
    rec = current()
    if rec.enabled:
        rec.counter("power_series_calls_total").inc(form="closed")
        with rec.timed("power_series_s", form="closed"):
            return _power_series_limit(matrix)
    return _power_series_limit(matrix)


def _power_series_limit(matrix: np.ndarray) -> np.ndarray:
    n = matrix.shape[0]
    identity = np.eye(n)
    return np.linalg.inv(identity - matrix) - identity


def series_tail_bound(matrix: np.ndarray, max_order: int) -> float:
    """Upper bound on the neglected tail after ``max_order`` terms.

    Uses the induced infinity norm: ``||Σ_{m>k} P^m||_inf <=
    ||P||_inf^{k+1} / (1 - ||P||_inf)`` when ``||P||_inf < 1``, else inf.
    This substantiates the paper's "higher-order terms are likely to be
    small enough to be neglected".
    """
    norm = float(np.max(np.sum(np.abs(matrix), axis=1))) if matrix.size else 0.0
    if norm >= 1.0:
        return float("inf")
    return norm ** (max_order + 1) / (1.0 - norm)
