"""Graph substrate: digraph structure and classical algorithms.

Everything in this package is dependency-free (numpy only, for the matrix
helpers) and purpose-built for the DDSI framework's influence and
allocation graphs.
"""

from repro.graphs.algorithms import (
    bfs_reachable,
    dijkstra,
    has_path,
    is_acyclic,
    is_tree,
    strongly_connected_components,
    topological_sort,
    weakly_connected_components,
)
from repro.graphs.condensation import (
    condense,
    max_combiner,
    merge_two,
    noisy_or_combiner,
    sum_combiner,
    validate_partition,
)
from repro.graphs.digraph import Digraph
from repro.graphs.matrix import (
    MAX_SERIES_ORDER,
    adjacency_matrix,
    power_series_limit,
    power_series_sum,
    power_series_sum_guarded,
    series_tail_bound,
    spectral_radius,
)
from repro.graphs.mincut import st_min_cut, stoer_wagner

__all__ = [
    "Digraph",
    "MAX_SERIES_ORDER",
    "adjacency_matrix",
    "bfs_reachable",
    "condense",
    "dijkstra",
    "has_path",
    "is_acyclic",
    "is_tree",
    "max_combiner",
    "merge_two",
    "noisy_or_combiner",
    "power_series_limit",
    "power_series_sum",
    "power_series_sum_guarded",
    "series_tail_bound",
    "spectral_radius",
    "st_min_cut",
    "stoer_wagner",
    "strongly_connected_components",
    "sum_combiner",
    "topological_sort",
    "validate_partition",
    "weakly_connected_components",
]
