"""A minimal, dependency-free weighted directed graph.

The influence graphs, SW process graphs and HW resource graphs of the DDSI
framework are all small, dense-ish directed graphs with float edge weights
and arbitrary hashable node payloads.  This module implements exactly the
operations the framework needs, from scratch (the paper predates any graph
library we could lean on, and the framework's semantics — replica edges,
influence combination — are easiest to keep honest on a purpose-built
structure).

Nodes are arbitrary hashable objects.  Each node and each edge can carry a
``data`` dictionary for auxiliary payloads (attributes, factor tuples,
replica flags).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from repro.errors import GraphError

Node = Hashable


class Digraph:
    """Weighted directed graph with node/edge payload dictionaries.

    Edge weights default to 1.0.  At most one edge may exist per ordered
    node pair; re-adding an existing edge raises unless ``replace=True``.
    """

    def __init__(self) -> None:
        self._succ: dict[Node, dict[Node, float]] = {}
        self._pred: dict[Node, dict[Node, float]] = {}
        self._node_data: dict[Node, dict[str, Any]] = {}
        self._edge_data: dict[tuple[Node, Node], dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: Node, **data: Any) -> None:
        """Add ``node``; merging ``data`` if the node already exists."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}
            self._node_data[node] = {}
        self._node_data[node].update(data)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        self._require_node(node)
        for succ in list(self._succ[node]):
            self.remove_edge(node, succ)
        for pred in list(self._pred[node]):
            self.remove_edge(pred, node)
        del self._succ[node]
        del self._pred[node]
        del self._node_data[node]

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._succ)

    def node_data(self, node: Node) -> dict[str, Any]:
        self._require_node(node)
        return self._node_data[node]

    def __contains__(self, node: Node) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(
        self,
        source: Node,
        target: Node,
        weight: float = 1.0,
        replace: bool = False,
        **data: Any,
    ) -> None:
        """Add a directed edge ``source -> target``.

        Both endpoints are created if absent.  Self-loops are rejected:
        an FCM has no defined influence on itself.
        """
        if source == target:
            raise GraphError(f"self-loop rejected on node {source!r}")
        if not replace and self.has_edge(source, target):
            raise GraphError(f"edge {source!r} -> {target!r} already exists")
        self.add_node(source)
        self.add_node(target)
        self._succ[source][target] = float(weight)
        self._pred[target][source] = float(weight)
        self._edge_data[(source, target)] = dict(data)

    def remove_edge(self, source: Node, target: Node) -> None:
        self._require_edge(source, target)
        del self._succ[source][target]
        del self._pred[target][source]
        del self._edge_data[(source, target)]

    def has_edge(self, source: Node, target: Node) -> bool:
        return source in self._succ and target in self._succ[source]

    def weight(self, source: Node, target: Node) -> float:
        self._require_edge(source, target)
        return self._succ[source][target]

    def set_weight(self, source: Node, target: Node, weight: float) -> None:
        self._require_edge(source, target)
        self._succ[source][target] = float(weight)
        self._pred[target][source] = float(weight)

    def edge_data(self, source: Node, target: Node) -> dict[str, Any]:
        self._require_edge(source, target)
        return self._edge_data[(source, target)]

    def edges(self) -> list[tuple[Node, Node, float]]:
        """All edges as ``(source, target, weight)`` triples."""
        return [
            (src, dst, w)
            for src, targets in self._succ.items()
            for dst, w in targets.items()
        ]

    def adjacency(self) -> dict[Node, dict[Node, float]]:
        """The internal successor mapping ``{src: {dst: weight}}``.

        Exposed for hot paths that iterate every edge; callers must treat
        the returned structure as read-only.
        """
        return self._succ

    def edge_payloads(self) -> dict[tuple[Node, Node], dict[str, Any]]:
        """The internal ``(src, dst) -> payload`` mapping (read-only)."""
        return self._edge_data

    def _install_edge(
        self,
        source: Node,
        target: Node,
        weight: float,
        data: dict[str, Any],
    ) -> None:
        """Unchecked edge insert for bulk graph construction.

        Both endpoints must already exist and the edge must not; callers
        (graph copies, ``InfluenceGraph.as_digraph``) guarantee this.
        """
        self._succ[source][target] = weight
        self._pred[target][source] = weight
        self._edge_data[(source, target)] = data

    def edge_count(self) -> int:
        return len(self._edge_data)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def successors(self, node: Node) -> list[Node]:
        self._require_node(node)
        return list(self._succ[node])

    def predecessors(self, node: Node) -> list[Node]:
        self._require_node(node)
        return list(self._pred[node])

    def neighbors(self, node: Node) -> list[Node]:
        """Successors and predecessors, deduplicated, insertion order."""
        self._require_node(node)
        seen: dict[Node, None] = {}
        for other in self._succ[node]:
            seen[other] = None
        for other in self._pred[node]:
            seen[other] = None
        return list(seen)

    def out_degree(self, node: Node) -> int:
        self._require_node(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        self._require_node(node)
        return len(self._pred[node])

    def out_edges(self, node: Node) -> list[tuple[Node, float]]:
        self._require_node(node)
        return list(self._succ[node].items())

    def in_edges(self, node: Node) -> list[tuple[Node, float]]:
        self._require_node(node)
        return list(self._pred[node].items())

    # ------------------------------------------------------------------
    # Whole-graph helpers
    # ------------------------------------------------------------------
    def copy(self) -> "Digraph":
        """Deep-ish copy: payload dicts are shallow-copied."""
        clone = Digraph()
        for node in self._succ:
            clone.add_node(node, **self._node_data[node])
        for (src, dst), data in self._edge_data.items():
            clone.add_edge(src, dst, self._succ[src][dst], **data)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Digraph":
        """Induced subgraph on ``nodes`` (payloads shared by shallow copy)."""
        keep = set(nodes)
        missing = keep - set(self._succ)
        if missing:
            raise GraphError(f"subgraph nodes not in graph: {sorted(map(repr, missing))}")
        sub = Digraph()
        for node in self._succ:
            if node in keep:
                sub.add_node(node, **self._node_data[node])
        for (src, dst), data in self._edge_data.items():
            if src in keep and dst in keep:
                sub.add_edge(src, dst, self._succ[src][dst], **data)
        return sub

    def reverse(self) -> "Digraph":
        """A copy with every edge direction flipped."""
        rev = Digraph()
        for node in self._succ:
            rev.add_node(node, **self._node_data[node])
        for (src, dst), data in self._edge_data.items():
            rev.add_edge(dst, src, self._succ[src][dst], **data)
        return rev

    def to_undirected_weights(self) -> dict[frozenset, float]:
        """Collapse to undirected weights, summing antiparallel edges.

        Used by min-cut, which operates on mutual (bidirectional) influence.
        """
        out: dict[frozenset, float] = {}
        for src, dst, w in self.edges():
            key = frozenset((src, dst))
            out[key] = out.get(key, 0.0) + w
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Digraph(nodes={len(self)}, edges={self.edge_count()})"

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------
    def _require_node(self, node: Node) -> None:
        if node not in self._succ:
            raise GraphError(f"node {node!r} not in graph")

    def _require_edge(self, source: Node, target: Node) -> None:
        if not self.has_edge(source, target):
            raise GraphError(f"edge {source!r} -> {target!r} not in graph")
