"""Cluster condensation (quotient graphs).

When SW nodes are combined during allocation (Section 5.2 of the paper),
internal influences disappear and parallel influences onto a common
neighbour combine.  This module performs the purely graph-theoretic part:
given a partition of the nodes, build the quotient graph whose edge
weights are combined with a caller-supplied rule (the influence engine
supplies Eq. (4); tests can supply plain sums).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import GraphError
from repro.graphs.digraph import Digraph, Node

# A combiner folds the list of parallel edge weights between two clusters
# into one weight.
WeightCombiner = Callable[[list[float]], float]


def sum_combiner(weights: list[float]) -> float:
    """Plain additive combination (used by communication-cost baselines)."""
    return float(sum(weights))


def max_combiner(weights: list[float]) -> float:
    return float(max(weights))


def noisy_or_combiner(weights: list[float]) -> float:
    """Probabilistic OR: ``1 - Π(1 - w)`` — the shape of Eq. (4).

    Weights must be probabilities in [0, 1].
    """
    prod = 1.0
    for w in weights:
        if not 0.0 <= w <= 1.0:
            raise GraphError(f"noisy-or combiner requires weights in [0,1], got {w}")
        prod *= 1.0 - w
    return 1.0 - prod


def validate_partition(graph: Digraph, partition: Iterable[Iterable[Node]]) -> list[list[Node]]:
    """Check that ``partition`` covers every node exactly once.

    Returns the partition as a list of lists (blocks in given order).
    """
    blocks = [list(block) for block in partition]
    flat: list[Node] = [node for block in blocks for node in block]
    if len(flat) != len(set(flat)):
        raise GraphError("partition blocks overlap")
    if set(flat) != set(graph.nodes()):
        raise GraphError("partition does not cover every node exactly once")
    if any(not block for block in blocks):
        raise GraphError("partition contains an empty block")
    return blocks


def condense(
    graph: Digraph,
    partition: Iterable[Iterable[Node]],
    combiner: WeightCombiner = sum_combiner,
    block_labels: list[Node] | None = None,
) -> tuple[Digraph, dict[Node, Node]]:
    """Quotient graph induced by ``partition``.

    Returns ``(quotient, member_of)`` where ``member_of`` maps each original
    node to its block label.  Block labels default to ``frozenset(block)``.
    Intra-block edges vanish; parallel inter-block edges combine via
    ``combiner``.  Each quotient node carries ``members`` in its node data.
    """
    blocks = validate_partition(graph, partition)
    if block_labels is not None and len(block_labels) != len(blocks):
        raise GraphError("block_labels length must match partition length")
    labels: list[Node] = (
        list(block_labels) if block_labels is not None else [frozenset(b) for b in blocks]
    )
    if len(set(labels)) != len(labels):
        raise GraphError("block labels must be unique")

    member_of: dict[Node, Node] = {}
    for label, block in zip(labels, blocks):
        for node in block:
            member_of[node] = label

    quotient = Digraph()
    for label, block in zip(labels, blocks):
        quotient.add_node(label, members=tuple(block))

    # Gather parallel weights between ordered block pairs.
    bundles: dict[tuple[Node, Node], list[float]] = {}
    for src, dst, w in graph.edges():
        a, b = member_of[src], member_of[dst]
        if a == b:
            continue
        bundles.setdefault((a, b), []).append(w)

    for (a, b), weights in bundles.items():
        quotient.add_edge(a, b, combiner(weights))
    return quotient, member_of


def merge_two(
    graph: Digraph,
    first: Node,
    second: Node,
    merged_label: Node,
    combiner: WeightCombiner = sum_combiner,
) -> Digraph:
    """Convenience: condense with only ``first`` and ``second`` merged.

    All other nodes keep their identity, so iterative pairwise merging
    (heuristic H1) composes naturally.
    """
    if first == second:
        raise GraphError("cannot merge a node with itself")
    for node in (first, second):
        if not graph.has_node(node):
            raise GraphError(f"node {node!r} not in graph")
    partition: list[list[Node]] = []
    labels: list[Node] = []
    for node in graph.nodes():
        if node == first:
            partition.append([first, second])
            labels.append(merged_label)
        elif node == second:
            continue
        else:
            partition.append([node])
            labels.append(node)
    quotient, _ = condense(graph, partition, combiner, block_labels=labels)
    return quotient
