"""Minimum-cut algorithms for heuristic H2.

The paper's heuristic H2 recursively splits the SW graph along minimum
cuts.  Influence is directional, but a cut separates communication in both
directions, so cuts are computed on the *undirected* view where antiparallel
edge weights are summed (this matches H1's "mutual influence" notion).

Two algorithms are provided:

* :func:`stoer_wagner` — global minimum cut of an undirected weighted
  graph, O(V^3) with the simple priority queue variant; exact.
* :func:`st_min_cut` — s-t minimum cut via Edmonds-Karp max-flow, used by
  the "cut the graph using source and target nodes" H2 variation.
"""

from __future__ import annotations

from collections import deque

from repro.errors import GraphError
from repro.graphs.digraph import Digraph, Node
from repro.obs import current


def stoer_wagner(graph: Digraph) -> tuple[float, set[Node]]:
    """Global minimum cut of the undirected view of ``graph``.

    Returns ``(cut_weight, partition)`` where ``partition`` is one side of
    the cut (a nonempty proper subset of nodes).  Requires at least two
    nodes and a connected undirected view; nodes disconnected from the rest
    yield a zero-weight cut, which is returned rather than rejected.
    """
    nodes = graph.nodes()
    if len(nodes) < 2:
        raise GraphError("min-cut requires at least two nodes")
    rec = current()
    if rec.enabled:
        rec.counter("mincut_calls_total").inc(algorithm="stoer_wagner")
        with rec.timed("mincut_stoer_wagner_s"):
            return _stoer_wagner(graph, nodes)
    return _stoer_wagner(graph, nodes)


def _stoer_wagner(graph: Digraph, nodes: list[Node]) -> tuple[float, set[Node]]:

    # Build symmetric adjacency over supernodes; each supernode remembers
    # the original nodes merged into it.
    weights: dict[Node, dict[Node, float]] = {n: {} for n in nodes}
    for key, w in graph.to_undirected_weights().items():
        a, b = tuple(key)
        weights[a][b] = weights[a].get(b, 0.0) + w
        weights[b][a] = weights[b].get(a, 0.0) + w
    members: dict[Node, set[Node]] = {n: {n} for n in nodes}

    best_weight = float("inf")
    best_partition: set[Node] = set()
    active = list(nodes)

    while len(active) > 1:
        # Maximum adjacency ordering ("minimum cut phase").
        start = active[0]
        in_a = {start}
        order = [start]
        conn = {node: weights[start].get(node, 0.0) for node in active if node != start}
        while len(order) < len(active):
            nxt = max(conn, key=lambda node: (conn[node], _stable_key(node)))
            order.append(nxt)
            in_a.add(nxt)
            del conn[nxt]
            for other, w in weights[nxt].items():
                if other in conn:
                    conn[other] += w
        s, t = order[-2], order[-1]
        cut_of_phase = sum(weights[t].values())
        if cut_of_phase < best_weight:
            best_weight = cut_of_phase
            best_partition = set(members[t])
        # Merge t into s.
        members[s] |= members[t]
        for other, w in list(weights[t].items()):
            if other == s:
                continue
            weights[s][other] = weights[s].get(other, 0.0) + w
            weights[other][s] = weights[s][other]
            del weights[other][t]
        weights[s].pop(t, None)
        del weights[t]
        active.remove(t)

    return best_weight, best_partition


def st_min_cut(graph: Digraph, source: Node, sink: Node) -> tuple[float, set[Node]]:
    """s-t minimum cut of the undirected view, via Edmonds-Karp.

    Returns ``(cut_weight, source_side)``.
    """
    if source == sink:
        raise GraphError("source and sink must differ")
    for node in (source, sink):
        if not graph.has_node(node):
            raise GraphError(f"node {node!r} not in graph")
    rec = current()
    if rec.enabled:
        rec.counter("mincut_calls_total").inc(algorithm="st_min_cut")
        with rec.timed("mincut_st_min_cut_s"):
            return _st_min_cut(graph, source, sink)
    return _st_min_cut(graph, source, sink)


def _st_min_cut(graph: Digraph, source: Node, sink: Node) -> tuple[float, set[Node]]:
    # Residual capacities on the undirected view: capacity in both
    # directions equals the summed undirected weight.
    residual: dict[Node, dict[Node, float]] = {n: {} for n in graph.nodes()}
    for key, w in graph.to_undirected_weights().items():
        a, b = tuple(key)
        residual[a][b] = residual[a].get(b, 0.0) + w
        residual[b][a] = residual[b].get(a, 0.0) + w

    total_flow = 0.0
    while True:
        # BFS for an augmenting path with positive residual capacity.
        parent: dict[Node, Node] = {}
        frontier = deque([source])
        seen = {source}
        while frontier and sink not in parent:
            node = frontier.popleft()
            for succ, cap in residual[node].items():
                if cap > 1e-12 and succ not in seen:
                    seen.add(succ)
                    parent[succ] = node
                    frontier.append(succ)
        if sink not in seen:
            break
        # Bottleneck along the path.
        bottleneck = float("inf")
        node = sink
        while node != source:
            prev = parent[node]
            bottleneck = min(bottleneck, residual[prev][node])
            node = prev
        # Augment.
        node = sink
        while node != source:
            prev = parent[node]
            residual[prev][node] -= bottleneck
            residual[node][prev] = residual[node].get(prev, 0.0) + bottleneck
            node = prev
        total_flow += bottleneck

    # Source side = nodes reachable in the final residual graph.
    side = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for succ, cap in residual[node].items():
            if cap > 1e-12 and succ not in side:
                side.add(succ)
                frontier.append(succ)
    return total_flow, side


def _stable_key(node: Node) -> str:
    """Deterministic tie-break for max-adjacency selection."""
    return repr(node)
