"""Classical graph algorithms over :class:`repro.graphs.digraph.Digraph`.

Implemented from scratch: BFS/DFS reachability, cycle detection,
topological sort, Tarjan strongly-connected components, shortest weighted
paths (Dijkstra), and connected components of the undirected view.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graphs.digraph import Digraph, Node


def bfs_reachable(graph: Digraph, start: Node) -> set[Node]:
    """Nodes reachable from ``start`` by directed edges (``start`` included)."""
    if not graph.has_node(start):
        raise GraphError(f"node {start!r} not in graph")
    seen = {start}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for succ in graph.successors(node):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def has_path(graph: Digraph, source: Node, target: Node) -> bool:
    """True if a directed path ``source -> ... -> target`` exists."""
    return target in bfs_reachable(graph, source)


def is_acyclic(graph: Digraph) -> bool:
    """True if the directed graph contains no cycle."""
    try:
        topological_sort(graph)
    except GraphError:
        return False
    return True


def topological_sort(graph: Digraph) -> list[Node]:
    """Kahn's algorithm.  Raises :class:`GraphError` on a cycle."""
    in_deg = {node: graph.in_degree(node) for node in graph.nodes()}
    ready = deque(node for node, deg in in_deg.items() if deg == 0)
    order: list[Node] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for succ in graph.successors(node):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph):
        raise GraphError("graph contains a cycle; topological sort impossible")
    return order


def strongly_connected_components(graph: Digraph) -> list[list[Node]]:
    """Tarjan's algorithm, iterative to avoid recursion limits.

    Components are returned in reverse topological order of the
    condensation (standard Tarjan emission order).
    """
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Each work item: (node, iterator over successors)
        work = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def weakly_connected_components(graph: Digraph) -> list[set[Node]]:
    """Connected components ignoring edge direction."""
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for other in graph.neighbors(node):
                if other not in component:
                    component.add(other)
                    frontier.append(other)
        seen |= component
        components.append(component)
    return components


def dijkstra(graph: Digraph, source: Node) -> dict[Node, float]:
    """Shortest directed path weights from ``source``.

    Edge weights must be non-negative.  Unreachable nodes are absent from
    the result.
    """
    if not graph.has_node(source):
        raise GraphError(f"node {source!r} not in graph")
    dist: dict[Node, float] = {source: 0.0}
    done: set[Node] = set()
    # Tie-break heap entries with an insertion counter: nodes may not be
    # mutually comparable.
    counter = 0
    heap: list[tuple[float, int, Node]] = [(0.0, counter, source)]
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for succ, w in graph.out_edges(node):
            if w < 0:
                raise GraphError("dijkstra requires non-negative weights")
            nd = d + w
            if nd < dist.get(succ, float("inf")):
                dist[succ] = nd
                counter += 1
                heapq.heappush(heap, (nd, counter, succ))
    return dist


def is_tree(graph: Digraph, roots: Iterable[Node] | None = None) -> bool:
    """True if the graph is a forest of rooted trees (each node has at most
    one predecessor, and there are no cycles).

    This is the shape rule R2 imposes on the layered integration DAG.
    ``roots``, when given, must be exactly the set of in-degree-0 nodes.
    """
    for node in graph.nodes():
        if graph.in_degree(node) > 1:
            return False
    if not is_acyclic(graph):
        return False
    if roots is not None:
        actual = {node for node in graph.nodes() if graph.in_degree(node) == 0}
        if set(roots) != actual:
            return False
    return True
