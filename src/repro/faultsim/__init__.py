"""Fault-injection simulator: propagation, estimation, campaigns."""

from repro.faultsim.campaign import (
    CampaignResult,
    compare_partitions,
    run_campaign,
)
from repro.faultsim.events import PairEstimate, TrialRecord
from repro.faultsim.multilevel import (
    DEFAULT_CONTAINMENT,
    MultiLevelResult,
    hierarchy_value,
    run_multilevel_campaign,
)
from repro.faultsim.monte_carlo import (
    estimate_all_influences,
    estimate_influence,
    estimate_separation,
    estimate_transitive_influence,
    max_estimation_error,
)
from repro.faultsim.propagation import (
    affected_counts,
    expected_affected,
    propagate_once,
)

__all__ = [
    "CampaignResult",
    "DEFAULT_CONTAINMENT",
    "MultiLevelResult",
    "PairEstimate",
    "TrialRecord",
    "affected_counts",
    "compare_partitions",
    "estimate_all_influences",
    "estimate_influence",
    "estimate_separation",
    "estimate_transitive_influence",
    "expected_affected",
    "hierarchy_value",
    "max_estimation_error",
    "propagate_once",
    "run_multilevel_campaign",
    "run_campaign",
]
