"""Fault-injection simulator: propagation, estimation, campaigns.

Two interchangeable trial engines back every campaign and estimator:
the scalar per-trial oracle (:mod:`repro.faultsim.propagation`) and the
NumPy batch kernel (:mod:`repro.faultsim.kernel`), selected with
``engine="auto" | "scalar" | "vector"`` (see
:func:`repro.faultsim.engine.resolve_engine`).
"""

from repro.faultsim.campaign import (
    CampaignResult,
    compare_partitions,
    run_campaign,
)
from repro.faultsim.engine import ENGINES, EngineChoice, resolve_engine
from repro.faultsim.events import PairEstimate, TrialRecord
from repro.faultsim.kernel import (
    DEFAULT_BLOCK_SIZE,
    NUMPY_AVAILABLE,
    CompiledGraph,
    campaign_batch,
    compile_graph,
    propagate_with_draws,
    simulate_range,
)
from repro.faultsim.multilevel import (
    DEFAULT_CONTAINMENT,
    MultiLevelResult,
    hierarchy_value,
    run_multilevel_campaign,
)
from repro.faultsim.monte_carlo import (
    estimate_all_influences,
    estimate_influence,
    estimate_separation,
    estimate_transitive_influence,
    max_estimation_error,
)
from repro.faultsim.propagation import (
    ScalarAdjacency,
    affected_counts,
    compile_adjacency,
    expected_affected,
    propagate_once,
)

__all__ = [
    "CampaignResult",
    "CompiledGraph",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CONTAINMENT",
    "ENGINES",
    "EngineChoice",
    "MultiLevelResult",
    "NUMPY_AVAILABLE",
    "PairEstimate",
    "ScalarAdjacency",
    "TrialRecord",
    "affected_counts",
    "campaign_batch",
    "compare_partitions",
    "compile_adjacency",
    "compile_graph",
    "estimate_all_influences",
    "estimate_influence",
    "estimate_separation",
    "estimate_transitive_influence",
    "expected_affected",
    "hierarchy_value",
    "max_estimation_error",
    "propagate_once",
    "propagate_with_draws",
    "resolve_engine",
    "run_multilevel_campaign",
    "run_campaign",
    "simulate_range",
]
