"""Fault-injection campaigns over partitions and mappings.

Where :mod:`repro.faultsim.monte_carlo` estimates pairwise parameters,
campaigns answer system-level questions: *given this clustering, how far
does a fault travel?*  A campaign seeds faults uniformly over FCMs and
reports, per trial, how many FCMs and how many *clusters* (HW nodes) were
affected — the quantitative version of "mapping of FCMs which influence
each other strongly onto the same node ... so faults are not propagated
across HW nodes" (§5.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.faultsim.propagation import propagate_once
from repro.influence.influence_graph import InfluenceGraph


@dataclass(frozen=True)
class CampaignResult:
    """Aggregates of one fault-injection campaign.

    Attributes:
        trials: Number of injected faults.
        mean_affected_fcms: Average FCMs affected per trial (excluding the
            seeded FCM).
        mean_affected_clusters: Average clusters containing at least one
            affected FCM, beyond the seed's own cluster.
        max_affected_fcms: Worst single trial.
        cross_cluster_rate: Fraction of trials in which the fault escaped
            the seed's cluster.
    """

    trials: int
    mean_affected_fcms: float
    mean_affected_clusters: float
    max_affected_fcms: int
    cross_cluster_rate: float


def run_campaign(
    graph: InfluenceGraph,
    partition: list[list[str]],
    trials: int = 1000,
    seed: int = 0,
) -> CampaignResult:
    """Seed ``trials`` faults uniformly over FCMs and measure spread.

    ``partition`` maps FCMs to clusters (HW nodes); propagation runs on
    the *FCM-level* graph — the partition only determines how spread is
    counted.  Intra-cluster edges are assumed contained by the shared
    node's FCR in the cross-cluster accounting, per the paper's fault
    containment argument.
    """
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    names = graph.fcm_names()
    if not names:
        raise SimulationError("graph has no FCMs")
    cluster_of: dict[str, int] = {}
    for index, block in enumerate(partition):
        for member in block:
            if member in cluster_of:
                raise SimulationError(f"{member!r} appears in two blocks")
            cluster_of[member] = index
    missing = [n for n in names if n not in cluster_of]
    if missing:
        raise SimulationError(f"partition misses FCMs: {missing!r}")
    known = set(names)
    unknown = sorted(member for member in cluster_of if member not in known)
    if unknown:
        raise SimulationError(f"partition contains unknown FCMs: {unknown!r}")

    rng = random.Random(seed)
    total_fcms = 0
    total_clusters = 0
    worst = 0
    escapes = 0
    for trial in range(trials):
        source = names[rng.randrange(len(names))]
        record = propagate_once(graph, source, rng, trial)
        others = record.affected - {source}
        total_fcms += len(others)
        worst = max(worst, len(others))
        seed_cluster = cluster_of[source]
        hit_clusters = {cluster_of[n] for n in others} - {seed_cluster}
        total_clusters += len(hit_clusters)
        if hit_clusters:
            escapes += 1
    return CampaignResult(
        trials=trials,
        mean_affected_fcms=total_fcms / trials,
        mean_affected_clusters=total_clusters / trials,
        max_affected_fcms=worst,
        cross_cluster_rate=escapes / trials,
    )


def compare_partitions(
    graph: InfluenceGraph,
    partitions: dict[str, list[list[str]]],
    trials: int = 1000,
    seed: int = 0,
) -> dict[str, CampaignResult]:
    """Run the same campaign (same seed) against several partitions."""
    return {
        label: run_campaign(graph, partition, trials=trials, seed=seed)
        for label, partition in partitions.items()
    }
