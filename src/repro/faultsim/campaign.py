"""Fault-injection campaigns over partitions and mappings.

Where :mod:`repro.faultsim.monte_carlo` estimates pairwise parameters,
campaigns answer system-level questions: *given this clustering, how far
does a fault travel?*  A campaign seeds faults uniformly over FCMs and
reports, per trial, how many FCMs and how many *clusters* (HW nodes) were
affected — the quantitative version of "mapping of FCMs which influence
each other strongly onto the same node ... so faults are not propagated
across HW nodes" (§5.3).

Campaigns execute through :mod:`repro.exec`: trials are split into
deterministic batches with per-trial seeds
(:func:`repro.exec.batching.derive_seed`), so the result is bit-identical
whether the campaign runs serially, across a worker pool, or resumed
from a checkpoint after a crash.  Pass an
:class:`~repro.exec.runner.ExecPolicy` to parallelise and
``checkpoint=``/``resume=`` paths to make the run crash-safe.

``engine=`` selects the trial simulator: the scalar per-trial oracle,
the NumPy batch kernel (:mod:`repro.faultsim.kernel`), or ``auto``
(vector when numpy is importable).  Each engine is deterministic on its
own stream; the resolved engine is baked into the checkpoint fingerprint
so resume never mixes streams.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.exec.batching import derive_seed
from repro.exec.runner import ExecPolicy, ExecReport, run_supervised
from repro.exec.shards import ShardReport, run_sharded
from repro.faultsim.engine import record_engine_decision, resolve_engine
from repro.faultsim.propagation import compile_adjacency, propagate_once
from repro.influence.influence_graph import InfluenceGraph
from repro.obs import DEFAULT_COUNT_BUCKETS, current


@dataclass(frozen=True)
class CampaignResult:
    """Aggregates of one fault-injection campaign.

    Attributes:
        trials: Number of injected faults.
        mean_affected_fcms: Average FCMs affected per trial (excluding the
            seeded FCM).
        mean_affected_clusters: Average clusters containing at least one
            affected FCM, beyond the seed's own cluster.
        max_affected_fcms: Worst single trial.
        cross_cluster_rate: Fraction of trials in which the fault escaped
            the seed's cluster.
        engine: Which trial simulator produced the result (``scalar`` or
            ``vector``; excluded from equality — engines are compared
            statistically, not bit-wise).
        elapsed_s: Wall time of the campaign loop (``perf_counter``;
            excluded from equality so seeded reruns still compare equal).
        trials_per_s: Campaign throughput (also excluded from equality).
        exec_report: How the supervised runner completed the campaign
            (also excluded from equality; ``None`` on the serial fast
            path with no checkpointing).
    """

    trials: int
    mean_affected_fcms: float
    mean_affected_clusters: float
    max_affected_fcms: int
    cross_cluster_rate: float
    engine: str = field(default="scalar", compare=False)
    elapsed_s: float = field(default=0.0, compare=False)
    trials_per_s: float = field(default=0.0, compare=False)
    exec_report: ExecReport | ShardReport | None = field(
        default=None, compare=False, repr=False
    )


def _check_partition(
    graph: InfluenceGraph, partition: list[list[str]]
) -> dict[str, int]:
    names = graph.fcm_names()
    if not names:
        raise SimulationError("graph has no FCMs")
    cluster_of: dict[str, int] = {}
    for index, block in enumerate(partition):
        for member in block:
            if member in cluster_of:
                raise SimulationError(f"{member!r} appears in two blocks")
            cluster_of[member] = index
    missing = [n for n in names if n not in cluster_of]
    if missing:
        raise SimulationError(f"partition misses FCMs: {missing!r}")
    known = set(names)
    unknown = sorted(member for member in cluster_of if member not in known)
    if unknown:
        raise SimulationError(f"partition contains unknown FCMs: {unknown!r}")
    return cluster_of


def _combine(a: dict, b: dict) -> dict:
    """Merge the payloads of two adjacent trial ranges (trial order)."""
    return {
        "affected": a["affected"] + b["affected"],
        "cluster_hits": a["cluster_hits"] + b["cluster_hits"],
    }


def _scalar_batch_task(graph, names, cluster_of):
    """The per-trial reference path, with the adjacency hoisted out.

    The compiled adjacency is captured by the closure, so worker pools
    receive it once at fork time — per-batch messages stay
    ``(start, size, seed)`` tuples.
    """
    adjacency = compile_adjacency(graph)

    def run_batch(start: int, size: int, campaign_seed: int) -> dict:
        affected: list[int] = []
        cluster_hits: list[int] = []
        for trial in range(start, start + size):
            rng = random.Random(derive_seed(campaign_seed, trial))
            source = names[rng.randrange(len(names))]
            record = propagate_once(
                graph, source, rng, trial, adjacency=adjacency
            )
            others = record.affected - {source}
            seed_cluster = cluster_of[source]
            hit = {cluster_of[n] for n in others} - {seed_cluster}
            affected.append(len(others))
            cluster_hits.append(len(hit))
        return {"affected": affected, "cluster_hits": cluster_hits}

    return run_batch


def _vector_batch_task(graph, names, cluster_of, clusters):
    """The NumPy kernel path: whole batches as matrix operations."""
    import numpy as np

    from repro.faultsim.kernel import campaign_batch, compile_graph

    compiled = compile_graph(graph)
    cluster_vector = np.array(
        [cluster_of[name] for name in compiled.names], dtype=np.int64
    )

    def run_batch(start: int, size: int, campaign_seed: int) -> dict:
        return campaign_batch(
            compiled, cluster_vector, clusters, campaign_seed, start, size
        )

    return run_batch


def _task_from_params(params: dict):
    """Rebuild a campaign batch task from a JSON task spec.

    This is the factory behind the shard task-spec entry
    ``"repro.faultsim.campaign:_task_from_params"``: a subprocess shard
    worker receives only JSON (serialized graph, partition, resolved
    engine — never ``"auto"``, so every worker runs the exact stream the
    supervisor fingerprinted) and rebuilds the same closure the
    in-process path uses.
    """
    from repro.io.serialization import graph_from_dict

    graph = graph_from_dict(params["graph"])
    partition = [list(block) for block in params["partition"]]
    cluster_of = _check_partition(graph, partition)
    names = graph.fcm_names()
    if params["engine"] == "vector":
        return _vector_batch_task(graph, names, cluster_of, len(partition))
    return _scalar_batch_task(graph, names, cluster_of)


def campaign_task_spec(
    graph: InfluenceGraph, partition: list[list[str]], engine: str
) -> dict:
    """The JSON task spec an out-of-process shard worker rebuilds from.

    ``engine`` must already be resolved (``"scalar"``/``"vector"``,
    never ``"auto"``) so every worker runs the exact stream the
    supervisor fingerprinted.
    """
    from repro.io.serialization import graph_to_dict

    return {
        "entry": "repro.faultsim.campaign:_task_from_params",
        "params": {
            "graph": graph_to_dict(graph),
            "partition": [list(block) for block in partition],
            "engine": engine,
        },
    }


def run_campaign(
    graph: InfluenceGraph,
    partition: list[list[str]],
    trials: int = 1000,
    seed: int = 0,
    policy: ExecPolicy | None = None,
    checkpoint: str | None = None,
    resume: str | None = None,
    chaos=None,
    engine: str = "auto",
    backend: str | None = None,
    shards: int = 0,
    status_file: str | None = None,
    telemetry_stream: str | None = None,
    listen: str | None = None,
    profile: float | None = None,
) -> CampaignResult:
    """Seed ``trials`` faults uniformly over FCMs and measure spread.

    ``partition`` maps FCMs to clusters (HW nodes); propagation runs on
    the *FCM-level* graph — the partition only determines how spread is
    counted.  Intra-cluster edges are assumed contained by the shared
    node's FCR in the cross-cluster accounting, per the paper's fault
    containment argument.

    The result is a pure function of ``(trials, seed, engine)``: the
    scalar engine seeds trial ``t`` with ``derive_seed(seed, t)``, the
    vector engine draws fixed RNG blocks — neither depends on ``policy``
    (workers, batch size), retries, or checkpoint/resume history.

    ``backend``/``shards`` route the campaign through the shard-lease
    supervisor (:func:`repro.exec.shards.run_sharded`) instead of the
    batch pool: ``backend`` picks the transport (``"local"`` forked
    slots, ``"subprocess"`` isolated interpreters, or ``"tcp"`` workers
    over real network connections — or a pre-built
    :class:`~repro.exec.backend.ExecBackend` instance), ``shards`` the
    block-aligned split, and ``listen`` (tcp only) a ``HOST:PORT`` to
    await hand-started remote workers on.  Checkpoints are
    interchangeable between the two paths (same fingerprint, same
    record format), and the result is bit-identical either way —
    ``chaos`` should then be a :class:`~repro.exec.chaos.ShardChaos`.

    ``status_file``/``telemetry_stream``/``profile`` only apply on the
    sharded path: the first names a live-health JSON the supervisor
    atomically rewrites (``repro exec watch``), the second an NDJSON
    sink for the raw worker-telemetry batches (see
    :mod:`repro.obs.telemetry`), and ``profile`` (a sampling rate in
    Hz) turns on worker-side stack/resource profiling whose batches
    merge into the campaign trace.  None of them affects the result.
    """
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    cluster_of = _check_partition(graph, partition)
    names = graph.fcm_names()
    choice = resolve_engine(engine)
    record_engine_decision("faultsim", choice)
    if choice.is_vector:
        run_batch = _vector_batch_task(
            graph, names, cluster_of, len(partition)
        )
    else:
        run_batch = _scalar_batch_task(graph, names, cluster_of)

    rec = current()
    policy = policy or ExecPolicy(batch_size=trials)
    t0 = time.perf_counter()
    with rec.span(
        "faultsim.campaign",
        trials=trials,
        seed=seed,
        fcms=len(names),
        clusters=len(partition),
        workers=policy.workers,
        engine=choice.engine,
    ):
        campaign_params = {
            "fcms": sorted(names),
            "clusters": len(partition),
            "engine": choice.engine,
        }
        if backend is not None or shards > 0:
            task_spec = None
            if backend in ("subprocess", "tcp"):
                task_spec = campaign_task_spec(
                    graph, partition, choice.engine
                )
            payloads, exec_report = run_sharded(
                run_batch,
                trials=trials,
                seed=seed,
                kind="faultsim",
                params=campaign_params,
                policy=policy,
                shards=shards,
                backend=backend or "local",
                task_spec=task_spec,
                combine=_combine,
                checkpoint=checkpoint,
                resume=resume,
                chaos=chaos,
                status_file=status_file,
                telemetry_stream=telemetry_stream,
                listen=listen,
                profile=profile,
            )
        else:
            payloads, exec_report = run_supervised(
                run_batch,
                trials=trials,
                seed=seed,
                kind="faultsim",
                params=campaign_params,
                policy=policy,
                combine=_combine,
                checkpoint=checkpoint,
                resume=resume,
                chaos=chaos,
            )
        spread_hist = (
            rec.histogram("faultsim_affected_fcms", buckets=DEFAULT_COUNT_BUCKETS)
            if rec.enabled
            else None
        )
        total_fcms = 0
        total_clusters = 0
        worst = 0
        escapes = 0
        for payload in payloads:
            for count, hits in zip(payload["affected"], payload["cluster_hits"]):
                total_fcms += count
                total_clusters += hits
                worst = max(worst, count)
                if hits:
                    escapes += 1
                if spread_hist is not None:
                    spread_hist.observe(count)
    elapsed = time.perf_counter() - t0
    rate = trials / elapsed if elapsed > 0 else 0.0
    if rec.enabled:
        rec.counter("faultsim_trials_total").inc(trials, engine=choice.engine)
        rec.counter("faultsim_escapes_total").inc(escapes)
        rec.gauge("faultsim_trials_per_s").set(rate)
    return CampaignResult(
        trials=trials,
        mean_affected_fcms=total_fcms / trials,
        mean_affected_clusters=total_clusters / trials,
        max_affected_fcms=worst,
        cross_cluster_rate=escapes / trials,
        engine=choice.engine,
        elapsed_s=elapsed,
        trials_per_s=rate,
        exec_report=exec_report,
    )


def compare_partitions(
    graph: InfluenceGraph,
    partitions: dict[str, list[list[str]]],
    trials: int = 1000,
    seed: int = 0,
    engine: str = "auto",
) -> dict[str, CampaignResult]:
    """Run the same campaign (same seed) against several partitions."""
    return {
        label: run_campaign(
            graph, partition, trials=trials, seed=seed, engine=engine
        )
        for label, partition in partitions.items()
    }
