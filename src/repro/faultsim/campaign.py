"""Fault-injection campaigns over partitions and mappings.

Where :mod:`repro.faultsim.monte_carlo` estimates pairwise parameters,
campaigns answer system-level questions: *given this clustering, how far
does a fault travel?*  A campaign seeds faults uniformly over FCMs and
reports, per trial, how many FCMs and how many *clusters* (HW nodes) were
affected — the quantitative version of "mapping of FCMs which influence
each other strongly onto the same node ... so faults are not propagated
across HW nodes" (§5.3).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.faultsim.propagation import propagate_once
from repro.influence.influence_graph import InfluenceGraph
from repro.obs import DEFAULT_COUNT_BUCKETS, current


@dataclass(frozen=True)
class CampaignResult:
    """Aggregates of one fault-injection campaign.

    Attributes:
        trials: Number of injected faults.
        mean_affected_fcms: Average FCMs affected per trial (excluding the
            seeded FCM).
        mean_affected_clusters: Average clusters containing at least one
            affected FCM, beyond the seed's own cluster.
        max_affected_fcms: Worst single trial.
        cross_cluster_rate: Fraction of trials in which the fault escaped
            the seed's cluster.
        elapsed_s: Wall time of the campaign loop (``perf_counter``;
            excluded from equality so seeded reruns still compare equal).
        trials_per_s: Campaign throughput (also excluded from equality).
    """

    trials: int
    mean_affected_fcms: float
    mean_affected_clusters: float
    max_affected_fcms: int
    cross_cluster_rate: float
    elapsed_s: float = field(default=0.0, compare=False)
    trials_per_s: float = field(default=0.0, compare=False)


def run_campaign(
    graph: InfluenceGraph,
    partition: list[list[str]],
    trials: int = 1000,
    seed: int = 0,
) -> CampaignResult:
    """Seed ``trials`` faults uniformly over FCMs and measure spread.

    ``partition`` maps FCMs to clusters (HW nodes); propagation runs on
    the *FCM-level* graph — the partition only determines how spread is
    counted.  Intra-cluster edges are assumed contained by the shared
    node's FCR in the cross-cluster accounting, per the paper's fault
    containment argument.
    """
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    names = graph.fcm_names()
    if not names:
        raise SimulationError("graph has no FCMs")
    cluster_of: dict[str, int] = {}
    for index, block in enumerate(partition):
        for member in block:
            if member in cluster_of:
                raise SimulationError(f"{member!r} appears in two blocks")
            cluster_of[member] = index
    missing = [n for n in names if n not in cluster_of]
    if missing:
        raise SimulationError(f"partition misses FCMs: {missing!r}")
    known = set(names)
    unknown = sorted(member for member in cluster_of if member not in known)
    if unknown:
        raise SimulationError(f"partition contains unknown FCMs: {unknown!r}")

    rng = random.Random(seed)
    rec = current()
    spread_hist = (
        rec.histogram("faultsim_affected_fcms", buckets=DEFAULT_COUNT_BUCKETS)
        if rec.enabled
        else None
    )
    total_fcms = 0
    total_clusters = 0
    worst = 0
    escapes = 0
    t0 = time.perf_counter()
    with rec.span(
        "faultsim.campaign",
        trials=trials,
        seed=seed,
        fcms=len(names),
        clusters=len(partition),
    ):
        for trial in range(trials):
            source = names[rng.randrange(len(names))]
            record = propagate_once(graph, source, rng, trial)
            others = record.affected - {source}
            total_fcms += len(others)
            worst = max(worst, len(others))
            seed_cluster = cluster_of[source]
            hit_clusters = {cluster_of[n] for n in others} - {seed_cluster}
            total_clusters += len(hit_clusters)
            if hit_clusters:
                escapes += 1
            if spread_hist is not None:
                spread_hist.observe(len(others))
    elapsed = time.perf_counter() - t0
    rate = trials / elapsed if elapsed > 0 else 0.0
    if rec.enabled:
        rec.counter("faultsim_trials_total").inc(trials)
        rec.counter("faultsim_escapes_total").inc(escapes)
        rec.gauge("faultsim_trials_per_s").set(rate)
    return CampaignResult(
        trials=trials,
        mean_affected_fcms=total_fcms / trials,
        mean_affected_clusters=total_clusters / trials,
        max_affected_fcms=worst,
        cross_cluster_rate=escapes / trials,
        elapsed_s=elapsed,
        trials_per_s=rate,
    )


def compare_partitions(
    graph: InfluenceGraph,
    partitions: dict[str, list[list[str]]],
    trials: int = 1000,
    seed: int = 0,
) -> dict[str, CampaignResult]:
    """Run the same campaign (same seed) against several partitions."""
    return {
        label: run_campaign(graph, partition, trials=trials, seed=seed)
        for label, partition in partitions.items()
    }
