"""NumPy-vectorized batch-trial fault-propagation engine.

The scalar simulator (:mod:`repro.faultsim.propagation`) pays Python-level
costs per *edge test*; campaigns on a few hundred FCMs spend seconds in
``trials x edges`` interpreter work.  This kernel simulates whole blocks
of trials as array operations instead:

* all Bernoulli fault-factor draws of a block are sampled as matrices
  from one ``numpy.random.Generator(PCG64)``;
* propagation advances wave by wave: a frontier's aggregate hit
  probability on every node is ``1 - exp(F @ log(1 - W))`` (the OR of
  independent edge firings), so one matrix product replaces a wave's
  worth of per-edge trials.

**Equivalence with the scalar oracle.**  A scalar trial tests each edge
at most once (when its source is dequeued, targets already faulty are
skipped), so the affected set is distributed exactly as reachability
over independently "open" edges — the standard percolation argument.
The wave-aggregated draw used here samples, per (trial, target), one
uniform against the exact union probability of the incoming frontier
edges, which yields the same affected-set distribution.  Fed *shared*
per-edge draws (:func:`propagate_with_draws` vs. the scalar engine's
``edge_draw`` hook) the two engines produce bit-identical affected sets;
on independent streams they agree statistically (tested against Wilson
intervals in ``tests/faultsim/test_kernel.py``).

**Determinism.**  Trials are tied to fixed RNG *blocks* of
:data:`DEFAULT_BLOCK_SIZE` trials: block ``b`` always draws from
``Generator(PCG64(derive_seed(seed, b, purpose="vector-block")))`` and a
block is always simulated whole (callers asking for a sub-range get a
slice of the full block's result).  Every draw is a fixed-shape matrix
per wave, so a block's outcome depends only on ``(seed, b)`` — never on
the exec layer's batch plan, worker count, retries, or checkpoint
history.  The vector engine therefore honours the same reproducibility
contract as the scalar engine, on its own (different) stream.

NumPy is an optional dependency of this module: import it through
:data:`NUMPY_AVAILABLE` and let :mod:`repro.faultsim.engine` fall back
to the scalar path when the import is unavailable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.exec.batching import derive_seed
from repro.influence.influence_graph import InfluenceGraph

try:  # pragma: no cover - exercised indirectly via NUMPY_AVAILABLE
    import numpy as np

    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]
    NUMPY_AVAILABLE = False

#: Trials per RNG block.  Fixed (not derived from the exec batch plan) so
#: vector-engine results are invariant under batching, pooling and resume.
DEFAULT_BLOCK_SIZE = 256

#: ``log(1 - w)`` substitute for w == 1 edges: finite (so ``0 * L`` stays
#: 0 in the matrix product, not NaN) yet large enough that
#: ``1 - exp(x) == 1.0`` exactly in float64 — certain edges always fire.
_LOG_ZERO = -800.0

_SEED_PURPOSE = "vector-block"


def _require_numpy() -> None:
    if not NUMPY_AVAILABLE:
        raise SimulationError(
            "the vector fault-propagation engine requires numpy; "
            "install it or use engine='scalar'"
        )


@dataclass(frozen=True)
class CompiledGraph:
    """An influence graph lowered to dense matrices for the kernel.

    Attributes:
        names: FCM names in the graph's stable iteration order.
        index: name -> row/column position.
        weights: ``(n, n)`` float64 influence matrix; 0 where no
            influence edge exists (including replica links, which the
            paper fixes at weight 0).
        log_survival: ``log(1 - weights)`` with w == 1 entries clamped
            to :data:`_LOG_ZERO`; the per-edge log survival probability
            summed by the wave matrix product.
    """

    names: tuple[str, ...]
    index: dict[str, int]
    weights: "np.ndarray"
    log_survival: "np.ndarray"

    def __len__(self) -> int:
        return len(self.names)


def compile_graph(graph: InfluenceGraph) -> CompiledGraph:
    """Lower ``graph`` to the kernel's dense matrix form.

    Replica links and absent edges both contribute weight 0 — exactly the
    probabilities the scalar engine sees through ``graph.influence``.

    Compilations are cached on the graph instance keyed by its mutation
    :attr:`~repro.influence.influence_graph.InfluenceGraph.version`, so the
    allocation engine and a subsequent fault campaign on the same graph
    share one compile.
    """
    _require_numpy()
    version = getattr(graph, "version", None)
    if version is not None:
        cached = getattr(graph, "_kernel_compile_cache", None)
        if cached is not None and cached[0] == version:
            return cached[1]
    names = tuple(graph.fcm_names())
    if not names:
        raise SimulationError("graph has no FCMs")
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    weights = np.zeros((n, n))
    for src, dst, w in graph.influence_edges():
        weights[index[src], index[dst]] = w
    with np.errstate(divide="ignore"):
        log_survival = np.where(weights >= 1.0, _LOG_ZERO, np.log1p(-weights))
    compiled = CompiledGraph(
        names=names, index=index, weights=weights, log_survival=log_survival
    )
    if version is not None:
        graph._kernel_compile_cache = (version, compiled)
    return compiled


def propagate_block(
    compiled: CompiledGraph,
    sources: "np.ndarray",
    rng: "np.random.Generator",
    direct_only: bool = False,
) -> "np.ndarray":
    """Propagate one block of trials; returns a ``(B, n)`` affected mask.

    ``sources[t]`` is the seeded FCM index of trial ``t``.  Each wave
    draws one fixed-shape ``(B, n)`` uniform matrix, so the consumed
    stream depends only on the number of waves the block needs.
    """
    block = len(sources)
    n = len(compiled)
    affected = np.zeros((block, n), dtype=bool)
    affected[np.arange(block), sources] = True
    frontier = affected.copy()
    while frontier.any():
        # P(j hit this wave) = 1 - prod_{i in frontier} (1 - w_ij).
        log_miss = frontier.astype(float) @ compiled.log_survival
        hit_probability = -np.expm1(log_miss)
        draws = rng.random((block, n))
        fresh = (draws < hit_probability) & ~affected
        affected |= fresh
        if direct_only:
            break
        frontier = fresh
    return affected


def propagate_with_draws(
    compiled: CompiledGraph,
    source: int,
    draws: "np.ndarray",
    direct_only: bool = False,
) -> "np.ndarray":
    """Affected mask of one trial under an explicit per-edge draw matrix.

    ``draws[i, j]`` is the uniform tested against edge ``i -> j``; the
    edge is *open* iff ``draws[i, j] < weights[i, j]``.  Feeding the same
    matrix to the scalar engine's ``edge_draw`` hook must produce the
    identical affected set — the shared-draw parity contract.
    """
    _require_numpy()
    n = len(compiled)
    if draws.shape != (n, n):
        raise SimulationError(
            f"draw matrix must be {(n, n)}, got {tuple(draws.shape)}"
        )
    open_edges = draws < compiled.weights
    affected = np.zeros(n, dtype=bool)
    affected[source] = True
    frontier = affected.copy()
    while frontier.any():
        fresh = open_edges[frontier].any(axis=0) & ~affected
        affected |= fresh
        if direct_only:
            break
        frontier = fresh
    return affected


def _block_rng(seed: int, block: int) -> "np.random.Generator":
    return np.random.Generator(
        np.random.PCG64(derive_seed(seed, block, purpose=_SEED_PURPOSE))
    )


def simulate_range(
    compiled: CompiledGraph,
    seed: int,
    start: int,
    stop: int,
    source: int | None = None,
    direct_only: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> tuple["np.ndarray", "np.ndarray"]:
    """Simulate trials ``[start, stop)``; returns ``(sources, affected)``.

    ``source=None`` seeds each trial uniformly over FCMs (campaign mode);
    an integer seeds every trial at that FCM (pair-estimation mode).
    Blocks intersecting the range are always simulated whole, so the
    result for any sub-range is a slice of the same full-block outcome —
    the batching-invariance half of the determinism contract.
    """
    _require_numpy()
    if not 0 <= start < stop:
        raise SimulationError(f"bad trial range [{start}, {stop})")
    if block_size < 1:
        raise SimulationError("block_size must be >= 1")
    n = len(compiled)
    out_sources = np.empty(stop - start, dtype=np.int64)
    out_affected = np.empty((stop - start, n), dtype=bool)
    for block in range(start // block_size, (stop - 1) // block_size + 1):
        block_start = block * block_size
        rng = _block_rng(seed, block)
        if source is None:
            sources = rng.integers(0, n, size=block_size)
        else:
            sources = np.full(block_size, source, dtype=np.int64)
        affected = propagate_block(compiled, sources, rng, direct_only)
        lo = max(start, block_start)
        hi = min(stop, block_start + block_size)
        out_sources[lo - start : hi - start] = sources[
            lo - block_start : hi - block_start
        ]
        out_affected[lo - start : hi - start] = affected[
            lo - block_start : hi - block_start
        ]
    return out_sources, out_affected


def campaign_batch(
    compiled: CompiledGraph,
    cluster_of: "np.ndarray",
    clusters: int,
    seed: int,
    start: int,
    size: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> dict:
    """One campaign batch in the exec runner's payload format.

    Returns ``{"affected": [...], "cluster_hits": [...]}`` — per trial,
    the number of *other* FCMs hit and the number of clusters hit beyond
    the seed's own — matching the scalar batch task so aggregation,
    checkpointing and combine logic are engine-agnostic.
    """
    sources, affected = simulate_range(
        compiled, seed, start, start + size, block_size=block_size
    )
    counts = affected.sum(axis=1) - 1
    # Distinct clusters containing at least one affected FCM.
    one_hot = np.zeros((len(compiled), clusters), dtype=np.uint8)
    one_hot[np.arange(len(compiled)), cluster_of] = 1
    cluster_hit = (affected.astype(np.uint8) @ one_hot) > 0
    # The seed's own cluster never counts as an escape.
    cluster_hit[np.arange(len(sources)), cluster_of[sources]] = False
    hits = cluster_hit.sum(axis=1)
    return {
        "affected": [int(c) for c in counts],
        "cluster_hits": [int(h) for h in hits],
    }


def pair_hits(
    compiled: CompiledGraph,
    source: int,
    target: int,
    trials: int,
    seed: int,
    direct_only: bool = False,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """How many of ``trials`` seeded at ``source`` reached ``target``."""
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    _, affected = simulate_range(
        compiled,
        seed,
        0,
        trials,
        source=source,
        direct_only=direct_only,
        block_size=block_size,
    )
    return int(affected[:, target].sum())
