"""Monte-Carlo fault propagation over an influence graph.

The influence value ``FCM_i -> FCM_j`` is defined as "the probability of
one FCM affecting another FCM at the same level if no third FCM at that
level is considered" (§4.2).  The simulator realises the paper's fault
model directly:

* faults occur in single FCMs or in communication between a pair — no
  three-party faults;
* transmission probabilities are independent of source/target location
  and of dynamic context (uninvolved FCMs);
* indirect transmission is approximated by chaining direct transmissions.

A trial seeds a fault in one source FCM and propagates it along influence
edges: each edge fires independently with probability equal to its
influence weight, wave by wave (an FCM already faulty is not re-faulted).
Over many trials, the hit frequency of a direct neighbour estimates
influence, and the hit frequency of any node estimates
``1 - separation`` — the *transitive* interaction Eq. (3) approximates.

This module is the **scalar reference oracle**; campaigns default to the
vectorized kernel (:mod:`repro.faultsim.kernel`) via ``engine="auto"``
and fall back here.  Hot loops should pass a pre-built
:class:`ScalarAdjacency` so the per-edge lookups (graph queries, factor
scans for edge kinds) happen once per campaign, not once per trial.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.faultsim.events import TrialRecord
from repro.influence.influence_graph import InfluenceGraph
from repro.influence.factors import FACTOR_FAULT_KIND, FactorKind
from repro.model.faults import FaultEvent, FaultKind


@dataclass(frozen=True)
class ScalarAdjacency:
    """Per-source outgoing edges, precomputed once for a whole campaign.

    ``out[source]`` lists ``(target, probability, kind)`` for every
    positive-weight influence edge, in ``fcm_names()`` order — the same
    order (and therefore the same RNG draw sequence) as querying the
    graph per trial, so using the precompute is bit-identical to not
    using it.
    """

    out: dict[str, tuple[tuple[str, float, FaultKind], ...]]
    seed_kind: FaultKind


def compile_adjacency(graph: InfluenceGraph) -> ScalarAdjacency:
    """Hoist the per-trial edge-list rebuild out of the trial loop."""
    names = graph.fcm_names()
    out: dict[str, tuple[tuple[str, float, FaultKind], ...]] = {}
    for source in names:
        edges = []
        for target in names:
            if target == source:
                continue
            p = graph.influence(source, target)
            if p <= 0.0:
                continue
            edges.append((target, p, _edge_kind(graph, source, target)))
        out[source] = tuple(edges)
    return ScalarAdjacency(
        out=out, seed_kind=FACTOR_FAULT_KIND[FactorKind.SHARED_MEMORY]
    )


def propagate_once(
    graph: InfluenceGraph,
    source: str,
    rng: random.Random,
    trial: int = 0,
    direct_only: bool = False,
    adjacency: ScalarAdjacency | None = None,
    edge_draw: Callable[[str, str], float] | None = None,
) -> TrialRecord:
    """One trial: seed a fault at ``source``, fire edges probabilistically.

    ``direct_only`` restricts propagation to the first wave — the "no
    third FCM considered" condition in the definition of influence; the
    default propagates transitively (the condition Eq. (3) models).

    ``adjacency`` (from :func:`compile_adjacency`) skips the per-trial
    graph queries without changing any outcome.  ``edge_draw`` replaces
    the RNG with an explicit uniform per edge — the shared-draw hook the
    scalar/vector parity tests feed the same draw matrix through.
    """
    if adjacency is None:
        if not graph.has_fcm(source):
            raise SimulationError(f"FCM {source!r} not in graph")
        adjacency = compile_adjacency(graph)
    elif source not in adjacency.out:
        raise SimulationError(f"FCM {source!r} not in graph")
    record = TrialRecord(trial=trial)
    record.events.append(
        FaultEvent(fcm=source, kind=adjacency.seed_kind, time=0.0)
    )
    record.affected.add(source)

    frontier = deque([(source, 0.0)])
    while frontier:
        current, time = frontier.popleft()
        if direct_only and current != source:
            continue
        for target, p, kind in adjacency.out[current]:
            if target in record.affected:
                continue
            draw = (
                edge_draw(current, target)
                if edge_draw is not None
                else rng.random()
            )
            if draw < p:
                record.events.append(
                    FaultEvent(
                        fcm=target,
                        kind=kind,
                        time=time + 1.0,
                        transmitted_from=current,
                    )
                )
                record.affected.add(target)
                frontier.append((target, time + 1.0))
    return record


def _edge_kind(
    graph: InfluenceGraph,
    source: str,
    target: str | None,
) -> FaultKind:
    """The fault kind an edge introduces (from its dominant factor)."""
    if target is not None:
        try:
            factors = graph.factors(source, target)
        except Exception:
            factors = ()
        if factors:
            dominant = max(factors, key=lambda f: f.probability)
            return FACTOR_FAULT_KIND[dominant.kind]
    return FACTOR_FAULT_KIND[FactorKind.SHARED_MEMORY]


def affected_counts(
    graph: InfluenceGraph,
    source: str,
    trials: int,
    seed: int = 0,
    direct_only: bool = False,
) -> dict[str, int]:
    """How often each FCM was affected over ``trials`` seeded at ``source``.

    The count for ``source`` itself always equals ``trials``.
    """
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    if not graph.has_fcm(source):
        raise SimulationError(f"FCM {source!r} not in graph")
    rng = random.Random(seed)
    adjacency = compile_adjacency(graph)
    counts = {name: 0 for name in graph.fcm_names()}
    for trial in range(trials):
        record = propagate_once(
            graph, source, rng, trial, direct_only, adjacency=adjacency
        )
        for name in record.affected:
            counts[name] += 1
    return counts


def expected_affected(
    graph: InfluenceGraph,
    source: str,
    trials: int,
    seed: int = 0,
) -> float:
    """Mean number of FCMs (beyond the source) affected per fault.

    The paper's containment objective in one number: lower means better
    fault containment.
    """
    counts = affected_counts(graph, source, trials, seed)
    total_others = sum(c for name, c in counts.items() if name != source)
    return total_others / trials
