"""Multi-level fault containment simulation.

The point of the FCM hierarchy is that "each level specifies a predefined
class of faults which are handled within each FCM level" (§2) and that
faults "are allowed to propagate only in certain predefined ways at each
level; otherwise, the sorts of faults affecting one level could possibly
be propagated out of its parent and affect higher levels" (§4.1).

This simulator quantifies that claim on a full three-level system:

1. a fault is seeded in a procedure;
2. it spreads among sibling procedures along the procedure-level
   influence graph (one wave per step, as in the flat simulator);
3. each affected procedure's fault *escalates* to its parent task with
   probability ``1 - containment[TASK]`` — the task boundary handles the
   predefined procedure-level fault class with probability
   ``containment[TASK]``;
4. escalated faults spread among tasks, then escalate to processes the
   same way.

Comparing the hierarchical run against a *flattened* run (no containment
at boundaries, i.e. containment 0 everywhere) measures exactly what the
hierarchy buys: the reduction in processes affected per procedure fault.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.faultsim.propagation import compile_adjacency, propagate_once
from repro.model.fcm import Level
from repro.model.system import SoftwareSystem

#: Default probability that an FCM boundary contains a fault arising at
#: the level below (per affected child).  The paper gives no numbers;
#: these are exposed knobs with a plausibly-effective default.
DEFAULT_CONTAINMENT: dict[Level, float] = {
    Level.TASK: 0.8,  # task boundary contains procedure-level faults
    Level.PROCESS: 0.8,  # process boundary contains task-level faults
}


@dataclass(frozen=True)
class MultiLevelResult:
    """Aggregates of a multi-level campaign."""

    trials: int
    mean_procedures_affected: float
    mean_tasks_affected: float
    mean_processes_affected: float
    process_escape_rate: float  # fraction of trials reaching >= 1 process


def _check_containment(containment: dict[Level, float]) -> None:
    for level, p in containment.items():
        if level not in (Level.TASK, Level.PROCESS):
            raise SimulationError(f"containment level {level} invalid")
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"containment for {level} outside [0, 1]")


def run_multilevel_campaign(
    system: SoftwareSystem,
    trials: int = 1000,
    containment: dict[Level, float] | None = None,
    seed: int = 0,
) -> MultiLevelResult:
    """Seed faults uniformly over procedures; measure per-level spread.

    The system must carry procedures (seeding level).  Influence graphs
    at missing levels are treated as edgeless (no lateral spread there).
    """
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    cont = dict(DEFAULT_CONTAINMENT)
    if containment is not None:
        cont.update(containment)
    _check_containment(cont)

    procedures = [f.name for f in system.hierarchy.at_level(Level.PROCEDURE)]
    if not procedures:
        raise SimulationError("system has no procedures to seed faults in")
    proc_graph = system.influence_at(Level.PROCEDURE)
    task_graph = system.influence_at(Level.TASK)
    process_graph = system.influence_at(Level.PROCESS)
    # One adjacency precompute per level for the whole campaign.
    proc_adj = compile_adjacency(proc_graph)
    task_adj = compile_adjacency(task_graph) if len(task_graph) else None
    process_adj = (
        compile_adjacency(process_graph) if len(process_graph) else None
    )

    rng = random.Random(seed)
    total_procs = 0
    total_tasks = 0
    total_processes = 0
    escapes = 0

    for trial in range(trials):
        source = procedures[rng.randrange(len(procedures))]
        affected_procs = propagate_once(
            proc_graph, source, rng, trial, adjacency=proc_adj
        ).affected
        total_procs += len(affected_procs)

        # Escalate each affected procedure to its parent task.
        seeded_tasks: set[str] = set()
        for proc in affected_procs:
            parent = system.hierarchy.parent_of(proc)
            if parent is None:
                continue
            if rng.random() >= cont[Level.TASK]:
                seeded_tasks.add(parent.name)
        affected_tasks: set[str] = set()
        for task_name in seeded_tasks:
            if task_graph.has_fcm(task_name):
                affected_tasks |= propagate_once(
                    task_graph, task_name, rng, trial, adjacency=task_adj
                ).affected
            else:
                affected_tasks.add(task_name)
        total_tasks += len(affected_tasks)

        # Escalate each affected task to its parent process.
        seeded_processes: set[str] = set()
        for task_name in affected_tasks:
            parent = system.hierarchy.parent_of(task_name)
            if parent is None:
                continue
            if rng.random() >= cont[Level.PROCESS]:
                seeded_processes.add(parent.name)
        affected_processes: set[str] = set()
        for process_name in seeded_processes:
            if process_graph.has_fcm(process_name):
                affected_processes |= propagate_once(
                    process_graph,
                    process_name,
                    rng,
                    trial,
                    adjacency=process_adj,
                ).affected
            else:
                affected_processes.add(process_name)
        total_processes += len(affected_processes)
        if affected_processes:
            escapes += 1

    return MultiLevelResult(
        trials=trials,
        mean_procedures_affected=total_procs / trials,
        mean_tasks_affected=total_tasks / trials,
        mean_processes_affected=total_processes / trials,
        process_escape_rate=escapes / trials,
    )


def hierarchy_value(
    system: SoftwareSystem,
    trials: int = 1000,
    containment: dict[Level, float] | None = None,
    seed: int = 0,
) -> tuple[MultiLevelResult, MultiLevelResult, float]:
    """(hierarchical, flattened, reduction factor) for one system.

    The flattened run sets every boundary containment to 0 — the same
    software without the FCM discipline.  The reduction factor is the
    ratio of mean processes affected (flattened / hierarchical); larger
    means the hierarchy buys more.
    """
    with_hierarchy = run_multilevel_campaign(
        system, trials=trials, containment=containment, seed=seed
    )
    flattened = run_multilevel_campaign(
        system,
        trials=trials,
        containment={Level.TASK: 0.0, Level.PROCESS: 0.0},
        seed=seed,
    )
    if with_hierarchy.mean_processes_affected > 0:
        factor = (
            flattened.mean_processes_affected
            / with_hierarchy.mean_processes_affected
        )
    else:
        factor = float("inf") if flattened.mean_processes_affected > 0 else 1.0
    return with_hierarchy, flattened, factor
