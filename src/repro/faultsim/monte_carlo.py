"""Empirical estimation of influence and separation by simulation.

"It needs to be emphasised again that developing techniques to determine
and measure actual parameters such as 'influence' across FCMs is crucial
for the techniques to be applied to real systems" (§7).  The paper points
at field data and fault injection; we simulate the field: the
ground-truth influence graph drives the simulator, and these estimators
recover the values from observed trials — validating both the estimators
and the analytic formulas (Eqs. 2-3) against each other.

All estimators accept ``engine=`` (``auto``/``scalar``/``vector``): the
vector path hands whole trial blocks to :mod:`repro.faultsim.kernel`, so
sweeping every edge of a large graph costs a few matrix products per
edge instead of ``trials x edges`` Python calls.  The engines draw from
different deterministic streams; their estimates agree within Wilson
confidence bounds (enforced by ``tests/faultsim/test_kernel.py``).
"""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.faultsim.engine import resolve_engine
from repro.faultsim.events import PairEstimate
from repro.faultsim.propagation import compile_adjacency, propagate_once
from repro.influence.estimation import wilson_interval
from repro.influence.influence_graph import InfluenceGraph


def _scalar_pair_hits(
    graph: InfluenceGraph,
    source: str,
    target: str,
    trials: int,
    seed: int,
    direct_only: bool,
) -> int:
    rng = random.Random(seed)
    adjacency = compile_adjacency(graph)
    hits = 0
    for trial in range(trials):
        record = propagate_once(
            graph, source, rng, trial, direct_only, adjacency=adjacency
        )
        if target in record.affected:
            hits += 1
    return hits


def _vector_pair_hits(
    graph: InfluenceGraph,
    source: str,
    target: str,
    trials: int,
    seed: int,
    direct_only: bool,
) -> int:
    from repro.faultsim.kernel import compile_graph, pair_hits

    compiled = compile_graph(graph)
    return pair_hits(
        compiled,
        compiled.index[source],
        compiled.index[target],
        trials,
        seed,
        direct_only=direct_only,
    )


def _estimate_pair(
    graph: InfluenceGraph,
    source: str,
    target: str,
    trials: int,
    seed: int,
    direct_only: bool,
    engine: str,
) -> PairEstimate:
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    for name in (source, target):
        if not graph.has_fcm(name):
            raise SimulationError(f"FCM {name!r} not in graph")
    choice = resolve_engine(engine)
    if choice.is_vector:
        hits = _vector_pair_hits(
            graph, source, target, trials, seed, direct_only
        )
    else:
        hits = _scalar_pair_hits(
            graph, source, target, trials, seed, direct_only
        )
    low, high = wilson_interval(hits, trials)
    return PairEstimate(
        source=source,
        target=target,
        trials=trials,
        hits=hits,
        estimate=hits / trials,
        low=low,
        high=high,
    )


def estimate_influence(
    graph: InfluenceGraph,
    source: str,
    target: str,
    trials: int = 2000,
    seed: int = 0,
    engine: str = "auto",
) -> PairEstimate:
    """Estimate the *direct* influence of ``source`` on ``target``.

    Runs single-wave trials ("if no third FCM at that level is
    considered") and counts how often the target catches the fault.
    The point estimate converges to the Eq. (2) edge weight.
    """
    return _estimate_pair(
        graph, source, target, trials, seed, direct_only=True, engine=engine
    )


def estimate_transitive_influence(
    graph: InfluenceGraph,
    source: str,
    target: str,
    trials: int = 2000,
    seed: int = 0,
    engine: str = "auto",
) -> PairEstimate:
    """Estimate the probability that a fault in ``source`` *eventually*
    affects ``target`` through any chain.

    ``1 - estimate`` is the empirical counterpart of separation, Eq. (3).
    Note the analytic series *sums* path probabilities (an upper bound on
    the union), so the empirical value is expected to sit at or below the
    truncated series value — the bench records both.
    """
    return _estimate_pair(
        graph, source, target, trials, seed, direct_only=False, engine=engine
    )


def estimate_separation(
    graph: InfluenceGraph,
    source: str,
    target: str,
    trials: int = 2000,
    seed: int = 0,
    engine: str = "auto",
) -> float:
    """Empirical separation: 1 - transitive hit frequency."""
    return 1.0 - estimate_transitive_influence(
        graph, source, target, trials, seed, engine=engine
    ).estimate


def estimate_all_influences(
    graph: InfluenceGraph,
    trials: int = 1000,
    seed: int = 0,
    engine: str = "auto",
) -> dict[tuple[str, str], PairEstimate]:
    """Direct-influence estimates for every edge in the graph.

    On the vector engine the graph is compiled once and reused across
    every edge's trial blocks — the sweep the §7 measurement programme
    actually needs at scale.
    """
    choice = resolve_engine(engine)
    out: dict[tuple[str, str], PairEstimate] = {}
    if choice.is_vector:
        from repro.faultsim.kernel import compile_graph, pair_hits

        compiled = compile_graph(graph)
        for i, (src, dst, _w) in enumerate(graph.influence_edges()):
            hits = pair_hits(
                compiled,
                compiled.index[src],
                compiled.index[dst],
                trials,
                seed + i,
                direct_only=True,
            )
            low, high = wilson_interval(hits, trials)
            out[(src, dst)] = PairEstimate(
                source=src,
                target=dst,
                trials=trials,
                hits=hits,
                estimate=hits / trials,
                low=low,
                high=high,
            )
        return out
    adjacency = compile_adjacency(graph)
    for i, (src, dst, _w) in enumerate(graph.influence_edges()):
        rng = random.Random(seed + i)
        hits = 0
        for trial in range(trials):
            record = propagate_once(
                graph, src, rng, trial, direct_only=True, adjacency=adjacency
            )
            if dst in record.affected:
                hits += 1
        low, high = wilson_interval(hits, trials)
        out[(src, dst)] = PairEstimate(
            source=src,
            target=dst,
            trials=trials,
            hits=hits,
            estimate=hits / trials,
            low=low,
            high=high,
        )
    return out


def max_estimation_error(
    graph: InfluenceGraph,
    trials: int = 1000,
    seed: int = 0,
    engine: str = "auto",
) -> float:
    """Largest |estimate - true| over all edges — the E4 bench metric."""
    estimates = estimate_all_influences(graph, trials, seed, engine=engine)
    worst = 0.0
    for (src, dst), est in estimates.items():
        worst = max(worst, abs(est.estimate - graph.influence(src, dst)))
    return worst
