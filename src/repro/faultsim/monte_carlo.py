"""Empirical estimation of influence and separation by simulation.

"It needs to be emphasised again that developing techniques to determine
and measure actual parameters such as 'influence' across FCMs is crucial
for the techniques to be applied to real systems" (§7).  The paper points
at field data and fault injection; we simulate the field: the
ground-truth influence graph drives the simulator, and these estimators
recover the values from observed trials — validating both the estimators
and the analytic formulas (Eqs. 2-3) against each other.
"""

from __future__ import annotations

import random

from repro.errors import SimulationError
from repro.faultsim.events import PairEstimate
from repro.faultsim.propagation import propagate_once
from repro.influence.estimation import wilson_interval
from repro.influence.influence_graph import InfluenceGraph


def estimate_influence(
    graph: InfluenceGraph,
    source: str,
    target: str,
    trials: int = 2000,
    seed: int = 0,
) -> PairEstimate:
    """Estimate the *direct* influence of ``source`` on ``target``.

    Runs single-wave trials ("if no third FCM at that level is
    considered") and counts how often the target catches the fault.
    The point estimate converges to the Eq. (2) edge weight.
    """
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    rng = random.Random(seed)
    hits = 0
    for trial in range(trials):
        record = propagate_once(graph, source, rng, trial, direct_only=True)
        if target in record.affected:
            hits += 1
    low, high = wilson_interval(hits, trials)
    return PairEstimate(
        source=source,
        target=target,
        trials=trials,
        hits=hits,
        estimate=hits / trials,
        low=low,
        high=high,
    )


def estimate_transitive_influence(
    graph: InfluenceGraph,
    source: str,
    target: str,
    trials: int = 2000,
    seed: int = 0,
) -> PairEstimate:
    """Estimate the probability that a fault in ``source`` *eventually*
    affects ``target`` through any chain.

    ``1 - estimate`` is the empirical counterpart of separation, Eq. (3).
    Note the analytic series *sums* path probabilities (an upper bound on
    the union), so the empirical value is expected to sit at or below the
    truncated series value — the bench records both.
    """
    if trials < 1:
        raise SimulationError("trials must be >= 1")
    rng = random.Random(seed)
    hits = 0
    for trial in range(trials):
        record = propagate_once(graph, source, rng, trial, direct_only=False)
        if target in record.affected:
            hits += 1
    low, high = wilson_interval(hits, trials)
    return PairEstimate(
        source=source,
        target=target,
        trials=trials,
        hits=hits,
        estimate=hits / trials,
        low=low,
        high=high,
    )


def estimate_separation(
    graph: InfluenceGraph,
    source: str,
    target: str,
    trials: int = 2000,
    seed: int = 0,
) -> float:
    """Empirical separation: 1 - transitive hit frequency."""
    return 1.0 - estimate_transitive_influence(
        graph, source, target, trials, seed
    ).estimate


def estimate_all_influences(
    graph: InfluenceGraph,
    trials: int = 1000,
    seed: int = 0,
) -> dict[tuple[str, str], PairEstimate]:
    """Direct-influence estimates for every edge in the graph."""
    out: dict[tuple[str, str], PairEstimate] = {}
    for i, (src, dst, _w) in enumerate(graph.influence_edges()):
        out[(src, dst)] = estimate_influence(
            graph, src, dst, trials=trials, seed=seed + i
        )
    return out


def max_estimation_error(
    graph: InfluenceGraph,
    trials: int = 1000,
    seed: int = 0,
) -> float:
    """Largest |estimate - true| over all edges — the E4 bench metric."""
    estimates = estimate_all_influences(graph, trials, seed)
    worst = 0.0
    for (src, dst), est in estimates.items():
        worst = max(worst, abs(est.estimate - graph.influence(src, dst)))
    return worst
