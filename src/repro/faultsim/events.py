"""Event records produced by the fault-injection simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.faults import FaultEvent


@dataclass
class TrialRecord:
    """What happened in one Monte-Carlo trial.

    Attributes:
        trial: Trial index.
        events: Every fault event, in occurrence order (spontaneous faults
            first, then transmissions in propagation-wave order).
        affected: Names of every FCM that ended the trial faulty.
    """

    trial: int
    events: list[FaultEvent] = field(default_factory=list)
    affected: set[str] = field(default_factory=set)

    @property
    def spontaneous(self) -> list[FaultEvent]:
        return [e for e in self.events if e.spontaneous]

    @property
    def transmissions(self) -> list[FaultEvent]:
        return [e for e in self.events if not e.spontaneous]


@dataclass(frozen=True)
class PairEstimate:
    """Empirical influence estimate for one ordered FCM pair."""

    source: str
    target: str
    trials: int
    hits: int
    estimate: float
    low: float  # Wilson 95% lower bound
    high: float  # Wilson 95% upper bound

    def covers(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.low <= value <= self.high
