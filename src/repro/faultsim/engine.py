"""Engine selection for fault campaigns: ``scalar | vector | auto``.

Every campaign entry point takes an ``engine=`` switch:

* ``scalar`` — the per-trial reference oracle
  (:mod:`repro.faultsim.propagation`), pure Python, per-trial seeded.
* ``vector`` — the NumPy batch kernel (:mod:`repro.faultsim.kernel`);
  raises when numpy is unavailable or the workload has no vectorized
  path.
* ``auto`` — vector when it can run, scalar otherwise; the fallback
  reason is always recorded as a typed decision event so a trace shows
  which engine actually executed and why.

The two engines draw from *different* deterministic streams (per-trial
seeds vs. fixed RNG blocks), so their results agree statistically, not
bit-for-bit; a campaign's results are reproducible per engine.  The
resolved engine is part of the campaign's checkpoint fingerprint —
resuming a scalar checkpoint with the vector engine is refused rather
than silently mixing streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.faultsim.kernel import NUMPY_AVAILABLE
from repro.obs import current

ENGINES = ("auto", "scalar", "vector")


@dataclass(frozen=True)
class EngineChoice:
    """The resolved engine plus the reason it was picked."""

    requested: str
    engine: str  # "scalar" or "vector"
    reason: str

    @property
    def is_vector(self) -> bool:
        return self.engine == "vector"


def resolve_engine(
    requested: str,
    *,
    vectorizable: bool = True,
    why_not: str = "",
) -> EngineChoice:
    """Resolve ``requested`` against what can actually run.

    ``vectorizable=False`` marks workloads with no vectorized path (e.g.
    an allocation whose combination policy is not compilable);
    ``why_not`` names the reason.  ``auto`` then falls back to scalar,
    while an explicit ``vector`` request fails loudly.
    """
    if requested not in ENGINES:
        raise SimulationError(
            f"unknown engine {requested!r}; choose one of {'/'.join(ENGINES)}"
        )
    blocker = ""
    if not vectorizable:
        blocker = why_not or "workload has no vectorized path"
    elif not NUMPY_AVAILABLE:
        blocker = "numpy is not importable"
    if requested == "scalar":
        return EngineChoice(requested, "scalar", "scalar engine requested")
    if requested == "vector":
        if blocker:
            raise SimulationError(f"vector engine unavailable: {blocker}")
        return EngineChoice(requested, "vector", "vector engine requested")
    if blocker:
        return EngineChoice(requested, "scalar", f"auto fell back: {blocker}")
    return EngineChoice(
        requested, "vector", "auto picked the vectorized kernel"
    )


def record_engine_decision(category: str, choice: EngineChoice) -> None:
    """Emit the engine decision on the ambient recorder (no-op default)."""
    rec = current()
    if rec.enabled:
        rec.decision(
            category,
            "engine",
            subject=choice.engine,
            reason=choice.reason,
            requested=choice.requested,
        )
