"""Counters, gauges and fixed-bucket histograms with labeled series.

A :class:`MetricsRegistry` owns named instruments; each instrument keeps
one series per distinct label set (labels are passed as keyword
arguments, like ``counter.inc(rule="R2")``).  The registry snapshots to a
single JSON-able dict with deterministic ordering, which is what
``--metrics FILE`` writes.

Everything is plain stdlib — no client library, no background threads —
because the pipeline is synchronous and single-process.
"""

from __future__ import annotations

import json
from bisect import bisect_left

from repro.errors import ObservabilityError

#: Default histogram bucket upper edges (seconds) for ``Recorder.timed``.
DEFAULT_TIME_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0
)

#: Default bucket upper edges for small counts (affected FCMs, waves, ...).
DEFAULT_COUNT_BUCKETS = (0.0, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_text(key: tuple) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


class _NullInstrument:
    """Shared no-op stand-in for every instrument type."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels) -> None:
        return None

    def set(self, value: float, **labels) -> None:
        return None

    def observe(self, value: float, **labels) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """Monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.series: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (amount {amount})"
            )
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self.series.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "series": {
                _label_text(key): value
                for key, value in sorted(self.series.items())
            },
        }


class Gauge:
    """Last-written value per label set."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.series: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        self.series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self.series.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "series": {
                _label_text(key): value
                for key, value in sorted(self.series.items())
            },
        }


class _HistogramSeries:
    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class Histogram:
    """Fixed-bucket histogram; a value lands in the first bucket whose
    upper edge is >= the value (``le`` semantics), else in overflow."""

    kind = "histogram"

    def __init__(self, name: str, buckets=None) -> None:
        edges = tuple(sorted(buckets if buckets is not None else DEFAULT_TIME_BUCKETS))
        if not edges:
            raise ObservabilityError(f"histogram {name!r} needs >= 1 bucket")
        if len(set(edges)) != len(edges):
            raise ObservabilityError(
                f"histogram {name!r} has duplicate bucket edges"
            )
        self.name = name
        self.buckets = edges
        self.series: dict[tuple, _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = _HistogramSeries(len(self.buckets))
        series.counts[bisect_left(self.buckets, value)] += 1
        series.count += 1
        series.sum += value
        series.min = min(series.min, value)
        series.max = max(series.max, value)

    def snapshot(self) -> dict:
        out: dict = {"type": self.kind, "buckets": list(self.buckets), "series": {}}
        for key, series in sorted(self.series.items()):
            out["series"][_label_text(key)] = {
                "counts": list(series.counts),
                "count": series.count,
                "sum": series.sum,
                "min": series.min,
                "max": series.max,
                "mean": series.sum / series.count if series.count else 0.0,
            }
        return out


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able as JSON."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets=None) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def _get(self, name, kind, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory()
        elif not isinstance(instrument, kind):
            raise ObservabilityError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """One JSON-able dict covering every instrument, sorted by name."""
        return {
            "format": "repro-metrics",
            "version": 1,
            "metrics": {
                name: self._instruments[name].snapshot()
                for name in self.names()
            },
        }

    def write_snapshot(self, path_or_file) -> None:
        payload = json.dumps(self.snapshot(), indent=2, sort_keys=False)
        if hasattr(path_or_file, "write"):
            path_or_file.write(payload + "\n")
            return
        try:
            with open(path_or_file, "w") as handle:
                handle.write(payload + "\n")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot write metrics file {path_or_file!r}: {exc}"
            ) from exc


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """Sanitise a dotted metric name into a Prometheus identifier."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out or "_"


def _prom_labels(label_text: str) -> str:
    """Render our ``k=v,k=v`` series key as a ``{k="v",...}`` label set."""
    if not label_text:
        return ""
    parts = []
    for pair in label_text.split(","):
        key, _, value = pair.partition("=")
        # Exposition format: backslash, double-quote and newline must be
        # escaped inside label values.
        escaped = (
            value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{_prom_name(key)}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def to_prometheus_text(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict in Prometheus text
    exposition format (``# TYPE`` comments, cumulative ``_bucket`` lines
    with ``le`` labels plus ``_sum``/``_count`` for histograms)."""
    if snapshot.get("format") != "repro-metrics":
        raise ObservabilityError(
            "not a repro-metrics snapshot (missing format tag)"
        )
    lines: list[str] = []
    for name, data in snapshot.get("metrics", {}).items():
        prom = _prom_name(name)
        kind = data.get("type")
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {prom} {kind}")
            for label_text, value in data.get("series", {}).items():
                lines.append(
                    f"{prom}{_prom_labels(label_text)} {_prom_value(value)}"
                )
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            edges = data.get("buckets", [])
            for label_text, series in data.get("series", {}).items():
                base = label_text.split(",") if label_text else []
                cumulative = 0
                counts = series.get("counts", [])
                for edge, count in zip(edges, counts):
                    cumulative += count
                    labels = ",".join(base + [f"le={edge}"])
                    lines.append(
                        f"{prom}_bucket{_prom_labels(labels)} {cumulative}"
                    )
                total = series.get("count", 0)
                labels = ",".join(base + ["le=+Inf"])
                lines.append(f"{prom}_bucket{_prom_labels(labels)} {total}")
                plain = _prom_labels(label_text)
                lines.append(
                    f"{prom}_sum{plain} {_prom_value(series.get('sum', 0.0))}"
                )
                lines.append(f"{prom}_count{plain} {total}")
        else:
            raise ObservabilityError(
                f"metric {name!r} has unknown type {kind!r}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
