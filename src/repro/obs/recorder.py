"""Tracing and decision recording for the DDSI pipeline.

The paper's closing argument (§7) is that applying the framework to real
systems hinges on *measuring* actual parameters; this module is the
measurement substrate.  A :class:`Recorder` collects three kinds of
records while the pipeline runs:

* **spans** — named, nested wall-time intervals (``perf_counter`` based)
  with structured attributes, one per pipeline stage or hot-path call;
* **decision events** — typed records of what the pipeline chose
  (heuristic merges, R1-R5 rule firings, mapping placements, degraded-mode
  shed/split choices) and why;
* **metrics** — counters, gauges and fixed-bucket histograms kept in the
  recorder's :class:`~repro.obs.metrics.MetricsRegistry`.

Instrumented library code never takes a recorder parameter; it asks
:func:`current` for the ambient one.  The default is :data:`NULL_RECORDER`,
whose every method is a storage-free no-op, so instrumentation costs one
attribute check when observability is off.  Enable recording around any
block with :func:`use`::

    from repro.obs import Recorder, use

    recorder = Recorder()
    with use(recorder):
        IntegrationFramework(system).integrate(hw)
    recorder.write_trace("trace.ndjson")
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

TRACE_FORMAT = "repro-trace"
# Version 2 added the mandatory ``provenance`` block to the meta line
# (git sha, python version, machine fingerprint, repro version, and the
# workload name when one was set) so trace diffs can refuse to compare
# incomparable runs.  Version-1 traces are still readable.
TRACE_VERSION = 2


@dataclass
class Span:
    """One completed (or still-open) named interval.

    Times are seconds since the recorder's epoch (its construction time),
    so a trace is self-relative and deterministic in structure across
    runs — only the durations vary.
    """

    sid: int
    parent: int | None
    name: str
    depth: int
    t_start: float
    t_end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def to_event(self) -> dict:
        event = {
            "type": "span",
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "depth": self.depth,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "dur_s": self.duration,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        return event


@dataclass(frozen=True)
class DecisionEvent:
    """A typed record of one choice the pipeline made.

    Attributes:
        seq: Monotonic sequence number within the recorder.
        category: Subsystem slug (``condense``, ``map``, ``rule``,
            ``degrade``, ...).
        action: What was done (``merge``, ``place``, ``violation``,
            ``shed``, ``split``, ...).
        subject: The thing decided about (cluster label, rule id, ...).
        reason: Human-readable justification.
        span: sid of the innermost open span when the decision fired.
        attrs: Structured extras (scores, node names, ...).
    """

    seq: int
    category: str
    action: str
    subject: str
    reason: str
    span: int | None
    attrs: dict = field(default_factory=dict)

    def to_event(self) -> dict:
        event = {
            "type": "decision",
            "seq": self.seq,
            "category": self.category,
            "action": self.action,
            "subject": self.subject,
            "reason": self.reason,
            "span": self.span,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        return event


class _ActiveSpan:
    """Context manager driving one :class:`Span` on the recorder stack."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "Recorder", span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach attributes to the span after it opened."""
        self._span.attrs.update(attrs)
        return self

    @property
    def sid(self) -> int:
        """The underlying span's sid (for grafting remote children)."""
        return self._span.sid

    @property
    def depth(self) -> int:
        """The underlying span's nesting depth."""
        return self._span.depth

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, *exc) -> bool:
        self._recorder._close_span(self._span)
        return False


class _Timed:
    """Context manager that observes its elapsed time into a histogram."""

    __slots__ = ("_histogram", "_labels", "_t0")

    def __init__(self, histogram: Histogram, labels: dict) -> None:
        self._histogram = histogram
        self._labels = labels
        self._t0 = 0.0

    def __enter__(self) -> "_Timed":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._histogram.observe(time.perf_counter() - self._t0, **self._labels)
        return False


class _NoopSpan:
    """The do-nothing span/timer; one shared instance, zero storage."""

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    @property
    def sid(self) -> None:
        return None

    @property
    def depth(self) -> int:
        return 0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class NullRecorder:
    """The disabled recorder: every method is a storage-free no-op.

    Hot paths gate attribute formatting on :attr:`enabled` so the
    disabled path costs one attribute check and no allocations that
    outlive the call.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs) -> _NoopSpan:
        return NOOP_SPAN

    def timed(self, name: str, **labels) -> _NoopSpan:
        return NOOP_SPAN

    def decision(
        self,
        category: str,
        action: str,
        subject: str = "",
        reason: str = "",
        **attrs,
    ) -> None:
        return None

    def counter(self, name: str):
        return NULL_INSTRUMENT

    def gauge(self, name: str):
        return NULL_INSTRUMENT

    def histogram(self, name: str, buckets=None):
        return NULL_INSTRUMENT


NULL_RECORDER = NullRecorder()


class Recorder:
    """Collects spans, decisions and metrics for one observed run."""

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        # Wall-clock anchor of the perf_counter epoch: lets two recorders
        # in different processes (supervisor + shard worker) normalise
        # their self-relative span times onto one timeline.
        self.epoch_unix = time.time()
        self._seq = 0
        self._stack: list[Span] = []
        self.spans: list[Span] = []
        self.decisions: list[DecisionEvent] = []
        self.metrics = MetricsRegistry()
        # Extra provenance merged over the auto-collected block when the
        # trace is written (set_provenance(workload="paper", ...)).
        self.provenance: dict = {}
        # Events in completion order (spans append on close, decisions on
        # creation), ready for NDJSON streaming.
        self._log: list[dict] = []
        # Installed by repro.obs.profile.Profiler; when set, spans get
        # cpu_s / rss_peak_delta attrs stamped at close.  None keeps the
        # unprofiled path at one attribute check per span.
        self._resource_probe = None
        self.profiles = 0

    def set_provenance(self, **fields) -> None:
        """Record extra provenance for the trace meta line.

        ``None`` values are dropped so callers can pass through optional
        CLI arguments unconditionally.
        """
        self.provenance.update(
            {k: v for k, v in fields.items() if v is not None}
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        parent = self._stack[-1].sid if self._stack else None
        span = Span(
            sid=self._next_seq(),
            parent=parent,
            name=name,
            depth=len(self._stack),
            t_start=time.perf_counter() - self._epoch,
            attrs=dict(attrs),
        )
        self._stack.append(span)
        self.spans.append(span)
        if self._resource_probe is not None:
            self._resource_probe.open_span(span)
        return _ActiveSpan(self, span)

    def _close_span(self, span: Span) -> None:
        span.t_end = time.perf_counter() - self._epoch
        probe = self._resource_probe
        # Close any deeper spans left open (defensive: exceptions may
        # unwind several levels at once).
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            dangling.t_end = span.t_end
            if probe is not None:
                probe.close_span(dangling)
            self._log.append(dangling.to_event())
        if self._stack:
            self._stack.pop()
        if probe is not None:
            probe.close_span(span)
        self._log.append(span.to_event())

    def timed(self, name: str, **labels) -> _Timed:
        """Time a block into histogram ``name`` (seconds)."""
        return _Timed(self.metrics.histogram(name), labels)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def decision(
        self,
        category: str,
        action: str,
        subject: str = "",
        reason: str = "",
        **attrs,
    ) -> DecisionEvent:
        event = DecisionEvent(
            seq=self._next_seq(),
            category=category,
            action=action,
            subject=subject,
            reason=reason,
            span=self._stack[-1].sid if self._stack else None,
            attrs=attrs,
        )
        self.decisions.append(event)
        self._log.append(event.to_event())
        return event

    # ------------------------------------------------------------------
    # Profile events
    # ------------------------------------------------------------------
    def profile_event(self, event: dict) -> None:
        """Append one ``profile`` record (sampled stacks / resources).

        Produced by :class:`repro.obs.profile.Profiler`; span references
        inside the event already use this recorder's sids (the profiler
        reads them off the live span stack).
        """
        self._log.append(event)
        self.profiles += 1

    # ------------------------------------------------------------------
    # Remote event grafting
    # ------------------------------------------------------------------
    def graft_events(
        self,
        events: list[dict],
        parent_sid: int | None = None,
        parent_depth: int = 0,
        t_offset: float = 0.0,
    ) -> dict[int, int]:
        """Splice events recorded by *another* recorder into this one.

        Used by the shard supervisor to merge worker-side spans and
        decisions (shipped over the transport as plain dicts) into the
        campaign trace.  Remote sids are rebased onto this recorder's
        sequence, parent references are remapped (a parent that never
        arrived — e.g. the worker was killed mid-lease — reparents onto
        ``parent_sid``), times are shifted by ``t_offset`` (the remote
        epoch minus ours, from the handshake wall clocks) and clamped so
        clock skew can't produce negative or inverted intervals, and
        still-open remote spans are closed at their start time so every
        grafted span closes.  Grafted spans carry ``attrs.remote: true``.

        Returns the remote-sid → local-sid mapping so callers grafting
        one lease across several batches can keep references stable.
        """
        sid_map: dict[int, int] = {}
        base_depth = parent_depth + 1
        for event in events:
            if event.get("type") == "span":
                sid_map[event["sid"]] = self._next_seq()
        for event in events:
            kind = event.get("type")
            if kind == "span":
                t_start = max(0.0, event["t_start"] + t_offset)
                t_end = event.get("t_end")
                t_end = t_start if t_end is None else max(
                    t_start, t_end + t_offset
                )
                parent = event.get("parent")
                attrs = dict(event.get("attrs") or {})
                attrs["remote"] = True
                span = Span(
                    sid=sid_map[event["sid"]],
                    parent=sid_map.get(parent, parent_sid),
                    name=event["name"],
                    depth=base_depth + event.get("depth", 0),
                    t_start=t_start,
                    t_end=t_end,
                    attrs=attrs,
                )
                self.spans.append(span)
                self._log.append(span.to_event())
            elif kind == "decision":
                remote_span = event.get("span")
                decision = DecisionEvent(
                    seq=self._next_seq(),
                    category=event["category"],
                    action=event["action"],
                    subject=event.get("subject", ""),
                    reason=event.get("reason", ""),
                    span=sid_map.get(remote_span, parent_sid),
                    attrs=dict(event.get("attrs") or {}),
                )
                self.decisions.append(decision)
                self._log.append(decision.to_event())
            elif kind == "profile":
                grafted = dict(event)
                owner = grafted.get("span")
                if owner is not None:
                    grafted["span"] = sid_map.get(owner, parent_sid)
                if "t" in grafted:
                    grafted["t"] = max(0.0, grafted["t"] + t_offset)
                grafted["remote"] = True
                self._log.append(grafted)
                self.profiles += 1
        return sid_map

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str, buckets=None) -> Histogram:
        return self.metrics.histogram(name, buckets)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def events(self) -> list[dict]:
        """All trace events: one meta line, then completion-ordered records.

        Still-open spans are flushed with ``t_end: null`` so a trace
        written mid-run is valid NDJSON.
        """
        from repro.obs.provenance import collect_provenance

        provenance = collect_provenance()
        provenance.update(self.provenance)
        meta = {
            "type": "meta",
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "clock": "perf_counter",
            "spans": len(self.spans),
            "decisions": len(self.decisions),
            "provenance": provenance,
        }
        if self.profiles:
            meta["profiles"] = self.profiles
        out = [meta]
        out.extend(self._log)
        closed = {id(s) for s in self.spans if s.t_end is not None}
        out.extend(
            s.to_event() for s in self.spans if id(s) not in closed
        )
        return out

    def write_trace(self, path_or_file) -> None:
        """Write the trace as NDJSON (one JSON object per line)."""
        from repro.obs.ndjson import dump_ndjson

        dump_ndjson(self.events(), path_or_file)

    def write_metrics(self, path_or_file) -> None:
        """Write the metrics snapshot as a single JSON document."""
        self.metrics.write_snapshot(path_or_file)


# ----------------------------------------------------------------------
# Ambient recorder
# ----------------------------------------------------------------------
_current: Recorder | NullRecorder = NULL_RECORDER


def current() -> Recorder | NullRecorder:
    """The ambient recorder (the no-op :data:`NULL_RECORDER` by default)."""
    return _current


@contextmanager
def use(recorder: Recorder | NullRecorder):
    """Install ``recorder`` as the ambient recorder for a ``with`` block."""
    global _current
    previous = _current
    _current = recorder
    try:
        yield recorder
    finally:
        _current = previous
