"""Benchmark baseline checking: the perf ratchet behind ``repro bench check``.

``benchmarks/bench_pipeline.py`` measures the pipeline and appends every
run to ``BENCH_history.ndjson``; this module compares the latest run
against a **committed baseline** (``benchmarks/BENCH_baseline.json``)
with per-case / per-stage tolerances, so a perf regression fails CI
instead of silently shifting the numbers the next PR measures against.

Tolerances are asymmetric by design: wall times may grow by at most
``1 + wall_s`` relative (e.g. ``0.75`` allows +75%), throughput may drop
by at most ``trials_per_s`` relative, and per-stage comparisons apply a
``stage_floor_s`` absolute floor so sub-millisecond stages cannot fail
the gate on scheduler jitter.  Cross-machine runs are compared with the
same numbers but flagged in the report — the committed defaults are
deliberately loose enough for CI-runner variance; tighten them locally
when hunting a specific regression.

Baseline update workflow (see ``docs/OBSERVABILITY.md``)::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick
    PYTHONPATH=src python -m repro bench update-baseline
    git add benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ObservabilityError

BASELINE_FORMAT = "repro-bench-baseline"
BASELINE_VERSION = 1

#: Committed-default tolerances: loose enough for CI-runner variance.
DEFAULT_TOLERANCE = {
    "wall_s": 1.5,  # latest wall time may be up to 2.5x the baseline
    "stage_s": 2.0,  # per-stage wall time may be up to 3x the baseline
    "trials_per_s": 0.7,  # throughput may drop to 30% of the baseline
    "stage_floor_s": 0.005,  # ignore stages where both runs are < 5ms
    # Pooled campaigns must actually be faster than serial whenever the
    # pool engages (>= 2 effective workers); entries where the pool was
    # declined (1 CPU) skip this gate with a note instead.
    "min_speedup": 1.0,
    # Distributed tracing must stay near-free: the traced sharded run
    # may cost at most this fraction over the untraced one.  Gated only
    # when the pool engaged — on a 1-CPU / 1-shard run the walls are
    # too short for the ratio to mean anything.
    "max_telemetry_overhead": 0.05,
    # The sampling profiler must stay near-free too: a profiled
    # campaign may cost at most this fraction over the unprofiled one
    # (and must stay bit-identical — see identical_profiled).
    "max_profile_overhead": 0.05,
    # Absolute caps, unlike the relative ratchets above: ``max_wall_s``
    # bounds an entry's total wall time outright (skipped, like the
    # relative wall gate, when the latest run used a different campaign
    # length), and ``max_stage_s`` maps stage name -> absolute seconds
    # cap (always applied — stage times do not depend on campaign
    # length).  Both default to unbounded and are set per entry in the
    # committed baseline where a hard perf promise exists (e.g. the
    # vectorized allocation stages).
    "max_wall_s": None,
    "max_stage_s": {},
}


@dataclass(frozen=True)
class BenchFinding:
    """One tolerance violation (or structural mismatch)."""

    case: str
    metric: str
    baseline: float | None
    latest: float | None
    limit: float | None
    message: str


@dataclass
class BenchCheck:
    """The gate verdict: ``passed`` drives the exit code."""

    findings: list[BenchFinding] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.findings


def load_baseline(path) -> dict:
    """Parse and structurally validate a baseline document."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read bench baseline {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"bench baseline {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(doc, dict) or doc.get("format") != BASELINE_FORMAT:
        raise ObservabilityError(
            f"bench baseline {path!r} has no {BASELINE_FORMAT!r} format tag "
            "(generate one with: python -m repro bench update-baseline)"
        )
    if not isinstance(doc.get("entries"), list):
        raise ObservabilityError(
            f"bench baseline {path!r} has no entries list"
        )
    return doc


def load_latest(path) -> list[dict]:
    """Parse a ``BENCH_pipeline.json`` run (a list of entries)."""
    try:
        with open(path) as handle:
            entries = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read bench results {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"bench results {path!r} are not valid JSON: {exc}"
        ) from exc
    if not isinstance(entries, list):
        raise ObservabilityError(
            f"bench results {path!r} are not a list of entries"
        )
    return entries


def write_baseline(
    entries: list[dict],
    path,
    tolerance: dict | None = None,
    provenance: dict | None = None,
) -> dict:
    """Write (and return) a baseline document built from ``entries``."""
    from repro.obs.provenance import collect_provenance

    doc = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "provenance": provenance or collect_provenance(),
        "tolerance": dict(DEFAULT_TOLERANCE, **(tolerance or {})),
        "entries": entries,
    }
    try:
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
    except OSError as exc:
        raise ObservabilityError(
            f"cannot write bench baseline {path!r}: {exc}"
        ) from exc
    return doc


def append_history(entries: list[dict], path, quick: bool = False) -> dict:
    """Append one run record to the NDJSON bench history; returns it."""
    import time

    from repro.obs.provenance import collect_provenance

    record = {
        "unix_time": round(time.time(), 3),
        "quick": quick,
        "provenance": collect_provenance(),
        "entries": entries,
    }
    try:
        with open(path, "a") as handle:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
    except OSError as exc:
        raise ObservabilityError(
            f"cannot append bench history {path!r}: {exc}"
        ) from exc
    return record


def _tolerances(baseline_doc: dict, entry: dict, override: dict | None) -> dict:
    """Effective tolerances: defaults < document < per-entry < override."""
    effective = dict(DEFAULT_TOLERANCE)
    effective.update(baseline_doc.get("tolerance") or {})
    effective.update(entry.get("tolerance") or {})
    effective.update(override or {})
    return effective


def check_bench(
    latest_entries: list[dict],
    baseline_doc: dict,
    tolerance: dict | None = None,
) -> BenchCheck:
    """Compare the latest bench run against a baseline document.

    Checks, per baseline case: total wall time, campaign throughput and
    per-stage wall times for scenario entries (plus the absolute
    ``max_wall_s`` / ``max_stage_s`` caps where the baseline sets
    them); serial wall time, the
    serial==pooled determinism contract, the pooled-speedup floor and
    the telemetry-overhead cap (both only when the pool engaged) for
    parallel/sharded entries.  A case
    present in the baseline but missing from the latest run is a
    failure; extra latest-only cases are noted, not failed.
    """
    check = BenchCheck()
    latest_by_name = {e.get("name"): e for e in latest_entries}
    for base in baseline_doc.get("entries", []):
        name = base.get("name", "?")
        latest = latest_by_name.pop(name, None)
        if latest is None:
            check.findings.append(
                BenchFinding(
                    case=name,
                    metric="presence",
                    baseline=None,
                    latest=None,
                    limit=None,
                    message=f"{name}: case missing from the latest bench run",
                )
            )
            continue
        check.checked.append(name)
        tol = _tolerances(baseline_doc, base, tolerance)
        _check_entry(check, name, base, latest, tol)
    for name in latest_by_name:
        check.notes.append(
            f"{name}: present in the latest run but not in the baseline"
        )
    machine_base = (baseline_doc.get("provenance") or {}).get("machine")
    machines_latest = {
        (e.get("provenance") or {}).get("machine")
        for e in latest_entries
        if e.get("provenance")
    } - {None}
    if machine_base and machines_latest and machines_latest != {machine_base}:
        check.notes.append(
            "latest run was recorded on a different machine than the "
            "baseline; tolerances are cross-machine loose by default"
        )
    return check


def _check_entry(
    check: BenchCheck, name: str, base: dict, latest: dict, tol: dict
) -> None:
    def fail(metric, base_v, latest_v, limit, message):
        check.findings.append(
            BenchFinding(
                case=name,
                metric=metric,
                baseline=base_v,
                latest=latest_v,
                limit=limit,
                message=message,
            )
        )

    def slower(metric, base_v, latest_v, rel):
        limit = base_v * (1.0 + rel)
        if latest_v > limit:
            fail(
                metric,
                base_v,
                latest_v,
                limit,
                f"{name}: {metric} {latest_v:.4f}s exceeds "
                f"{base_v:.4f}s + {rel * 100:.0f}% tolerance "
                f"(limit {limit:.4f}s)",
            )

    # Wall time scales with campaign length; a --quick run is not
    # wall-comparable to a full baseline.  Per-stage times and the
    # normalized trials/s still are, so only the wall checks are skipped.
    trials_b = base.get("campaign_trials")
    trials_l = latest.get("campaign_trials")
    comparable_wall = trials_b is None or trials_l is None or trials_b == trials_l
    if not comparable_wall:
        check.notes.append(
            f"{name}: campaign trial counts differ "
            f"({trials_b} vs {trials_l}); wall-time comparison skipped"
        )
    if comparable_wall and "wall_s" in base and "wall_s" in latest:
        slower("wall_s", float(base["wall_s"]), float(latest["wall_s"]),
               float(tol["wall_s"]))
    if (
        comparable_wall
        and tol.get("max_wall_s") is not None
        and "wall_s" in latest
    ):
        cap = float(tol["max_wall_s"])
        latest_v = float(latest["wall_s"])
        if latest_v > cap:
            fail(
                "max_wall_s",
                float(base.get("wall_s") or 0.0),
                latest_v,
                cap,
                f"{name}: wall time {latest_v:.4f}s exceeds the absolute "
                f"{cap:.4f}s cap",
            )
    if comparable_wall and "serial_wall_s" in base and "serial_wall_s" in latest:
        slower(
            "serial_wall_s",
            float(base["serial_wall_s"]),
            float(latest["serial_wall_s"]),
            float(tol["wall_s"]),
        )
    if "trials_per_s" in base and "trials_per_s" in latest:
        base_v, latest_v = float(base["trials_per_s"]), float(latest["trials_per_s"])
        rel = float(tol["trials_per_s"])
        limit = base_v * (1.0 - rel)
        if latest_v < limit:
            fail(
                "trials_per_s",
                base_v,
                latest_v,
                limit,
                f"{name}: throughput {latest_v:.1f}/s fell below "
                f"{base_v:.1f}/s - {rel * 100:.0f}% tolerance "
                f"(limit {limit:.1f}/s)",
            )
    floor = float(tol["stage_floor_s"])
    base_stages = base.get("stages") or {}
    latest_stages = latest.get("stages") or {}
    for stage, base_v in base_stages.items():
        if stage not in latest_stages:
            fail(
                f"stages.{stage}",
                float(base_v),
                None,
                None,
                f"{name}: stage {stage!r} missing from the latest run",
            )
            continue
        base_v = float(base_v)
        latest_v = float(latest_stages[stage])
        if max(base_v, latest_v) < floor:
            continue
        rel = float(tol["stage_s"])
        limit = base_v * (1.0 + rel)
        if latest_v > limit and latest_v - base_v > floor:
            fail(
                f"stages.{stage}",
                base_v,
                latest_v,
                limit,
                f"{name}: stage {stage} {latest_v * 1000:.2f}ms exceeds "
                f"{base_v * 1000:.2f}ms + {rel * 100:.0f}% tolerance",
            )
    for stage, cap in (tol.get("max_stage_s") or {}).items():
        if stage not in latest_stages:
            continue  # absent-but-baselined stages already failed above
        cap = float(cap)
        latest_v = float(latest_stages[stage])
        if latest_v > cap:
            fail(
                f"max_stage_s.{stage}",
                float(base_stages.get(stage) or 0.0),
                latest_v,
                cap,
                f"{name}: stage {stage} {latest_v * 1000:.2f}ms exceeds "
                f"the absolute {cap * 1000:.2f}ms cap",
            )
    if base.get("identical") is True and latest.get("identical") is False:
        fail(
            "identical",
            1.0,
            0.0,
            None,
            f"{name}: pooled campaign no longer matches the serial run "
            "(determinism contract broken)",
        )
    if latest.get("identical_traced") is False:
        fail(
            "identical_traced",
            1.0,
            0.0,
            None,
            f"{name}: traced campaign no longer matches the serial run "
            "(telemetry is not result-transparent)",
        )
    if latest.get("identical_profiled") is False:
        fail(
            "identical_profiled",
            1.0,
            0.0,
            None,
            f"{name}: profiled campaign no longer matches the unprofiled "
            "run (profiling is not result-transparent)",
        )
    if latest.get("profile_overhead") is not None:
        cap = float(tol["max_profile_overhead"])
        latest_v = float(latest["profile_overhead"])
        if latest_v > cap:
            fail(
                "profile_overhead",
                float(base.get("profile_overhead") or 0.0),
                latest_v,
                cap,
                f"{name}: profiling overhead {latest_v * 100:.1f}% "
                f"exceeds the {cap * 100:.0f}% cap — the sampler is no "
                "longer near-free",
            )
    if latest.get("telemetry_overhead") is not None:
        engaged = latest.get("pool_engaged")
        if engaged is None:
            engaged = int(latest.get("workers") or 0) >= 2
        cap = float(tol["max_telemetry_overhead"])
        latest_v = float(latest["telemetry_overhead"])
        if engaged:
            if latest_v > cap:
                fail(
                    "telemetry_overhead",
                    float(base.get("telemetry_overhead") or 0.0),
                    latest_v,
                    cap,
                    f"{name}: telemetry overhead {latest_v * 100:.1f}% "
                    f"exceeds the {cap * 100:.0f}% cap — distributed "
                    "tracing is no longer near-free",
                )
        else:
            check.notes.append(
                f"{name}: pool did not engage; telemetry-overhead gate "
                f"skipped (measured {latest_v * 100:.1f}%)"
            )
    if "speedup" in base and latest.get("speedup") is not None:
        engaged = latest.get("pool_engaged")
        if engaged is None:
            engaged = int(latest.get("workers") or 0) >= 2
        if engaged:
            floor_speedup = float(tol["min_speedup"])
            latest_v = float(latest["speedup"])
            if latest_v <= floor_speedup:
                fail(
                    "speedup",
                    float(base["speedup"]),
                    latest_v,
                    floor_speedup,
                    f"{name}: pooled speedup {latest_v:.3f}x is not above "
                    f"{floor_speedup:.2f}x — the worker pool made the "
                    "campaign slower than running it serially",
                )
        else:
            check.notes.append(
                f"{name}: pool did not engage "
                f"({latest.get('cpus', '?')} CPU(s) available); "
                "speedup gate skipped"
            )


def render_bench_check(check: BenchCheck) -> str:
    """The ``repro bench check`` report."""
    lines: list[str] = []
    if check.checked:
        lines.append(
            f"checked {len(check.checked)} case(s): "
            + ", ".join(check.checked)
        )
    for note in check.notes:
        lines.append(f"note: {note}")
    if check.passed:
        lines.append("bench check PASSED (within tolerance of the baseline)")
    else:
        for finding in check.findings:
            lines.append(f"REGRESSION: {finding.message}")
        lines.append(
            f"bench check FAILED ({len(check.findings)} regression(s))"
        )
    return "\n".join(lines)
