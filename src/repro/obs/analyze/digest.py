"""Run-health digest: aggregate ``repro.exec`` decision events.

The supervised runner (PR 3) narrates every fault it survives — worker
crashes, batch timeouts, retries with backoff, splits, serial fallbacks,
checkpoint resumes — as ``exec``-category decision events in the trace.
This module folds that stream into a per-batch table plus campaign-level
counters so a chaos or campaign run is auditable at a glance:
``repro exec digest trace.ndjson``.

Shard-lease traces (PR 6's ``run_sharded`` supervisor) get their own
per-shard lane: leases held, heartbeats observed, expiries, redispatches,
crashes, and serial rescues, folded from the ``lease_*`` / ``redispatch``
/ ``shard_crash`` decisions the lease loop records.  A distributed trace
thus digests into *both* views — per-shard lease health plus any
batch-level fault handling the serial rescues went through.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BatchHealth:
    """Fault handling observed for one batch subject ``[start,stop)``."""

    subject: str
    retries: int = 0
    backoff_s: float = 0.0
    splits: int = 0
    crashes: int = 0
    timeouts: int = 0
    errors: int = 0
    serial_fallbacks: int = 0

    @property
    def events(self) -> int:
        return (
            self.retries
            + self.splits
            + self.crashes
            + self.timeouts
            + self.errors
            + self.serial_fallbacks
        )


@dataclass
class ShardLane:
    """Lease-supervisor activity observed for one shard."""

    shard: int
    leases: int = 0
    done: int = 0
    heartbeats: int = 0
    expiries: int = 0
    redispatches: int = 0
    crashes: int = 0
    errors: int = 0
    rescues: int = 0

    @property
    def events(self) -> int:
        return (
            self.expiries
            + self.redispatches
            + self.crashes
            + self.errors
            + self.rescues
        )


@dataclass
class ExecDigest:
    """Everything the runner recorded about how the campaign survived."""

    batches: dict[str, BatchHealth] = field(default_factory=dict)
    shards: dict[int, ShardLane] = field(default_factory=dict)
    shard_plan: int = 0
    backend: str | None = None
    backend_abandoned: int = 0
    pool_abandoned: int = 0
    interrupted: int = 0
    resumes: int = 0
    resumed_entries: int = 0
    corrupt_checkpoint_lines: int = 0
    completed: bool = False
    completed_batches: int = 0
    completed_from_checkpoint: int = 0
    protocol_torn_lines: int = 0
    generation_fenced_lines: int = 0
    crash_stderr: dict[int, str] = field(default_factory=dict)
    other_decisions: int = 0
    # (shard, pid) -> latest resource_summary profile event (cumulative
    # per worker process, so last wins); populated by --profile runs.
    resources: dict[tuple, dict] = field(default_factory=dict)
    profile_events: int = 0

    @property
    def total_retries(self) -> int:
        return sum(b.retries for b in self.batches.values())

    @property
    def total_backoff_s(self) -> float:
        return sum(b.backoff_s for b in self.batches.values())


#: decision action -> BatchHealth counter it increments.
_BATCH_ACTIONS = {
    "retry": "retries",
    "split": "splits",
    "worker_crash": "crashes",
    "batch_timeout": "timeouts",
    "batch_error": "errors",
    "serial_fallback": "serial_fallbacks",
}


#: shard-lease decision action -> ShardLane counter it increments.
_SHARD_ACTIONS = {
    "lease_grant": "leases",
    "lease_done": "done",
    "lease_expired": "expiries",
    "lease_error": "errors",
    "redispatch": "redispatches",
    "shard_crash": "crashes",
}

#: actions whose attrs carry the lease's final heartbeat count.
_HEARTBEAT_ACTIONS = {"lease_done", "lease_expired", "lease_error", "shard_crash"}


def _shard_lane(digest: "ExecDigest", attrs: dict) -> ShardLane | None:
    shard = attrs.get("shard")
    if not isinstance(shard, int):
        return None
    return digest.shards.setdefault(shard, ShardLane(shard))


def digest_exec_events(events: list[dict]) -> ExecDigest:
    """Fold a trace's ``exec`` decision events into an :class:`ExecDigest`."""
    digest = ExecDigest()
    for event in events:
        if event.get("type") == "profile":
            digest.profile_events += 1
            if event.get("kind") == "resource_summary":
                key = (event.get("shard"), event.get("pid"))
                digest.resources[key] = event
            continue
        if event.get("type") != "decision" or event.get("category") != "exec":
            continue
        action = event.get("action")
        attrs = event.get("attrs") or {}
        if action in _SHARD_ACTIONS:
            lane = _shard_lane(digest, attrs)
            if lane is not None:
                setattr(
                    lane,
                    _SHARD_ACTIONS[action],
                    getattr(lane, _SHARD_ACTIONS[action]) + 1,
                )
                if action in _HEARTBEAT_ACTIONS:
                    lane.heartbeats += int(attrs.get("heartbeats") or 0)
                if action == "shard_crash" and attrs.get("stderr_tail"):
                    digest.crash_stderr[lane.shard] = str(
                        attrs["stderr_tail"]
                    )
            continue
        if action in _BATCH_ACTIONS:
            if action == "serial_fallback":
                lane = _shard_lane(digest, attrs)
                if lane is not None:
                    lane.rescues += 1
            subject = event.get("subject") or "?"
            batch = digest.batches.setdefault(subject, BatchHealth(subject))
            setattr(
                batch,
                _BATCH_ACTIONS[action],
                getattr(batch, _BATCH_ACTIONS[action]) + 1,
            )
            if action == "retry":
                batch.backoff_s += float(attrs.get("delay_s") or 0.0)
        elif action == "shard_plan":
            digest.shard_plan = int(attrs.get("shards") or 0)
            digest.backend = attrs.get("backend")
        elif action == "backend_abandoned":
            digest.backend_abandoned += 1
        elif action == "pool_abandoned":
            digest.pool_abandoned += 1
        elif action == "interrupted":
            digest.interrupted += 1
        elif action == "resume":
            digest.resumes += 1
            digest.resumed_entries += int(attrs.get("entries") or 0)
            digest.corrupt_checkpoint_lines += int(attrs.get("corrupt_lines") or 0)
        elif action == "checkpoint_corrupt":
            digest.corrupt_checkpoint_lines += int(attrs.get("lines") or 0)
        elif action == "protocol_torn":
            digest.protocol_torn_lines += 1
        elif action == "generation_fenced":
            digest.generation_fenced_lines += 1
        elif action == "complete":
            digest.completed = True
            digest.completed_batches = int(attrs.get("batches") or 0)
            digest.completed_from_checkpoint = int(
                attrs.get("from_checkpoint") or 0
            )
        else:
            digest.other_decisions += 1
    return digest


def render_digest(digest: ExecDigest) -> str:
    """The ``repro exec digest`` report."""
    from repro.metrics.report import format_table

    if not digest.batches and not digest.shards and not (
        digest.completed
        or digest.resumes
        or digest.interrupted
        or digest.pool_abandoned
        or digest.resources
    ):
        return "trace contains no exec decision events"

    lines: list[str] = []
    if digest.shards:
        rows = [
            (
                lane.shard,
                lane.leases,
                lane.done,
                lane.heartbeats,
                lane.expiries,
                lane.redispatches,
                lane.crashes,
                lane.errors,
                lane.rescues,
            )
            for lane in sorted(
                digest.shards.values(), key=lambda s: s.shard
            )
        ]
        title = "Per-shard lease health"
        if digest.backend:
            title += f" (backend: {digest.backend})"
        lines.append(
            format_table(
                [
                    "shard",
                    "leases",
                    "done",
                    "heartbeats",
                    "expiries",
                    "redisp",
                    "crashes",
                    "errors",
                    "rescues",
                ],
                rows,
                title=title,
            )
        )
        lines.append("")
    if digest.crash_stderr:
        lines.append("Crashed-shard stderr tails:")
        for shard in sorted(digest.crash_stderr):
            tail = digest.crash_stderr[shard].strip().splitlines() or [""]
            lines.append(f"  shard {shard}: {tail[-1]}")
        lines.append("")
    if digest.resources:
        rows = []
        for key in sorted(
            digest.resources,
            key=lambda k: (k[0] is None, k[0] or 0, k[1] or 0),
        ):
            s = digest.resources[key]
            shard = s.get("shard")
            rows.append((
                "sup" if shard is None else shard,
                s.get("pid") or "-",
                f"{(s.get('rss_peak_bytes') or 0) / 1e6:.1f}",
                f"{s.get('cpu_s') or 0.0:.3f}",
                s.get("gc_collections") or 0,
                s.get("samples") or 0,
            ))
        lines.append(
            format_table(
                ["shard", "pid", "peak rss MB", "cpu s", "gc", "samples"],
                rows,
                title="Per-shard worker resources (--profile)",
            )
        )
        lines.append("")
    if digest.batches:
        rows = [
            (
                b.subject,
                b.retries,
                f"{b.backoff_s * 1000:.1f}",
                b.splits,
                b.crashes,
                b.timeouts,
                b.errors,
                b.serial_fallbacks,
            )
            for b in sorted(
                digest.batches.values(), key=lambda b: (-b.events, b.subject)
            )
        ]
        lines.append(
            format_table(
                [
                    "batch",
                    "retries",
                    "backoff ms",
                    "splits",
                    "crashes",
                    "timeouts",
                    "errors",
                    "serial",
                ],
                rows,
                title="Per-batch fault handling",
            )
        )
        lines.append("")
    summary = [
        f"batches with faults: {len(digest.batches)}",
        f"retries: {digest.total_retries} "
        f"(backoff {digest.total_backoff_s * 1000:.1f}ms)",
    ]
    if digest.resumes:
        summary.append(
            f"resumes: {digest.resumes} "
            f"({digest.resumed_entries} checkpointed batches reused)"
        )
    if digest.corrupt_checkpoint_lines:
        summary.append(
            f"corrupt checkpoint lines: {digest.corrupt_checkpoint_lines}"
        )
    if digest.shards:
        summary.append(
            f"shards: {len(digest.shards)}"
            + (f" of {digest.shard_plan} planned" if digest.shard_plan else "")
        )
    if digest.profile_events:
        summary.append(f"profile events: {digest.profile_events}")
    if digest.protocol_torn_lines:
        summary.append(f"torn protocol lines: {digest.protocol_torn_lines}")
    if digest.generation_fenced_lines:
        summary.append(
            f"generation-fenced lines: {digest.generation_fenced_lines}"
        )
    if digest.backend_abandoned:
        summary.append(f"backend abandoned: {digest.backend_abandoned}x")
    if digest.pool_abandoned:
        summary.append(f"pool abandoned: {digest.pool_abandoned}x")
    if digest.interrupted:
        summary.append(f"interrupted: {digest.interrupted}x")
    if digest.completed:
        summary.append(
            f"completed: {digest.completed_batches} batches "
            f"({digest.completed_from_checkpoint} from checkpoint)"
        )
    else:
        summary.append("completed: NO (no exec complete event in trace)")
    lines.append(" · ".join(summary))
    return "\n".join(lines)
