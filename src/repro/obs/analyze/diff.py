"""Trace diffing: per-stage wall-time and count deltas with a noise gate.

``repro trace diff A B`` treats A as the baseline and B as the
candidate.  Spans are aligned by **path** — the ``/``-joined chain of
span names from the root (``pipeline/condense``), so a ``score`` span
inside the pipeline never aliases a ``score`` span elsewhere — and each
path's wall time and span count are compared.

Noise gating is two-sided: a path only counts as a regression when its
time grew by more than ``threshold`` (relative) **and** by more than
``min_delta_s`` (absolute), so microsecond jitter on tiny stages cannot
fail a gate however large its ratio is.

Version-2 traces carry provenance; :func:`comparability_problems`
refuses to diff runs of different workloads or trace formats (different
python versions or machines are reported as warnings, not refusals).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.analyze.critical_path import span_tree
from repro.obs.ndjson import trace_meta

#: Default relative growth considered real (20%).
DEFAULT_THRESHOLD = 0.20
#: Default absolute growth considered real (0.5ms).
DEFAULT_MIN_DELTA_S = 0.0005


@dataclass(frozen=True)
class StageDelta:
    """One span path compared across the two traces."""

    path: str
    count_a: int
    count_b: int
    total_a_s: float
    total_b_s: float

    @property
    def delta_s(self) -> float:
        return self.total_b_s - self.total_a_s

    @property
    def ratio(self) -> float | None:
        """total_b / total_a, or None when the baseline time is zero."""
        if self.total_a_s <= 0.0:
            return None
        return self.total_b_s / self.total_a_s


@dataclass
class TraceDiff:
    """The full comparison; ``regression`` drives the exit code."""

    stages: list[StageDelta]
    regressions: list[StageDelta]
    improvements: list[StageDelta]
    added: list[StageDelta]
    removed: list[StageDelta]
    threshold: float
    min_delta_s: float
    warnings: list[str] = field(default_factory=list)

    @property
    def regression(self) -> bool:
        return bool(self.regressions)


def span_path_stats(events: list[dict]) -> dict[str, tuple[int, float]]:
    """``path -> (span count, total seconds)`` for one trace."""
    roots, children = span_tree(events)
    stats: dict[str, tuple[int, float]] = {}

    def visit(span: dict, prefix: str) -> None:
        path = f"{prefix}/{span.get('name') or '?'}" if prefix else (
            span.get("name") or "?"
        )
        count, total = stats.get(path, (0, 0.0))
        stats[path] = (count + 1, total + (span.get("dur_s") or 0.0))
        for child in children.get(span.get("sid"), ()):
            visit(child, path)

    for root in roots:
        visit(root, "")
    return stats


def comparability_problems(
    events_a: list[dict], events_b: list[dict]
) -> tuple[list[str], list[str]]:
    """(refusals, warnings) from the two traces' meta/provenance.

    Refusals: different trace formats, or both traces name a workload
    and the names differ.  Warnings: missing meta, differing python
    versions, machines or repro versions — comparable, but noisier.
    """
    refusals: list[str] = []
    warnings: list[str] = []
    meta_a, meta_b = trace_meta(events_a), trace_meta(events_b)
    if meta_a is None or meta_b is None:
        warnings.append("one or both traces have no meta line; provenance unchecked")
        return refusals, warnings
    fmt_a, fmt_b = meta_a.get("format"), meta_b.get("format")
    if fmt_a != fmt_b:
        refusals.append(f"trace formats differ: {fmt_a!r} vs {fmt_b!r}")
    prov_a = meta_a.get("provenance") or {}
    prov_b = meta_b.get("provenance") or {}
    wl_a, wl_b = prov_a.get("workload"), prov_b.get("workload")
    if wl_a is not None and wl_b is not None and wl_a != wl_b:
        refusals.append(
            f"traces record different workloads: {wl_a!r} vs {wl_b!r}"
        )
    for key in ("python", "machine", "repro_version"):
        va, vb = prov_a.get(key), prov_b.get(key)
        if va is not None and vb is not None and va != vb:
            warnings.append(f"{key} differs: {va!r} vs {vb!r}")
    if (meta_a.get("version") or 1) != (meta_b.get("version") or 1):
        warnings.append(
            f"trace format versions differ: "
            f"{meta_a.get('version')} vs {meta_b.get('version')}"
        )
    return refusals, warnings


def diff_traces(
    events_a: list[dict],
    events_b: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
) -> TraceDiff:
    """Compare candidate B against baseline A (see module docstring).

    Provenance refusals are *not* applied here — the caller decides
    (the CLI refuses unless ``--force``); they are surfaced via
    :func:`comparability_problems`.
    """
    stats_a = span_path_stats(events_a)
    stats_b = span_path_stats(events_b)
    _, warnings = comparability_problems(events_a, events_b)

    stages: list[StageDelta] = []
    for path in sorted(set(stats_a) | set(stats_b)):
        count_a, total_a = stats_a.get(path, (0, 0.0))
        count_b, total_b = stats_b.get(path, (0, 0.0))
        stages.append(
            StageDelta(
                path=path,
                count_a=count_a,
                count_b=count_b,
                total_a_s=total_a,
                total_b_s=total_b,
            )
        )

    regressions, improvements, added, removed = [], [], [], []
    for stage in stages:
        if stage.count_a == 0:
            added.append(stage)
            if stage.total_b_s > min_delta_s:
                regressions.append(stage)
            continue
        if stage.count_b == 0:
            removed.append(stage)
            continue
        grew = stage.delta_s > min_delta_s and (
            stage.total_b_s > stage.total_a_s * (1.0 + threshold)
        )
        shrank = -stage.delta_s > min_delta_s and (
            stage.total_b_s < stage.total_a_s * (1.0 - min(threshold, 0.999))
        )
        if grew:
            regressions.append(stage)
        elif shrank:
            improvements.append(stage)
    return TraceDiff(
        stages=stages,
        regressions=regressions,
        improvements=improvements,
        added=added,
        removed=removed,
        threshold=threshold,
        min_delta_s=min_delta_s,
        warnings=warnings,
    )


def _fmt_ratio(stage: StageDelta) -> str:
    ratio = stage.ratio
    if ratio is None:
        return "new" if stage.count_a == 0 else "-"
    return f"{ratio:.2f}x"


def render_diff(diff: TraceDiff) -> str:
    """The ``repro trace diff`` report."""
    from repro.metrics.report import format_table

    if not diff.stages:
        return "both traces contain no spans"
    flags = {id(s): "" for s in diff.stages}
    for s in diff.regressions:
        flags[id(s)] = "REGRESSION"
    for s in diff.improvements:
        flags[id(s)] = "improved"
    for s in diff.removed:
        flags[id(s)] = "removed"
    rows = [
        (
            s.path,
            f"{s.total_a_s * 1000:.2f}",
            f"{s.total_b_s * 1000:.2f}",
            f"{s.delta_s * 1000:+.2f}",
            _fmt_ratio(s),
            f"{s.count_a}->{s.count_b}" if s.count_a != s.count_b else s.count_a,
            flags[id(s)],
        )
        for s in diff.stages
    ]
    lines = [
        format_table(
            ["path", "A ms", "B ms", "delta ms", "ratio", "count", ""],
            rows,
            title=(
                f"Trace diff (threshold {diff.threshold * 100:.0f}%, "
                f"noise floor {diff.min_delta_s * 1000:.2f}ms)"
            ),
        )
    ]
    for warning in diff.warnings:
        lines.append(f"warning: {warning}")
    lines.append(
        f"{len(diff.regressions)} regression(s), "
        f"{len(diff.improvements)} improvement(s), "
        f"{len(diff.added)} added, {len(diff.removed)} removed"
    )
    return "\n".join(lines)
