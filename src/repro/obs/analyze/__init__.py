"""repro.obs.analyze — the read side of the observability stack.

PR 2 built the capture side (:mod:`repro.obs`: spans, metrics, decision
events streamed to NDJSON); this package turns the captured artifacts
into comparable, versioned answers:

* :mod:`~repro.obs.analyze.critical_path` — dominant-path walk of a
  span tree with per-span self-time vs. child-time;
* :mod:`~repro.obs.analyze.diff` — align two traces by span path and
  report per-stage wall-time / count deltas with a noise threshold,
  refusing to compare incomparable runs (provenance check);
* :mod:`~repro.obs.analyze.export` — Chrome trace-event JSON (loadable
  in Perfetto / ``chrome://tracing``) and collapsed-stack output for
  flamegraph tooling;
* :mod:`~repro.obs.analyze.digest` — aggregate ``repro.exec`` decision
  events into per-batch and per-shard run-health tables;
* :mod:`~repro.obs.analyze.bench` — benchmark history and the
  baseline-vs-latest regression gate behind ``repro bench check``.

Everything consumes the plain event dicts returned by
:func:`repro.obs.load_ndjson` / :meth:`repro.obs.Recorder.events`, so
the analyses run identically on live recorders and on files.
"""

from repro.obs.analyze.bench import (
    BenchCheck,
    BenchFinding,
    append_history,
    check_bench,
    load_baseline,
    render_bench_check,
    write_baseline,
)
from repro.obs.analyze.critical_path import (
    CriticalPathStep,
    critical_path,
    render_critical_path,
    span_tree,
)
from repro.obs.analyze.diff import (
    StageDelta,
    TraceDiff,
    comparability_problems,
    diff_traces,
    render_diff,
    span_path_stats,
)
from repro.obs.analyze.digest import (
    BatchHealth,
    ExecDigest,
    ShardLane,
    digest_exec_events,
    render_digest,
)
from repro.obs.analyze.export import (
    to_chrome_trace,
    to_collapsed_stacks,
)

__all__ = [
    "BatchHealth",
    "BenchCheck",
    "BenchFinding",
    "CriticalPathStep",
    "ExecDigest",
    "ShardLane",
    "StageDelta",
    "TraceDiff",
    "append_history",
    "check_bench",
    "comparability_problems",
    "critical_path",
    "diff_traces",
    "digest_exec_events",
    "load_baseline",
    "render_digest",
    "render_bench_check",
    "render_critical_path",
    "render_diff",
    "span_path_stats",
    "span_tree",
    "to_chrome_trace",
    "to_collapsed_stacks",
    "write_baseline",
]
