"""Critical-path analysis of a span tree.

Answers "where did the wall time actually go?" for one recorded run:
starting from the longest root span, repeatedly descend into the child
that consumed the most wall time.  Each step reports the span's total
duration, its **self time** (total minus the sum of its children — the
time the stage spent in its own code) and its child time, so a stage
that is slow *itself* is distinguishable from a stage that merely
contains a slow callee.

Consumes the event dicts of :func:`repro.obs.load_ndjson`; still-open
spans (``t_end`` null) count as zero duration, and spans whose parent
sid is missing from the trace (truncated files) are treated as roots.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CriticalPathStep:
    """One span on the dominant path, root first."""

    sid: int | None
    name: str
    depth: int
    total_s: float
    self_s: float
    child_s: float
    #: Fraction of the path root's total duration (1.0 for the root;
    #: 0.0 when the root itself has zero duration).
    share_of_root: float
    #: How many sibling spans competed at this step (including this one).
    siblings: int


def _spans(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("type") == "span"]


def _dur(span: dict) -> float:
    return span.get("dur_s") or 0.0


def span_tree(events: list[dict]) -> tuple[list[dict], dict]:
    """(roots, children-by-sid) for a trace's span records.

    Children lists are sorted by start time; spans referencing a parent
    sid absent from the trace are promoted to roots.
    """
    spans = sorted(_spans(events), key=lambda s: s.get("t_start") or 0.0)
    known = {s.get("sid") for s in spans}
    roots: list[dict] = []
    children: dict = {}
    for span in spans:
        parent = span.get("parent")
        if parent is None or parent not in known:
            roots.append(span)
        else:
            children.setdefault(parent, []).append(span)
    return roots, children


def critical_path(events: list[dict]) -> list[CriticalPathStep]:
    """The dominant path, root first (empty list for a span-less trace).

    The root is the longest root span; at every level the walk follows
    the child with the largest duration (ties broken by start order).
    """
    roots, children = span_tree(events)
    if not roots:
        return []
    root = max(roots, key=_dur)
    root_total = _dur(root)
    path: list[CriticalPathStep] = []
    node, siblings, depth = root, len(roots), 0
    while node is not None:
        kids = children.get(node.get("sid"), [])
        child_s = sum(_dur(k) for k in kids)
        total = _dur(node)
        path.append(
            CriticalPathStep(
                sid=node.get("sid"),
                name=node.get("name") or "?",
                depth=depth,
                total_s=total,
                self_s=max(total - child_s, 0.0),
                child_s=child_s,
                share_of_root=(total / root_total) if root_total > 0 else 0.0,
                siblings=siblings,
            )
        )
        if not kids:
            break
        node = max(kids, key=_dur)
        siblings = len(kids)
        depth += 1
    return path


def render_critical_path(events: list[dict]) -> str:
    """The ``repro trace critical-path`` report."""
    from repro.metrics.report import format_table

    if not events:
        return "trace is empty (no events)"
    path = critical_path(events)
    if not path:
        return "trace contains no spans"
    rows = [
        (
            "  " * step.depth + step.name,
            f"{step.total_s * 1000:.2f}",
            f"{step.self_s * 1000:.2f}",
            f"{step.child_s * 1000:.2f}",
            f"{step.share_of_root * 100:.1f}%",
            step.siblings,
        )
        for step in path
    ]
    table = format_table(
        ["span", "total ms", "self ms", "child ms", "of root", "siblings"],
        rows,
        title="Critical path (dominant child at every level)",
    )
    hottest = max(path, key=lambda s: s.self_s)
    summary = (
        f"hottest self-time: {hottest.name} "
        f"({hottest.self_s * 1000:.2f}ms, "
        f"{hottest.self_s / path[0].total_s * 100:.1f}% of root)"
        if path[0].total_s > 0
        else "root span has zero recorded duration"
    )
    return table + "\n\n" + summary
