"""Trace exporters: Chrome trace-event JSON and collapsed flamegraph stacks.

Two lingua-franca formats so repro traces plug into standard tooling:

* **Chrome trace-event JSON** (``--format chrome``) — loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans
  become complete (``"ph": "X"``) events with microsecond timestamps;
  decision events become instant (``"ph": "i"``) events pinned to their
  owning span's start, with category/action/reason in ``args``.
* **Collapsed stacks** (``--format collapsed``) — Brendan Gregg's
  ``flamegraph.pl`` / speedscope input: one ``root;child;leaf value``
  line per distinct span stack, where the value is the stack's **self
  time** in integer microseconds.  Self time (not total) keeps the
  flamegraph's invariant that a frame's width equals its samples.

Traces recorded with ``--profile`` additionally carry sampled-stack
``profile`` events: the collapsed export emits them under a separate
``profile`` root (one line per sampled Python stack, weighted by
``count / hz`` in microseconds) so the span flamegraph's width
invariant is preserved, and the Chrome export renders the resource
time series as counter (``"ph": "C"``) tracks.
"""

from __future__ import annotations

from repro.obs.analyze.critical_path import span_tree
from repro.obs.ndjson import trace_meta

_US = 1_000_000.0


def _spans(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("type") == "span"]


def to_chrome_trace(events: list[dict]) -> dict:
    """A Chrome trace-event document (``json.dump`` it to a file)."""
    spans_by_sid = {s.get("sid"): s for s in _spans(events)}
    trace_events: list[dict] = []
    for span in _spans(events):
        t_start = span.get("t_start") or 0.0
        open_span = span.get("t_end") is None
        dur_s = 0.0 if open_span else (span.get("dur_s") or 0.0)
        record = {
            "name": span.get("name") or "?",
            "cat": "span",
            "ph": "X",
            "ts": t_start * _US,
            "dur": dur_s * _US,
            "pid": 1,
            "tid": 1,
        }
        args = dict(span.get("attrs") or {})
        if open_span:
            args["open"] = True
        if args:
            record["args"] = args
        trace_events.append(record)
    for event in events:
        if event.get("type") != "decision":
            continue
        owner = spans_by_sid.get(event.get("span"))
        ts = (owner.get("t_start") or 0.0) if owner else 0.0
        trace_events.append(
            {
                "name": f"{event.get('category', '?')}.{event.get('action', '?')}",
                "cat": "decision",
                "ph": "i",
                "ts": ts * _US,
                "s": "t",
                "pid": 1,
                "tid": 1,
                "args": {
                    "subject": event.get("subject", ""),
                    "reason": event.get("reason", ""),
                    **(event.get("attrs") or {}),
                },
            }
        )
    for event in events:
        if event.get("type") != "profile":
            continue
        kind = event.get("kind")
        if kind == "resource":
            trace_events.append({
                "name": "process.rss",
                "cat": "profile",
                "ph": "C",
                "ts": (event.get("t") or 0.0) * _US,
                "pid": 1,
                "tid": 1,
                "args": {"rss_bytes": event.get("rss_bytes", 0)},
            })
            trace_events.append({
                "name": "process.cpu",
                "cat": "profile",
                "ph": "C",
                "ts": (event.get("t") or 0.0) * _US,
                "pid": 1,
                "tid": 1,
                "args": {
                    "user_s": event.get("cpu_user_s", 0.0),
                    "sys_s": event.get("cpu_sys_s", 0.0),
                },
            })
        elif kind == "resource_summary":
            shard = event.get("shard")
            name = (
                "profile.resources"
                if shard is None
                else f"profile.resources.shard{shard}"
            )
            trace_events.append({
                "name": name,
                "cat": "profile",
                "ph": "i",
                "ts": 0.0,
                "s": "g",
                "pid": 1,
                "tid": 1,
                "args": {
                    k: v for k, v in event.items()
                    if k not in ("type", "kind")
                },
            })
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    meta = trace_meta(events)
    if meta is not None and meta.get("provenance"):
        document["otherData"] = meta["provenance"]
    return document


def to_collapsed_stacks(events: list[dict]) -> str:
    """Collapsed-stack text (``flamegraph.pl`` input), sorted by stack.

    Stacks with zero integer-microsecond self time are dropped — they
    would render as zero-width frames anyway.
    """
    roots, children = span_tree(events)
    totals: dict[str, int] = {}

    def visit(span: dict, prefix: str) -> None:
        name = (span.get("name") or "?").replace(";", ",")
        stack = f"{prefix};{name}" if prefix else name
        kids = children.get(span.get("sid"), ())
        child_s = sum(k.get("dur_s") or 0.0 for k in kids)
        self_s = max((span.get("dur_s") or 0.0) - child_s, 0.0)
        self_us = int(round(self_s * _US))
        if self_us > 0:
            totals[stack] = totals.get(stack, 0) + self_us
        for child in kids:
            visit(child, stack)

    for root in roots:
        visit(root, "")
    # Sampled Python stacks from profile events land under their own
    # ``profile`` root, weighted by sample count / rate, so they never
    # distort the span tree's width invariant above.
    span_names = {
        s.get("sid"): (s.get("name") or "?").replace(";", ",")
        for s in _spans(events)
    }
    for event in events:
        if event.get("type") != "profile" or event.get("kind") != "stacks":
            continue
        hz = float(event.get("hz") or 0.0)
        if hz <= 0:
            continue
        owner = event.get("span")
        owner_name = (
            span_names.get(owner, f"sid{owner}")
            if owner is not None
            else "unattributed"
        )
        for stack, count in (event.get("stacks") or {}).items():
            value = int(round(int(count) * _US / hz))
            if value <= 0:
                continue
            key = f"profile;{owner_name};{stack}"
            totals[key] = totals.get(key, 0) + value
    return "\n".join(f"{stack} {value}" for stack, value in sorted(totals.items()))
