"""Trace exporters: Chrome trace-event JSON and collapsed flamegraph stacks.

Two lingua-franca formats so repro traces plug into standard tooling:

* **Chrome trace-event JSON** (``--format chrome``) — loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans
  become complete (``"ph": "X"``) events with microsecond timestamps;
  decision events become instant (``"ph": "i"``) events pinned to their
  owning span's start, with category/action/reason in ``args``.
* **Collapsed stacks** (``--format collapsed``) — Brendan Gregg's
  ``flamegraph.pl`` / speedscope input: one ``root;child;leaf value``
  line per distinct span stack, where the value is the stack's **self
  time** in integer microseconds.  Self time (not total) keeps the
  flamegraph's invariant that a frame's width equals its samples.
"""

from __future__ import annotations

from repro.obs.analyze.critical_path import span_tree
from repro.obs.ndjson import trace_meta

_US = 1_000_000.0


def _spans(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("type") == "span"]


def to_chrome_trace(events: list[dict]) -> dict:
    """A Chrome trace-event document (``json.dump`` it to a file)."""
    spans_by_sid = {s.get("sid"): s for s in _spans(events)}
    trace_events: list[dict] = []
    for span in _spans(events):
        t_start = span.get("t_start") or 0.0
        open_span = span.get("t_end") is None
        dur_s = 0.0 if open_span else (span.get("dur_s") or 0.0)
        record = {
            "name": span.get("name") or "?",
            "cat": "span",
            "ph": "X",
            "ts": t_start * _US,
            "dur": dur_s * _US,
            "pid": 1,
            "tid": 1,
        }
        args = dict(span.get("attrs") or {})
        if open_span:
            args["open"] = True
        if args:
            record["args"] = args
        trace_events.append(record)
    for event in events:
        if event.get("type") != "decision":
            continue
        owner = spans_by_sid.get(event.get("span"))
        ts = (owner.get("t_start") or 0.0) if owner else 0.0
        trace_events.append(
            {
                "name": f"{event.get('category', '?')}.{event.get('action', '?')}",
                "cat": "decision",
                "ph": "i",
                "ts": ts * _US,
                "s": "t",
                "pid": 1,
                "tid": 1,
                "args": {
                    "subject": event.get("subject", ""),
                    "reason": event.get("reason", ""),
                    **(event.get("attrs") or {}),
                },
            }
        )
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    meta = trace_meta(events)
    if meta is not None and meta.get("provenance"):
        document["otherData"] = meta["provenance"]
    return document


def to_collapsed_stacks(events: list[dict]) -> str:
    """Collapsed-stack text (``flamegraph.pl`` input), sorted by stack.

    Stacks with zero integer-microsecond self time are dropped — they
    would render as zero-width frames anyway.
    """
    roots, children = span_tree(events)
    totals: dict[str, int] = {}

    def visit(span: dict, prefix: str) -> None:
        name = (span.get("name") or "?").replace(";", ",")
        stack = f"{prefix};{name}" if prefix else name
        kids = children.get(span.get("sid"), ())
        child_s = sum(k.get("dur_s") or 0.0 for k in kids)
        self_s = max((span.get("dur_s") or 0.0) - child_s, 0.0)
        self_us = int(round(self_s * _US))
        if self_us > 0:
            totals[stack] = totals.get(stack, 0) + self_us
        for child in kids:
            visit(child, stack)

    for root in roots:
        visit(root, "")
    return "\n".join(f"{stack} {value}" for stack, value in sorted(totals.items()))
