"""Run provenance: who produced a trace or benchmark entry, on what.

The paper's §7 point — measured parameters are only meaningful when you
know *what* was measured — applies to our own artifacts too.  Every
trace meta line (format version 2) and every ``BENCH_history.ndjson``
entry carries a provenance block so the analysis layer
(:mod:`repro.obs.analyze`) can refuse to compare incomparable runs.

All collection is best-effort and dependency-free: outside a git
checkout ``git_sha`` is ``None``, never an exception.
"""

from __future__ import annotations

import functools
import hashlib
import os
import platform
import subprocess


@functools.lru_cache(maxsize=1)
def git_sha() -> str | None:
    """The current commit sha, or ``None`` when unavailable.

    Prefers the ``GITHUB_SHA`` env var (set by Actions even on shallow
    checkouts), then asks ``git rev-parse``; cached because traces may
    be written many times per process.
    """
    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def machine_fingerprint() -> str:
    """A short stable id for "this kind of machine".

    Benchmarks recorded on different machines are not comparable at
    tight tolerances; the fingerprint (platform + machine + python
    implementation + cpu count) lets ``repro bench check`` and the
    history file tell apart same-machine reruns from cross-machine ones.
    """
    raw = "|".join(
        (
            platform.system(),
            platform.machine(),
            platform.python_implementation(),
            str(os.cpu_count() or 0),
        )
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:12]


def collect_provenance(workload: str | None = None) -> dict:
    """The provenance block written into trace meta lines.

    Keys: ``repro_version``, ``python``, ``machine`` (fingerprint),
    ``git_sha`` (may be ``None``), and ``workload`` when one was named.
    """
    from repro import __version__

    prov = {
        "repro_version": __version__,
        "python": platform.python_version(),
        "machine": machine_fingerprint(),
        "git_sha": git_sha(),
    }
    if workload is not None:
        prov["workload"] = workload
    return prov
