"""NDJSON (newline-delimited JSON) trace I/O and validation.

A trace file is one JSON object per line: a leading ``meta`` record,
then ``span`` and ``decision`` records in completion order (see
``docs/OBSERVABILITY.md`` for the schema).  The loader is strict — any
malformed line raises :class:`~repro.errors.ObservabilityError` with the
line number — and :func:`validate_trace` performs the structural checks
the CI gate runs over emitted traces.
"""

from __future__ import annotations

import json

from repro.errors import ObservabilityError

_SPAN_KEYS = {"sid", "parent", "name", "depth", "t_start", "t_end", "dur_s"}
_DECISION_KEYS = {"seq", "category", "action", "subject", "reason", "span"}

#: Record types this version of the tooling understands.  Anything else
#: is *tolerated* by validation and merely counted (forward
#: compatibility: older tools must survive traces from newer writers).
_KNOWN_KINDS = {"meta", "span", "decision", "profile"}


def dump_ndjson(events, path_or_file) -> None:
    """Write ``events`` (dicts) as NDJSON to a path or open file."""
    if hasattr(path_or_file, "write"):
        _write(events, path_or_file)
        return
    try:
        with open(path_or_file, "w") as handle:
            _write(events, handle)
    except OSError as exc:
        raise ObservabilityError(
            f"cannot write trace file {path_or_file!r}: {exc}"
        ) from exc


def _write(events, handle) -> None:
    for event in events:
        handle.write(json.dumps(event, separators=(",", ":")) + "\n")


def load_ndjson(path_or_file) -> list[dict]:
    """Parse an NDJSON file into a list of dicts (blank lines skipped)."""
    if hasattr(path_or_file, "read"):
        return _parse(path_or_file, getattr(path_or_file, "name", "<stream>"))
    try:
        with open(path_or_file) as handle:
            return _parse(handle, str(path_or_file))
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read trace file {path_or_file!r}: {exc}"
        ) from exc


def _parse(handle, label: str) -> list[dict]:
    events: list[dict] = []
    for lineno, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{label}:{lineno}: malformed NDJSON line: {exc}"
            ) from exc
        if not isinstance(event, dict):
            raise ObservabilityError(
                f"{label}:{lineno}: NDJSON line is not a JSON object"
            )
        events.append(event)
    return events


#: Provenance keys a version-2 meta line must carry (workload and
#: git_sha are optional: not every run names a workload or has git).
_PROVENANCE_KEYS = {"repro_version", "python", "machine"}


def trace_meta(events: list[dict]) -> dict | None:
    """The trace's leading ``meta`` record, or ``None`` when absent."""
    for event in events:
        if event.get("type") == "meta":
            return event
        break
    return None


def validate_trace(events: list[dict]) -> list[str]:
    """Structural problems of a parsed trace (empty list = valid).

    Checks: every known record ``type`` carries its required keys, span
    parents reference emitted sids, closed spans have
    ``t_end >= t_start``, and version-2 meta lines carry a provenance
    block (version-1 traces, which predate provenance, stay valid).
    Records with *unknown* types are tolerated — count them with
    :func:`unknown_kind_counts` — so this tooling survives traces
    written by newer versions that add event kinds.
    """
    problems: list[str] = []
    sids: set[int] = set()
    for i, event in enumerate(events):
        kind = event.get("type")
        if kind == "span":
            sids.add(event.get("sid", -1))
    for i, event in enumerate(events):
        where = f"event {i}"
        kind = event.get("type")
        if kind == "meta":
            if event.get("format") != "repro-trace":
                problems.append(f"{where}: meta record has no repro-trace format tag")
            version = event.get("version")
            if not isinstance(version, int) or version < 1:
                problems.append(f"{where}: meta record has no format version")
            elif version >= 2:
                provenance = event.get("provenance")
                if not isinstance(provenance, dict):
                    problems.append(
                        f"{where}: v{version} meta record has no provenance block"
                    )
                else:
                    missing = _PROVENANCE_KEYS - set(provenance)
                    if missing:
                        problems.append(
                            f"{where}: provenance missing keys {sorted(missing)}"
                        )
            continue
        if kind == "span":
            missing = _SPAN_KEYS - set(event)
            if missing:
                problems.append(f"{where}: span missing keys {sorted(missing)}")
                continue
            parent = event["parent"]
            if parent is not None and parent not in sids:
                problems.append(
                    f"{where}: span {event['sid']} has unknown parent {parent}"
                )
            if event["t_end"] is not None and event["t_end"] < event["t_start"]:
                problems.append(f"{where}: span {event['sid']} ends before it starts")
            attrs = event.get("attrs") or {}
            if attrs.get("remote") and event["t_end"] is None:
                # Merged distributed traces must close every worker span:
                # the supervisor's graft closes even spans the worker died
                # inside, so an open remote span means a broken merge.
                problems.append(
                    f"{where}: remote span {event['sid']} never closed"
                )
            continue
        if kind == "decision":
            missing = _DECISION_KEYS - set(event)
            if missing:
                problems.append(f"{where}: decision missing keys {sorted(missing)}")
            continue
        if kind == "profile":
            if "kind" not in event:
                problems.append(f"{where}: profile record has no kind")
            else:
                owner = event.get("span")
                if owner is not None and owner not in sids:
                    problems.append(
                        f"{where}: profile record references unknown span {owner}"
                    )
            continue
        # Unknown kinds are tolerated, not errors (forward compatibility).
    return problems


def unknown_kind_counts(events: list[dict]) -> dict[str, int]:
    """Count records whose ``type`` this tooling does not understand.

    Keys are the unknown type strings (``"<missing>"`` for records with
    no ``type`` at all); traces from newer writers report here instead
    of failing validation.
    """
    counts: dict[str, int] = {}
    for event in events:
        kind = event.get("type")
        if kind in _KNOWN_KINDS:
            continue
        label = kind if isinstance(kind, str) else "<missing>"
        counts[label] = counts.get(label, 0) + 1
    return counts
