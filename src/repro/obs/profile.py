"""Sampling stack profiler and process-resource telemetry.

The trace layer (PR 2/4/7) shows *where time goes* — spans, critical
paths, flamegraphs — but nothing about what the process is doing to the
machine.  This module adds that second axis with two cooperating parts:

* :class:`StackProfiler` — a background thread that samples the owner
  thread's Python stack via ``sys._current_frames()`` at a configurable
  rate, aggregates **collapsed stacks** (``root;child;leaf`` strings)
  and attributes each sample to the innermost open span of the ambient
  recorder.  Drained samples become ``profile`` events (kind
  ``stacks``) in the trace-v2 stream, exportable through the existing
  collapsed-stack / Perfetto exporters and summarized by
  ``repro profile report``.

* :class:`ResourceProbe` — passive process-resource accounting: RSS
  from ``/proc/self/statm`` (``resource.getrusage`` fallback),
  user/sys CPU time from ``os.times()``, GC collection counts and
  pause time via ``gc.callbacks``, and the open-fd count.  The probe
  feeds process-level gauges into the metrics registry, emits a
  throttled ``resource`` time series, and — installed on a
  :class:`~repro.obs.recorder.Recorder` — stamps per-span deltas
  (``cpu_s``, ``rss_peak_delta``) at span close.

:class:`Profiler` bundles both for one session (the ``--profile [HZ]``
CLI flag, or a shard worker's lease — see
:class:`~repro.obs.telemetry.LeaseTelemetry`).  Profiling follows the
same two disciplines as the rest of ``repro.obs``:

* **zero-cost when disabled** — no background thread, no
  ``gc.callbacks`` entry, and no per-span work unless a profiler was
  explicitly started (``Recorder._resource_probe`` stays ``None``);
* **result-transparent** — sampling reads process state, never touches
  payloads, seeds, or checkpoint fingerprints; a profiled campaign is
  bit-identical to an unprofiled one (enforced by the
  ``identical_profiled`` / ``max_profile_overhead`` bench gates).
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time

from repro.errors import ObservabilityError

#: Default sampling rate for ``--profile``.  A prime just under 100 Hz
#: so the sampler cannot phase-lock with periodic work (the same reason
#: ``perf`` defaults to 99 Hz).
DEFAULT_PROFILE_HZ = 97.0

#: Resource time-series cadence (seconds) — independent of the stack
#: rate so a fast sampler does not flood the trace with RSS lines.
RESOURCE_INTERVAL_S = 0.1

#: Stack frames kept per sample; deeper stacks are truncated at the root.
MAX_STACK_DEPTH = 64

try:
    _PAGE_BYTES = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover
    _PAGE_BYTES = 4096


def read_rss_bytes() -> int:
    """Current resident set size in bytes.

    Reads ``/proc/self/statm`` (field 2 is resident pages); platforms
    without procfs fall back to ``resource.getrusage`` — whose
    ``ru_maxrss`` is the *peak*, not the current, RSS, which is the
    right conservative answer for peak tracking.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_BYTES
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports kilobytes; macOS reports bytes.
        return int(kb) * (1 if sys.platform == "darwin" else 1024)
    except Exception:  # pragma: no cover - no resource module at all
        return 0


def cpu_seconds() -> tuple[float, float]:
    """(user, system) CPU seconds consumed by this process."""
    times = os.times()
    return times.user, times.system


def open_fd_count() -> int | None:
    """Open file descriptors, or ``None`` where /proc is unavailable."""
    try:
        # listdir itself holds one fd while counting; don't count it.
        return max(0, len(os.listdir("/proc/self/fd")) - 1)
    except OSError:
        return None


def collapse_frame(frame, max_depth: int = MAX_STACK_DEPTH) -> str:
    """One ``root;child;leaf`` collapsed-stack string for a live frame."""
    parts: list[str] = []
    while frame is not None and len(parts) < max_depth:
        code = frame.f_code
        name = f"{os.path.basename(code.co_filename)}:{code.co_name}"
        parts.append(name.replace(";", ","))
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


# ----------------------------------------------------------------------
# Resource accounting
# ----------------------------------------------------------------------
class ResourceProbe:
    """Process resource truth: RSS peaks, CPU time, GC, per-span deltas.

    The probe itself is passive — :meth:`sample` is ticked by the
    profiler thread (and once at stop), so attaching it costs nothing
    between ticks.  Installed on a recorder (``recorder._resource_probe``)
    it additionally tracks every open span's running RSS peak and stamps
    ``cpu_s`` / ``rss_peak_delta`` attrs when the span closes.
    """

    def __init__(self, registry=None) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        # id(span) -> [rss_at_open, running_rss_peak, cpu_at_open]
        self._tokens: dict[int, list] = {}
        self._last_rss = 0
        self.rss_peak = 0
        self.gc_collections = 0
        self.gc_pause_s = 0.0
        self._gc_t0: float | None = None
        self._installed = False

    # GC hooks ----------------------------------------------------------
    def install(self) -> None:
        """Register the GC callback (idempotent)."""
        if self._installed:
            return
        self._installed = True
        gc.callbacks.append(self._on_gc)

    def uninstall(self) -> None:
        if not self._installed:
            return
        self._installed = False
        try:
            gc.callbacks.remove(self._on_gc)
        except ValueError:  # pragma: no cover - already gone
            pass

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_t0 = time.perf_counter()
        elif phase == "stop":
            self.gc_collections += 1
            if self._gc_t0 is not None:
                self.gc_pause_s += time.perf_counter() - self._gc_t0
                self._gc_t0 = None

    # Sampling ----------------------------------------------------------
    def note_rss(self, rss: int) -> None:
        """Fold one RSS reading into the process and per-span peaks."""
        self._last_rss = rss
        if rss > self.rss_peak:
            self.rss_peak = rss
        with self._lock:
            for token in self._tokens.values():
                if rss > token[1]:
                    token[1] = rss

    def sample(self) -> dict:
        """Read RSS/CPU/fds once; update peaks and registry gauges."""
        rss = read_rss_bytes()
        self.note_rss(rss)
        user, system = cpu_seconds()
        fds = open_fd_count()
        record = {
            "rss_bytes": rss,
            "cpu_user_s": round(user, 6),
            "cpu_sys_s": round(system, 6),
        }
        if fds is not None:
            record["open_fds"] = fds
        if self._registry is not None:
            self._registry.gauge("process_resident_memory_bytes").set(rss)
            self._registry.gauge("process_cpu_seconds_total").set(
                round(user + system, 6)
            )
            if fds is not None:
                self._registry.gauge("process_open_fds").set(fds)
        return record

    # Per-span deltas (called by Recorder when installed) ---------------
    def open_span(self, span) -> None:
        rss = self._last_rss or read_rss_bytes()
        user, system = cpu_seconds()
        with self._lock:
            self._tokens[id(span)] = [rss, rss, user + system]

    def close_span(self, span) -> None:
        with self._lock:
            token = self._tokens.pop(id(span), None)
        if token is None:
            return
        rss0, peak, cpu0 = token
        peak = max(peak, self._last_rss)
        user, system = cpu_seconds()
        span.attrs["cpu_s"] = round(max(0.0, user + system - cpu0), 6)
        span.attrs["rss_peak_delta"] = int(max(0, peak - rss0))


# ----------------------------------------------------------------------
# Stack sampling
# ----------------------------------------------------------------------
class StackProfiler:
    """Samples one owner thread's stack from a daemon thread.

    The sampler never touches the owner thread: it reads the frame
    object out of ``sys._current_frames()`` and the ambient span sid out
    of the recorder's stack race-tolerantly (a torn read mis-attributes
    one sample; it cannot corrupt anything).  Aggregation is
    ``(span sid, collapsed stack) -> count``; :meth:`drain` converts the
    aggregate into ``profile`` events and resets it, so callers flushing
    incrementally (shard workers) have already shipped everything but
    the current window if the process dies.
    """

    def __init__(
        self,
        recorder=None,
        hz: float = DEFAULT_PROFILE_HZ,
        probe: ResourceProbe | None = None,
        max_depth: int = MAX_STACK_DEPTH,
    ) -> None:
        hz = float(hz)
        if not hz > 0:
            raise ObservabilityError(
                f"profile rate must be > 0 Hz, got {hz}"
            )
        self.hz = hz
        self._recorder = recorder
        self._probe = probe
        self._max_depth = max_depth
        self._owner = threading.get_ident()
        self._epoch = getattr(recorder, "_epoch", None)
        if self._epoch is None:
            self._epoch = time.perf_counter()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._agg: dict[tuple[int | None, str], int] = {}
        self._resources: list[dict] = []
        self.samples = 0

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "StackProfiler":
        """Start sampling the *calling* thread."""
        if self._thread is not None:
            return self
        self._owner = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def _ambient_sid(self) -> int | None:
        stack = getattr(self._recorder, "_stack", None)
        if not stack:
            return None
        try:
            return stack[-1].sid
        except IndexError:  # raced the owner popping the last span
            return None

    def _run(self) -> None:
        interval = 1.0 / self.hz
        last_resource = 0.0
        while not self._stop.wait(interval):
            frame = sys._current_frames().get(self._owner)
            if frame is not None:
                stack = collapse_frame(frame, self._max_depth)
                sid = self._ambient_sid()
                with self._lock:
                    key = (sid, stack)
                    self._agg[key] = self._agg.get(key, 0) + 1
                    self.samples += 1
            now = time.perf_counter()
            if (
                self._probe is not None
                and now - last_resource >= RESOURCE_INTERVAL_S
            ):
                last_resource = now
                record = self._probe.sample()
                event = {
                    "type": "profile",
                    "kind": "resource",
                    "t": round(now - self._epoch, 6),
                }
                event.update(record)
                with self._lock:
                    self._resources.append(event)

    def drain(self) -> list[dict]:
        """Convert and reset the sample aggregate: ``profile`` events.

        One ``stacks`` event per attributed span (``span: null`` for
        samples landing outside any span), then the buffered
        ``resource`` time series, in capture order.
        """
        with self._lock:
            agg, self._agg = self._agg, {}
            resources, self._resources = self._resources, []
        by_sid: dict[int | None, dict[str, int]] = {}
        for (sid, stack), count in agg.items():
            by_sid.setdefault(sid, {})[stack] = count
        events: list[dict] = []
        for sid in sorted(by_sid, key=lambda s: (s is None, s or 0)):
            stacks = by_sid[sid]
            events.append({
                "type": "profile",
                "kind": "stacks",
                "span": sid,
                "hz": self.hz,
                "samples": sum(stacks.values()),
                "stacks": dict(sorted(stacks.items())),
            })
        events.extend(resources)
        return events


# ----------------------------------------------------------------------
# The profiling session
# ----------------------------------------------------------------------
class Profiler:
    """One profiling session: stack sampler + resource probe, bundled.

    ``start()`` installs the probe on the recorder (per-span deltas),
    registers the GC callback, and launches the sampling thread;
    ``stop()`` tears everything down and returns the final drained
    events plus a ``resource_summary``.  As a context manager the final
    events are appended to the recorder (``profile_event``), ready for
    ``write_trace``; shard workers instead call :meth:`drain` /
    :meth:`stop` directly and ship the events over the telemetry
    transport (see :class:`~repro.obs.telemetry.LeaseTelemetry`).
    """

    def __init__(
        self,
        recorder,
        hz: float = DEFAULT_PROFILE_HZ,
        shard: int | None = None,
    ) -> None:
        self.recorder = recorder
        self.hz = float(hz)
        self.shard = shard
        self.probe = ResourceProbe(
            registry=getattr(recorder, "metrics", None)
        )
        self.sampler = StackProfiler(recorder, hz=self.hz, probe=self.probe)
        self._started = False

    def start(self) -> "Profiler":
        if self._started:
            return self
        self._started = True
        self.probe.install()
        self.probe.sample()
        if getattr(self.recorder, "enabled", False):
            self.recorder._resource_probe = self.probe
        self.sampler.start()
        return self

    def drain(self) -> list[dict]:
        """Profile events accumulated since the last drain (shard-tagged)."""
        events = self.sampler.drain()
        if self.shard is not None:
            for event in events:
                event["shard"] = self.shard
        return events

    def summary(self) -> dict:
        """The cumulative ``resource_summary`` event for this process."""
        user, system = cpu_seconds()
        event = {
            "type": "profile",
            "kind": "resource_summary",
            "pid": os.getpid(),
            "hz": self.hz,
            "samples": self.sampler.samples,
            "rss_peak_bytes": int(self.probe.rss_peak),
            "cpu_user_s": round(user, 6),
            "cpu_sys_s": round(system, 6),
            "cpu_s": round(user + system, 6),
            "gc_collections": self.probe.gc_collections,
            "gc_pause_s": round(self.probe.gc_pause_s, 6),
        }
        if self.shard is not None:
            event["shard"] = self.shard
        return event

    def stop(self) -> list[dict]:
        """Stop sampling; the remaining events plus the final summary."""
        if not self._started:
            return []
        self._started = False
        self.sampler.stop()
        self.probe.sample()  # final peak/CPU reading
        self.probe.uninstall()
        if getattr(self.recorder, "_resource_probe", None) is self.probe:
            self.recorder._resource_probe = None
        events = self.drain()
        events.append(self.summary())
        return events

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        events = self.stop()
        if getattr(self.recorder, "enabled", False):
            for event in events:
                self.recorder.profile_event(event)
        return False


# ----------------------------------------------------------------------
# Process-level metrics (Prometheus exposition)
# ----------------------------------------------------------------------
def process_metrics_snapshot() -> dict:
    """A ``repro-metrics`` snapshot of the standard process gauges.

    ``repro metrics export --format prom`` merges this into whatever
    campaign snapshot it is rendering (without overriding same-named
    campaign series), so scrapers always see process truth — even when
    no campaign metrics exist at all.
    """
    rss = read_rss_bytes()
    user, system = cpu_seconds()
    fds = open_fd_count()
    metrics: dict = {
        "process_cpu_seconds_total": {
            "type": "counter",
            "series": {"": round(user + system, 6)},
        },
        "process_resident_memory_bytes": {
            "type": "gauge",
            "series": {"": float(rss)},
        },
    }
    if fds is not None:
        metrics["process_open_fds"] = {
            "type": "gauge",
            "series": {"": float(fds)},
        }
    return {"format": "repro-metrics", "version": 1, "metrics": metrics}


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def profile_events(events: list[dict]) -> list[dict]:
    """The ``profile`` records of a trace, in stream order."""
    return [e for e in events if e.get("type") == "profile"]


def _shard_label(shard) -> str:
    if shard is None or (isinstance(shard, int) and shard < 0):
        return "sup"
    return str(shard)


def render_profile_report(events: list[dict], top: int = 15) -> str:
    """The ``repro profile report`` view of a trace's profile events.

    Three tables: top-``top`` functions by sampled self time (the leaf
    frame of each collapsed stack), per-span sample attribution, and —
    for distributed traces — per-shard peak RSS / CPU / GC from the
    ``resource_summary`` each worker shipped.
    """
    from repro.metrics.report import format_table

    profs = profile_events(events)
    if not profs:
        return (
            "trace contains no profile events "
            "(record one with --profile [HZ])"
        )
    span_names = {
        e.get("sid"): e.get("name") or "?"
        for e in events
        if e.get("type") == "span"
    }

    self_samples: dict[str, int] = {}
    span_samples: dict[str, int] = {}
    total_samples = 0
    hz = None
    for event in profs:
        if event.get("kind") != "stacks":
            continue
        hz = hz or event.get("hz")
        owner = event.get("span")
        owner_name = (
            span_names.get(owner, f"sid {owner}")
            if owner is not None
            else "(no span)"
        )
        for stack, count in (event.get("stacks") or {}).items():
            count = int(count)
            leaf = stack.rsplit(";", 1)[-1] or "?"
            self_samples[leaf] = self_samples.get(leaf, 0) + count
            span_samples[owner_name] = span_samples.get(owner_name, 0) + count
            total_samples += count

    lines: list[str] = []
    period = (1.0 / float(hz)) if hz else 0.0
    if total_samples:
        lines.append(
            f"{total_samples} stack samples at {hz:g} Hz "
            f"(~{total_samples * period:.2f}s of sampled execution)"
        )
        lines.append("")
        rows = [
            (
                leaf,
                count,
                f"{100.0 * count / total_samples:.1f}",
                f"{count * period:.3f}",
            )
            for leaf, count in sorted(
                self_samples.items(), key=lambda kv: (-kv[1], kv[0])
            )[:top]
        ]
        lines.append(format_table(
            ["function", "samples", "self %", "est s"],
            rows,
            title=f"Top {min(top, len(self_samples))} functions by self time",
        ))
        lines.append("")
        rows = [
            (
                name,
                count,
                f"{100.0 * count / total_samples:.1f}",
                f"{count * period:.3f}",
            )
            for name, count in sorted(
                span_samples.items(), key=lambda kv: (-kv[1], kv[0])
            )[:top]
        ]
        lines.append(format_table(
            ["span", "samples", "share %", "est s"],
            rows,
            title="Sample attribution by span",
        ))
    else:
        lines.append("no stack samples recorded (run too short for the rate?)")

    # Last-wins per (shard, pid): workers ship a cumulative summary.
    summaries: dict[tuple, dict] = {}
    for event in profs:
        if event.get("kind") != "resource_summary":
            continue
        key = (event.get("shard"), event.get("pid"))
        summaries[key] = event
    if summaries:
        rows = []
        for key in sorted(
            summaries, key=lambda k: (k[0] is None, k[0] or 0, k[1] or 0)
        ):
            s = summaries[key]
            rows.append((
                _shard_label(s.get("shard")),
                s.get("pid") or "-",
                f"{(s.get('rss_peak_bytes') or 0) / 1e6:.1f}",
                f"{s.get('cpu_s') or 0.0:.3f}",
                s.get("gc_collections") or 0,
                f"{(s.get('gc_pause_s') or 0.0) * 1000:.1f}",
                s.get("samples") or 0,
            ))
        lines.append("")
        lines.append(format_table(
            ["shard", "pid", "peak rss MB", "cpu s", "gc", "gc ms", "samples"],
            rows,
            title="Per-shard process resources",
        ))
    return "\n".join(lines)
