"""Trace aggregation: per-stage timing tables, span trees, CLI footers.

Consumes the NDJSON event dicts produced by
:meth:`~repro.obs.recorder.Recorder.events` (or loaded back with
:func:`~repro.obs.ndjson.load_ndjson`) and renders them for humans:
``repro trace summarize`` uses :func:`render_summary`, the ``-v`` timing
footer uses :func:`stage_footer`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The pipeline stage spans, in execution order, used by the footer.
PIPELINE_STAGES = ("audit", "expand", "condense", "map", "score")


@dataclass(frozen=True)
class StageStats:
    """Aggregate timing of all spans sharing one name."""

    name: str
    count: int
    total_s: float
    mean_s: float
    max_s: float


def _spans(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("type") == "span"]


def _decisions(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("type") == "decision"]


def summarize_trace(events: list[dict]) -> list[StageStats]:
    """Per-span-name timing aggregates, ordered by total time descending."""
    totals: dict[str, list[float]] = {}
    for span in _spans(events):
        totals.setdefault(span["name"], []).append(span.get("dur_s") or 0.0)
    stats = [
        StageStats(
            name=name,
            count=len(durs),
            total_s=sum(durs),
            mean_s=sum(durs) / len(durs),
            max_s=max(durs),
        )
        for name, durs in totals.items()
    ]
    return sorted(stats, key=lambda s: (-s.total_s, s.name))


def decision_counts(events: list[dict]) -> dict[tuple[str, str], int]:
    """(category, action) -> number of decision events."""
    counts: dict[tuple[str, str], int] = {}
    for event in _decisions(events):
        key = (event.get("category", "?"), event.get("action", "?"))
        counts[key] = counts.get(key, 0) + 1
    return counts


def render_summary(events: list[dict]) -> str:
    """The ``repro trace summarize`` report: timing table + decisions."""
    from repro.metrics.report import format_table

    stats = summarize_trace(events)
    if not stats:
        return "trace contains no spans"
    rows = [
        (
            s.name,
            s.count,
            f"{s.total_s * 1000:.2f}",
            f"{s.mean_s * 1000:.2f}",
            f"{s.max_s * 1000:.2f}",
        )
        for s in stats
    ]
    lines = [
        format_table(
            ["span", "count", "total ms", "mean ms", "max ms"],
            rows,
            title="Per-stage timing",
        )
    ]
    counts = decision_counts(events)
    if counts:
        decision_rows = [
            (category, action, count)
            for (category, action), count in sorted(counts.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["category", "action", "decisions"],
                decision_rows,
                title="Decision events",
            )
        )
    return "\n".join(lines)


def render_tree(events: list[dict]) -> str:
    """Indented span tree with durations and decision attachment counts."""
    spans = sorted(_spans(events), key=lambda s: s.get("t_start", 0.0))
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)
    decisions_per_span: dict[int | None, int] = {}
    for event in _decisions(events):
        key = event.get("span")
        decisions_per_span[key] = decisions_per_span.get(key, 0) + 1

    lines: list[str] = []

    def walk(parent: int | None, indent: int) -> None:
        for span in children.get(parent, ()):
            duration = (span.get("dur_s") or 0.0) * 1000
            suffix = ""
            n_dec = decisions_per_span.get(span["sid"], 0)
            if n_dec:
                suffix = f"  [{n_dec} decision{'s' if n_dec != 1 else ''}]"
            lines.append(f"{'  ' * indent}{span['name']}  {duration:.2f}ms{suffix}")
            walk(span["sid"], indent + 1)

    walk(None, 0)
    return "\n".join(lines) if lines else "trace contains no spans"


def stage_footer(recorder) -> str:
    """One-line ``stages: audit 2ms · condense 14ms · ...`` summary.

    Reads the live recorder (not a file): picks the children of the
    outermost ``pipeline`` span, in execution order.  Returns ``""`` when
    no pipeline span was recorded.
    """
    pipeline = next((s for s in recorder.spans if s.name == "pipeline"), None)
    if pipeline is None:
        return ""
    stages = [
        s for s in recorder.spans
        if s.parent == pipeline.sid and s.name in PIPELINE_STAGES
    ]
    if not stages:
        return ""
    parts = [f"{s.name} {s.duration * 1000:.0f}ms" for s in stages]
    return "stages: " + " · ".join(parts)
