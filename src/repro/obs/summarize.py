"""Trace aggregation: per-stage timing tables, span trees, CLI footers.

Consumes the NDJSON event dicts produced by
:meth:`~repro.obs.recorder.Recorder.events` (or loaded back with
:func:`~repro.obs.ndjson.load_ndjson`) and renders them for humans:
``repro trace summarize`` uses :func:`render_summary`, the ``-v`` timing
footer uses :func:`stage_footer`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The pipeline stage spans, in execution order, used by the footer.
PIPELINE_STAGES = ("audit", "expand", "condense", "map", "score")


@dataclass(frozen=True)
class StageStats:
    """Aggregate timing of all spans sharing one name."""

    name: str
    count: int
    total_s: float
    mean_s: float
    max_s: float
    #: Spans of this name flushed with ``t_end: null`` (still open when
    #: the trace was written); their duration counts as 0.
    open_count: int = 0


def _spans(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("type") == "span"]


def _decisions(events: list[dict]) -> list[dict]:
    return [e for e in events if e.get("type") == "decision"]


def open_span_count(events: list[dict]) -> int:
    """Spans written with ``t_end: null`` (trace captured mid-run)."""
    return sum(1 for s in _spans(events) if s.get("t_end") is None)


def summarize_trace(events: list[dict]) -> list[StageStats]:
    """Per-span-name timing aggregates, ordered by total time descending.

    Tolerant of hand-written or truncated traces: spans missing a
    ``name`` aggregate under ``"?"``, and still-open spans (``t_end``
    null) contribute a duration of 0 but are counted in ``open_count``.
    """
    totals: dict[str, list[float]] = {}
    open_counts: dict[str, int] = {}
    for span in _spans(events):
        name = span.get("name") or "?"
        totals.setdefault(name, []).append(span.get("dur_s") or 0.0)
        if span.get("t_end") is None:
            open_counts[name] = open_counts.get(name, 0) + 1
    stats = [
        StageStats(
            name=name,
            count=len(durs),
            total_s=sum(durs),
            mean_s=sum(durs) / len(durs),
            max_s=max(durs),
            open_count=open_counts.get(name, 0),
        )
        for name, durs in totals.items()
    ]
    return sorted(stats, key=lambda s: (-s.total_s, s.name))


def decision_counts(events: list[dict]) -> dict[tuple[str, str], int]:
    """(category, action) -> number of decision events."""
    counts: dict[tuple[str, str], int] = {}
    for event in _decisions(events):
        key = (event.get("category", "?"), event.get("action", "?"))
        counts[key] = counts.get(key, 0) + 1
    return counts


def render_summary(events: list[dict]) -> str:
    """The ``repro trace summarize`` report: timing table + decisions.

    Degrades cleanly instead of tracebacking: an empty file, a
    meta-only trace and a trace of still-open spans each produce a
    one-line message (plus an open-span note where applicable).
    """
    from repro.metrics.report import format_table

    if not events:
        return "trace is empty (no events)"
    stats = summarize_trace(events)
    if not stats:
        return "trace contains no spans"
    rows = [
        (
            s.name + (f" ({s.open_count} open)" if s.open_count else ""),
            s.count,
            f"{s.total_s * 1000:.2f}",
            f"{s.mean_s * 1000:.2f}",
            f"{s.max_s * 1000:.2f}",
        )
        for s in stats
    ]
    lines = [
        format_table(
            ["span", "count", "total ms", "mean ms", "max ms"],
            rows,
            title="Per-stage timing",
        )
    ]
    open_spans = open_span_count(events)
    if open_spans:
        lines.append("")
        lines.append(
            f"note: {open_spans} span(s) still open when the trace was "
            "written; their durations count as 0"
        )
    counts = decision_counts(events)
    if counts:
        decision_rows = [
            (category, action, count)
            for (category, action), count in sorted(counts.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["category", "action", "decisions"],
                decision_rows,
                title="Decision events",
            )
        )
    profiles = sum(1 for e in events if e.get("type") == "profile")
    if profiles:
        lines.append("")
        lines.append(
            f"note: trace carries {profiles} profile event(s) — see "
            "'repro profile report'"
        )
    from repro.obs.ndjson import unknown_kind_counts

    unknown = unknown_kind_counts(events)
    if unknown:
        detail = ", ".join(
            f"{kind} x{count}" for kind, count in sorted(unknown.items())
        )
        lines.append("")
        lines.append(
            f"note: {sum(unknown.values())} event(s) of unknown kind "
            f"skipped ({detail}) — written by a newer repro?"
        )
    return "\n".join(lines)


def render_tree(events: list[dict]) -> str:
    """Indented span tree with durations and decision attachment counts.

    Spans whose parent sid never appears in the trace (truncated files)
    are treated as roots; still-open spans are marked ``(open)``.
    """
    if not events:
        return "trace is empty (no events)"
    spans = sorted(_spans(events), key=lambda s: s.get("t_start") or 0.0)
    known_sids = {s.get("sid") for s in spans}
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent not in known_sids:
            parent = None
        children.setdefault(parent, []).append(span)
    decisions_per_span: dict[int | None, int] = {}
    for event in _decisions(events):
        key = event.get("span")
        decisions_per_span[key] = decisions_per_span.get(key, 0) + 1

    lines: list[str] = []

    def walk(parent: int | None, indent: int) -> None:
        for span in children.get(parent, ()):
            duration = (span.get("dur_s") or 0.0) * 1000
            suffix = " (open)" if span.get("t_end") is None else ""
            n_dec = decisions_per_span.get(span.get("sid"), 0)
            if n_dec:
                suffix += f"  [{n_dec} decision{'s' if n_dec != 1 else ''}]"
            name = span.get("name") or "?"
            lines.append(f"{'  ' * indent}{name}  {duration:.2f}ms{suffix}")
            if span.get("sid") is not None:
                walk(span["sid"], indent + 1)

    walk(None, 0)
    return "\n".join(lines) if lines else "trace contains no spans"


def stage_footer(recorder) -> str:
    """One-line ``stages: audit 2ms · condense 14ms · ...`` summary.

    Reads the live recorder (not a file): picks the children of the
    outermost ``pipeline`` span, in execution order.  Returns ``""`` when
    no pipeline span was recorded.
    """
    pipeline = next((s for s in recorder.spans if s.name == "pipeline"), None)
    if pipeline is None:
        return ""
    stages = [
        s for s in recorder.spans
        if s.parent == pipeline.sid and s.name in PIPELINE_STAGES
    ]
    if not stages:
        return ""
    parts = [f"{s.name} {s.duration * 1000:.0f}ms" for s in stages]
    return "stages: " + " · ".join(parts)
