"""Distributed telemetry: worker-side recording, supervisor-side merge.

PR 6 made campaigns distributed but left observability at the
supervisor: everything a shard worker recorded died with its process.
This module closes the loop in both directions:

* **Worker side** — :class:`LeaseTelemetry` runs a private
  :class:`~repro.obs.recorder.Recorder` inside a backend slot while it
  serves one lease.  It opens a ``worker.lease`` root span (tagged with
  the supervisor-minted run id and the lease coordinates), one
  ``worker.block`` child span per RNG block, and flushes every *closed*
  event after each block as a ``telemetry`` message interleaved with the
  partial-aggregate stream — so a worker killed mid-lease has already
  shipped everything but the block in flight.

* **Supervisor side** — :class:`TelemetryMerger` buffers those messages
  per lease and, when the lease settles (done, error, crash, expiry),
  grafts the worker's events into the campaign recorder under the
  ``exec.shards`` span via :meth:`~repro.obs.recorder.Recorder.graft_events`.
  Clocks are normalized from the wall-clock epoch each side stamps
  (worker span times are relative to the worker's ``perf_counter``
  epoch; the offset between the two ``epoch_unix`` anchors maps them
  onto the supervisor's timeline), so the merged trace is one tree that
  ``trace summarize`` / ``critical-path`` / ``exec digest`` read
  whole-campaign.

* **Live health** — :class:`HealthBoard` maintains a per-shard
  :class:`ShardHealth` model (blocks covered, trials/s, heartbeat lag,
  redispatches, rescue state) and atomically rewrites a ``--status-file``
  JSON that ``repro exec watch`` tails.

Telemetry is **result-transparent**: nothing here touches trial
payloads, RNG blocks, or checkpoint fingerprints — a campaign is
bit-identical with telemetry on or off (tested).
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field

from repro.errors import ObservabilityError
from repro.obs.recorder import Recorder

#: NDJSON format tag for raw worker-telemetry streams (the per-lease
#: ``telemetry`` messages as they crossed the transport, before merging).
TELEMETRY_FORMAT = "repro-worker-telemetry"
TELEMETRY_VERSION = 1

#: Status-file format tag (``--status-file`` / ``repro exec watch``).
STATUS_FORMAT = "repro-campaign-status"
STATUS_VERSION = 1


def mint_run_id() -> str:
    """A short opaque id naming one distributed campaign run."""
    return uuid.uuid4().hex[:12]


def make_context(run_id: str) -> dict:
    """The trace context a supervisor ships to workers (JSON-safe)."""
    return {"run_id": run_id}


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class LeaseTelemetry:
    """Records and streams one lease's worth of worker-side telemetry.

    ``emit`` is the slot's message emitter (the same one partials use);
    telemetry messages are ordinary protocol lines the supervisor
    routes to its :class:`TelemetryMerger`.  Events are flushed
    incrementally — after each block, and finally in :meth:`finish`
    *before* the ``done``/``error`` line, so the merger holds the full
    lease record by the time the lease settles.
    """

    def __init__(self, context: dict, lease: dict, emit) -> None:
        self._emit = emit
        self._lease_id = lease.get("id")
        self._shard = lease.get("shard", -1)
        self._seq = 0
        self._cursor = 0
        self.recorder = Recorder()
        # The supervisor asks for worker-side profiling by stamping a
        # sampling rate into the trace context (--profile [HZ]).  The
        # profiler shares this lease's seq counter, so profile batches
        # interleave with telemetry batches under one monotone sequence.
        self.profiler = None
        hz = context.get("profile")
        if hz:
            from repro.obs.profile import Profiler

            self.profiler = Profiler(
                self.recorder, hz=hz, shard=self._shard
            ).start()
        self._root = self.recorder.span(
            "worker.lease",
            run_id=context.get("run_id"),
            lease=self._lease_id,
            shard=self._shard,
            attempt=lease.get("attempt", 1),
            start=lease.get("start"),
            size=lease.get("size"),
            pid=os.getpid(),
        )
        self.recorder.decision(
            "worker", "lease_serve",
            subject=f"lease {self._lease_id}",
            reason="worker accepted shard lease",
            shard=self._shard, pid=os.getpid(),
        )

    def block_span(self, index: int, start: int, size: int):
        """Open the span covering one RNG block's computation."""
        return self.recorder.span(
            "worker.block", index=index, start=start, size=size
        )

    def block_done(self, size: int) -> None:
        self.recorder.counter("worker_blocks_total").inc(
            shard=str(self._shard)
        )
        self.recorder.counter("worker_trials_total").inc(
            size, shard=str(self._shard)
        )

    def error(self, start: int, size: int, detail: str) -> None:
        self.recorder.decision(
            "worker", "block_error",
            subject=f"[{start},{start + size})",
            reason=detail[-200:],
            shard=self._shard,
        )

    def flush(self) -> None:
        """Ship every event closed since the last flush."""
        events = self.recorder._log[self._cursor:]
        self._cursor = len(self.recorder._log)
        if events:
            self._seq += 1
            self._emit({
                "type": "telemetry",
                "lease": self._lease_id,
                "shard": self._shard,
                "seq": self._seq,
                "epoch_unix": self.recorder.epoch_unix,
                "events": events,
            })
        self._flush_profile()

    def _flush_profile(self, final: bool = False) -> None:
        """Ship the profiler's samples since the last drain (if any).

        Incremental, like span flushing: a worker killed mid-lease has
        already shipped every drained window.  The final batch carries
        the cumulative ``resources`` summary for the supervisor's
        health board.
        """
        if self.profiler is None:
            return
        if final:
            events = self.profiler.stop()
        else:
            events = self.profiler.drain()
        if not events and not final:
            return
        message = {
            "type": "profile",
            "lease": self._lease_id,
            "shard": self._shard,
            "epoch_unix": self.recorder.epoch_unix,
            "events": events,
        }
        if final:
            message["final"] = True
            message["resources"] = self.profiler.summary()
        self._seq += 1
        message["seq"] = self._seq
        self._emit(message)

    def finish(self, status: str) -> None:
        """Close the lease span and flush the remainder, plus counters."""
        self._root.set(status=status)
        self._root.__exit__(None, None, None)
        self._flush_profile(final=True)
        events = self.recorder._log[self._cursor:]
        self._cursor = len(self.recorder._log)
        self._seq += 1
        self._emit({
            "type": "telemetry",
            "lease": self._lease_id,
            "shard": self._shard,
            "seq": self._seq,
            "epoch_unix": self.recorder.epoch_unix,
            "events": events,
            "final": True,
            "counters": _counter_values(self.recorder),
        })


def _counter_values(recorder: Recorder) -> dict:
    """Flat ``{name: {label_text: value}}`` view of a recorder's counters."""
    out: dict = {}
    snapshot = recorder.metrics.snapshot()
    for name, data in snapshot["metrics"].items():
        if data.get("type") == "counter":
            out[name] = dict(data.get("series", {}))
    return out


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
class TelemetryMerger:
    """Buffers worker telemetry per lease and grafts it at settle time.

    Grafting waits for the lease to settle because a lease's root
    ``worker.lease`` span arrives in its *final* batch: merging
    everything at once lets every block span find its true parent.  A
    message arriving after its lease settled (a straggler the
    supervisor already expired) grafts immediately — its orphaned spans
    reparent onto the campaign span, which is exactly what the merged
    trace should show for work the supervisor stopped waiting for.
    """

    def __init__(
        self,
        recorder,
        run_id: str,
        parent_sid: int | None = None,
        parent_depth: int = 0,
    ) -> None:
        self._recorder = recorder
        self.run_id = run_id
        self._parent_sid = parent_sid
        self._parent_depth = parent_depth
        self._buffers: dict[int, list[dict]] = {}
        self._settled: set[int] = set()
        self._seen: set[tuple] = set()
        self.batches = 0
        self.worker_spans = 0
        self._stream: list[dict] = []

    def add(self, message: dict, slot: int | None = None) -> None:
        """Route one ``telemetry`` protocol message.

        A network transport may deliver the same batch line twice
        (retransmission, chaos duplication); batches are seq-numbered
        per lease, so replays are dropped here — the merged trace and
        the raw stream both see each batch exactly once.
        """
        seq = message.get("seq")
        if seq is not None:
            key = (message.get("lease"), seq)
            if key in self._seen:
                return  # duplicate delivery of an already-routed batch
            self._seen.add(key)
        self.batches += 1
        record = dict(message)
        if slot is not None:
            record["slot"] = slot
        self._stream.append(record)
        lease = message.get("lease")
        if lease in self._settled:
            self._graft([message])
            return
        self._buffers.setdefault(lease, []).append(message)

    def settle(self, lease_id: int) -> None:
        """The lease reached a terminal state; merge what it shipped."""
        if lease_id in self._settled:
            return
        self._settled.add(lease_id)
        batches = self._buffers.pop(lease_id, [])
        if batches:
            self._graft(batches)

    def settle_all(self) -> None:
        for lease_id in list(self._buffers):
            self.settle(lease_id)

    def _graft(self, batches: list[dict]) -> None:
        if not getattr(self._recorder, "enabled", False):
            return
        events: list[dict] = []
        offset = 0.0
        for batch in batches:
            epoch = batch.get("epoch_unix")
            if isinstance(epoch, (int, float)):
                offset = epoch - self._recorder.epoch_unix
            events.extend(batch.get("events") or [])
            for name, series in (batch.get("counters") or {}).items():
                counter = self._recorder.counter(name)
                for label_text, value in series.items():
                    labels = _parse_label_text(label_text)
                    counter.inc(value, **labels)
        if not events:
            return
        self.worker_spans += sum(
            1 for e in events if e.get("type") == "span"
        )
        self._recorder.graft_events(
            events,
            parent_sid=self._parent_sid,
            parent_depth=self._parent_depth,
            t_offset=offset,
        )

    # ------------------------------------------------------------------
    # Raw-stream export
    # ------------------------------------------------------------------
    def write_stream(self, path_or_file) -> None:
        """Write the raw telemetry messages as a validated NDJSON stream."""
        from repro.obs.ndjson import dump_ndjson

        meta = {
            "type": "meta",
            "format": TELEMETRY_FORMAT,
            "version": TELEMETRY_VERSION,
            "run_id": self.run_id,
            "batches": self.batches,
        }
        dump_ndjson([meta] + self._stream, path_or_file)


def _parse_label_text(label_text: str) -> dict:
    if not label_text:
        return {}
    labels = {}
    for pair in label_text.split(","):
        key, _, value = pair.partition("=")
        labels[key] = value
    return labels


def validate_telemetry_stream(events: list[dict]) -> list[str]:
    """Structural problems of a worker-telemetry stream (empty = valid).

    A stream is a meta line plus ``telemetry`` and ``profile`` batch
    lines (both seq-numbered on one per-lease sequence).  Parent
    references *across* batches of one lease are legal (a lease's root
    span ships in its final batch — or never, if the worker was killed
    first), so unresolved parents are not an error here; the merged
    trace's :func:`~repro.obs.ndjson.validate_trace` enforces tree
    integrity after grafting reparents them.
    """
    problems: list[str] = []
    if not events:
        return ["stream is empty (no meta line)"]
    meta = events[0]
    if meta.get("type") != "meta" or meta.get("format") != TELEMETRY_FORMAT:
        problems.append(
            f"event 0: expected a {TELEMETRY_FORMAT} meta line, "
            f"got type={meta.get('type')!r} format={meta.get('format')!r}"
        )
    elif not isinstance(meta.get("version"), int):
        problems.append("event 0: meta line has no integer version")
    last_seq: dict[int, int] = {}
    for i, event in enumerate(events[1:], start=1):
        where = f"event {i}"
        btype = event.get("type")
        if btype not in ("telemetry", "profile"):
            problems.append(
                f"{where}: unexpected record type {btype!r}"
            )
            continue
        lease = event.get("lease")
        if not isinstance(lease, int):
            problems.append(f"{where}: {btype} batch has no lease id")
            continue
        seq = event.get("seq")
        if not isinstance(seq, int) or seq < 1:
            problems.append(f"{where}: {btype} batch has no sequence number")
        elif seq <= last_seq.get(lease, 0):
            problems.append(
                f"{where}: lease {lease} sequence went backwards "
                f"({last_seq[lease]} -> {seq})"
            )
        else:
            last_seq[lease] = seq
        if not isinstance(event.get("epoch_unix"), (int, float)):
            problems.append(f"{where}: {btype} batch has no epoch_unix")
        inner = event.get("events")
        if not isinstance(inner, list):
            problems.append(f"{where}: {btype} batch has no events list")
            continue
        for j, rec in enumerate(inner):
            kind = rec.get("type") if isinstance(rec, dict) else None
            if kind == "span":
                for key in ("sid", "name", "t_start"):
                    if key not in rec:
                        problems.append(
                            f"{where}: span {j} missing key {key!r}"
                        )
            elif kind == "decision":
                for key in ("category", "action"):
                    if key not in rec:
                        problems.append(
                            f"{where}: decision {j} missing key {key!r}"
                        )
            elif kind == "profile":
                if "kind" not in rec:
                    problems.append(
                        f"{where}: profile event {j} has no kind"
                    )
            else:
                problems.append(
                    f"{where}: events[{j}] has unknown type {kind!r}"
                )
    return problems


# ----------------------------------------------------------------------
# Live campaign health
# ----------------------------------------------------------------------
@dataclass
class ShardHealth:
    """The supervisor's live model of one shard's progress."""

    shard: int
    start: int
    size: int
    blocks_total: int
    blocks_done: int = 0
    trials_done: int = 0
    leases: int = 0
    redispatches: int = 0
    expiries: int = 0
    crashes: int = 0
    rescued_blocks: int = 0
    heartbeats: int = 0
    state: str = "pending"
    # Worker-reported process resources (from profile batch summaries;
    # stay zero unless the campaign runs with --profile).
    rss_peak_bytes: int = 0
    cpu_s: float = 0.0
    gc_collections: int = 0
    last_beat: float | None = field(default=None, repr=False)
    started: float | None = field(default=None, repr=False)

    def snapshot(self, now: float) -> dict:
        elapsed = (now - self.started) if self.started is not None else 0.0
        return {
            "shard": self.shard,
            "start": self.start,
            "size": self.size,
            "blocks_total": self.blocks_total,
            "blocks_done": self.blocks_done,
            "trials_done": self.trials_done,
            "trials_per_s": (
                round(self.trials_done / elapsed, 1) if elapsed > 0 else 0.0
            ),
            "heartbeat_lag_s": (
                round(now - self.last_beat, 3)
                if self.last_beat is not None
                else None
            ),
            "leases": self.leases,
            "redispatches": self.redispatches,
            "expiries": self.expiries,
            "crashes": self.crashes,
            "rescued_blocks": self.rescued_blocks,
            "heartbeats": self.heartbeats,
            "state": self.state,
            "rss_peak_bytes": self.rss_peak_bytes,
            "cpu_s": round(self.cpu_s, 3),
            "gc_collections": self.gc_collections,
        }


class HealthBoard:
    """Per-shard health, with throttled atomic status-file rewrites.

    The supervisor calls the event hooks from its lease loop; consumers
    read the JSON the board writes (``repro exec watch``, or anything
    that can stat a file).  Writes go to a temp file in the same
    directory then :func:`os.replace` — readers never see a torn file.
    """

    def __init__(
        self,
        plan,
        block: int,
        *,
        run_id: str,
        kind: str,
        trials: int,
        backend: str,
        status_file: str | None = None,
        interval_s: float = 0.2,
    ) -> None:
        self.run_id = run_id
        self.kind = kind
        self.trials = trials
        self.backend = backend
        self._status_file = status_file
        self._interval = interval_s
        self._last_write = 0.0
        self._t0 = time.monotonic()
        self.shards: dict[int, ShardHealth] = {}
        self._starts: list[tuple[int, int]] = []
        for shard in plan:
            blocks = (shard.size + block - 1) // block
            self.shards[shard.id] = ShardHealth(
                shard=shard.id,
                start=shard.start,
                size=shard.size,
                blocks_total=blocks,
            )
            self._starts.append((shard.start, shard.id))
        self._starts.sort()

    def shard_of(self, trial_start: int) -> int:
        """Which shard owns the block starting at ``trial_start``."""
        owner = self._starts[0][1] if self._starts else 0
        for start, shard_id in self._starts:
            if start > trial_start:
                break
            owner = shard_id
        return owner

    def _touch(self, shard: int) -> ShardHealth | None:
        health = self.shards.get(shard)
        if health is not None and health.started is None:
            health.started = time.monotonic()
        return health

    # Event hooks -------------------------------------------------------
    def lease_granted(self, shard: int) -> None:
        health = self._touch(shard)
        if health is not None:
            health.leases += 1
            if health.state in ("pending", "stalled"):
                health.state = "running"
        self.maybe_write()

    def heartbeat(self, shard: int) -> None:
        health = self._touch(shard)
        if health is not None:
            health.heartbeats += 1
            health.last_beat = time.monotonic()
        self.maybe_write()

    def block_done(self, trial_start: int, size: int, source: str) -> None:
        health = self._touch(self.shard_of(trial_start))
        if health is not None:
            health.blocks_done += 1
            health.trials_done += size
            health.last_beat = time.monotonic()
            if source == "serial":
                health.rescued_blocks += 1
            if health.blocks_done >= health.blocks_total:
                health.state = "done"
        self.maybe_write()

    def redispatch(self, shard: int) -> None:
        health = self.shards.get(shard)
        if health is not None:
            health.redispatches += 1
        self.maybe_write()

    def expired(self, shard: int) -> None:
        health = self.shards.get(shard)
        if health is not None:
            health.expiries += 1
            health.state = "stalled"
        self.maybe_write()

    def crashed(self, shard: int) -> None:
        health = self.shards.get(shard)
        if health is not None:
            health.crashes += 1
            health.state = "stalled"
        self.maybe_write()

    def rescuing(self, shard: int) -> None:
        health = self._touch(shard)
        if health is not None and health.state != "done":
            health.state = "rescue"
        self.maybe_write()

    def resources(self, shard: int, summary: dict) -> None:
        """Fold a worker's ``resource_summary`` into the shard's lane.

        Summaries are cumulative per worker process; across the leases a
        shard ran we keep the peak RSS and the largest CPU/GC figures —
        a later attempt by a fresh process restarts its counters, so
        ``max`` (not sum) is the honest aggregate.
        """
        health = self.shards.get(shard)
        if health is None or not isinstance(summary, dict):
            return
        health.rss_peak_bytes = max(
            health.rss_peak_bytes, int(summary.get("rss_peak_bytes") or 0)
        )
        health.cpu_s = max(
            health.cpu_s, float(summary.get("cpu_s") or 0.0)
        )
        health.gc_collections = max(
            health.gc_collections, int(summary.get("gc_collections") or 0)
        )
        self.maybe_write()

    # Snapshots ---------------------------------------------------------
    def snapshot(self, complete: bool = False) -> dict:
        now = time.monotonic()
        shards = [
            self.shards[sid].snapshot(now) for sid in sorted(self.shards)
        ]
        trials_done = sum(s["trials_done"] for s in shards)
        elapsed = now - self._t0
        return {
            "format": STATUS_FORMAT,
            "version": STATUS_VERSION,
            "run_id": self.run_id,
            "kind": self.kind,
            "backend": self.backend,
            "trials": self.trials,
            "trials_done": trials_done,
            "elapsed_s": round(elapsed, 3),
            "trials_per_s": (
                round(trials_done / elapsed, 1) if elapsed > 0 else 0.0
            ),
            "complete": complete,
            "updated_unix": time.time(),
            "shards": shards,
        }

    def maybe_write(self, complete: bool = False, force: bool = False) -> None:
        if self._status_file is None:
            return
        now = time.monotonic()
        if not force and not complete and (
            now - self._last_write < self._interval
        ):
            return
        self._last_write = now
        write_status(self._status_file, self.snapshot(complete=complete))


def write_status(path: str, status: dict) -> None:
    """Atomically rewrite ``path`` with a status JSON document."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            json.dump(status, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    except OSError as exc:
        raise ObservabilityError(
            f"cannot write status file {path!r}: {exc}"
        ) from exc


def load_status(path: str) -> dict:
    """Read a status file; raises ObservabilityError when unreadable."""
    try:
        with open(path) as handle:
            status = json.load(handle)
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read status file {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"status file {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(status, dict) or status.get("format") != STATUS_FORMAT:
        raise ObservabilityError(
            f"{path!r} is not a {STATUS_FORMAT} file"
        )
    return status


def render_status(status: dict) -> str:
    """Human-readable campaign status (what ``repro exec watch`` shows)."""
    from repro.metrics.report import format_table

    done = status.get("trials_done", 0)
    total = status.get("trials", 0) or 1
    percent = 100.0 * done / total
    state = "complete" if status.get("complete") else "running"
    lines = [
        f"campaign {status.get('kind', '?')}  run {status.get('run_id', '?')}"
        f"  backend={status.get('backend', '?')}  [{state}]",
        f"trials {done}/{status.get('trials', 0)} ({percent:.1f}%)  "
        f"{status.get('trials_per_s', 0.0)} trials/s  "
        f"elapsed {status.get('elapsed_s', 0.0)}s",
        "",
    ]
    shards = status.get("shards", [])
    # Resource lanes only appear once some worker shipped a profile
    # summary — an unprofiled campaign keeps the familiar table.
    with_resources = any(
        shard.get("rss_peak_bytes") or shard.get("cpu_s")
        for shard in shards
    )
    rows = []
    for shard in shards:
        lag = shard.get("heartbeat_lag_s")
        row = [
            str(shard.get("shard")),
            shard.get("state", "?"),
            f"{shard.get('blocks_done', 0)}/{shard.get('blocks_total', 0)}",
            str(shard.get("trials_per_s", 0.0)),
            "-" if lag is None else f"{lag:.2f}",
            str(shard.get("leases", 0)),
            str(shard.get("redispatches", 0)),
            str(shard.get("expiries", 0)),
            str(shard.get("crashes", 0)),
            str(shard.get("rescued_blocks", 0)),
        ]
        if with_resources:
            row.append(
                f"{(shard.get('rss_peak_bytes') or 0) / 1e6:.1f}"
            )
            row.append(f"{shard.get('cpu_s') or 0.0:.2f}")
        rows.append(row)
    headers = ["shard", "state", "blocks", "trials/s", "beat lag",
               "leases", "redisp", "expired", "crashes", "rescued"]
    if with_resources:
        headers += ["peak rss MB", "cpu s"]
    lines.append(format_table(headers, rows))
    return "\n".join(lines)
