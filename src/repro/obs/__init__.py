"""repro.obs — dependency-free observability for the DDSI pipeline.

Three record kinds over one ambient :class:`Recorder`:

* **spans** — nested wall-time intervals per pipeline stage / hot path;
* **metrics** — counters, gauges, fixed-bucket histograms with labels;
* **decision events** — what the pipeline chose, with reasons.

Disabled by default: library instrumentation talks to
:data:`NULL_RECORDER` (every call a no-op) unless a real recorder is
installed with :func:`use`.  See ``docs/OBSERVABILITY.md`` for the trace
schema and the metric-name catalogue.
"""

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.ndjson import (
    dump_ndjson,
    load_ndjson,
    trace_meta,
    unknown_kind_counts,
    validate_trace,
)
from repro.obs.profile import (
    DEFAULT_PROFILE_HZ,
    Profiler,
    ResourceProbe,
    StackProfiler,
    process_metrics_snapshot,
    render_profile_report,
)
from repro.obs.provenance import collect_provenance, machine_fingerprint
from repro.obs.recorder import (
    NULL_RECORDER,
    DecisionEvent,
    NullRecorder,
    Recorder,
    Span,
    current,
    use,
)
from repro.obs.telemetry import (
    STATUS_FORMAT,
    TELEMETRY_FORMAT,
    HealthBoard,
    LeaseTelemetry,
    ShardHealth,
    TelemetryMerger,
    load_status,
    make_context,
    mint_run_id,
    render_status,
    validate_telemetry_stream,
    write_status,
)
from repro.obs.summarize import (
    PIPELINE_STAGES,
    StageStats,
    decision_counts,
    open_span_count,
    render_summary,
    render_tree,
    stage_footer,
    summarize_trace,
)

__all__ = [
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_PROFILE_HZ",
    "DEFAULT_TIME_BUCKETS",
    "NULL_RECORDER",
    "PIPELINE_STAGES",
    "STATUS_FORMAT",
    "TELEMETRY_FORMAT",
    "Counter",
    "DecisionEvent",
    "Gauge",
    "HealthBoard",
    "Histogram",
    "LeaseTelemetry",
    "MetricsRegistry",
    "NullRecorder",
    "Profiler",
    "Recorder",
    "ResourceProbe",
    "ShardHealth",
    "Span",
    "StackProfiler",
    "StageStats",
    "TelemetryMerger",
    "collect_provenance",
    "current",
    "decision_counts",
    "dump_ndjson",
    "load_ndjson",
    "load_status",
    "machine_fingerprint",
    "make_context",
    "mint_run_id",
    "open_span_count",
    "process_metrics_snapshot",
    "render_profile_report",
    "render_status",
    "render_summary",
    "render_tree",
    "stage_footer",
    "summarize_trace",
    "trace_meta",
    "unknown_kind_counts",
    "use",
    "validate_telemetry_stream",
    "validate_trace",
    "write_status",
]
