"""Fault-containment measures.

"Measures to quantify the goodness of dependable system integration"
(abstract).  Analytic counterparts of the simulator's campaign metrics:

* expected number of FCMs affected by a fault in a given FCM, from the
  truncated transitive-influence series;
* containment ratio of a partition: the share of total influence weight
  kept *inside* clusters;
* blast radius: reachable set under influence above a threshold.
"""

from __future__ import annotations

from repro.errors import InfluenceError
from repro.graphs.algorithms import bfs_reachable
from repro.graphs.digraph import Digraph
from repro.influence.influence_graph import InfluenceGraph
from repro.influence.separation import compute_separation


def expected_affected_analytic(
    graph: InfluenceGraph,
    source: str,
    order: int = 3,
) -> float:
    """Expected FCMs affected by a fault in ``source`` (beyond itself).

    Sums the truncated transitive influence of ``source`` on every other
    FCM — by linearity of expectation, with each entry clamped to [0, 1]
    (an entry is a probability bound).
    """
    result = compute_separation(graph, order=order)
    total = 0.0
    for name in result.names:
        if name == source:
            continue
        total += min(1.0, max(0.0, result.transitive_influence(source, name)))
    return total


def containment_ratio(
    graph: InfluenceGraph,
    partition: list[list[str]],
) -> float:
    """Fraction of total influence weight that is intra-cluster.

    1.0 means every influence edge is contained inside some cluster (all
    faults stay on their HW node); 0.0 means everything crosses.  Graphs
    without influence edges score 1.0 (nothing to contain).
    """
    cluster_of: dict[str, int] = {}
    for index, block in enumerate(partition):
        for member in block:
            if member in cluster_of:
                raise InfluenceError(f"{member!r} in two partition blocks")
            cluster_of[member] = index
    total = 0.0
    inside = 0.0
    for src, dst, weight in graph.influence_edges():
        if src not in cluster_of or dst not in cluster_of:
            raise InfluenceError("partition does not cover all FCMs")
        total += weight
        if cluster_of[src] == cluster_of[dst]:
            inside += weight
    if total == 0.0:
        return 1.0
    return inside / total


def blast_radius(
    graph: InfluenceGraph,
    source: str,
    threshold: float = 0.0,
) -> set[str]:
    """FCMs reachable from ``source`` via influence edges above ``threshold``.

    The worst-case scope of a fault if every sufficiently strong edge
    fires; the SW analogue of tracing a fault across FCR boundaries.
    """
    pruned = Digraph()
    for name in graph.fcm_names():
        pruned.add_node(name)
    for src, dst, weight in graph.influence_edges():
        if weight > threshold:
            pruned.add_edge(src, dst, weight)
    return bfs_reachable(pruned, source) - {source}


def worst_blast_radius(
    graph: InfluenceGraph,
    threshold: float = 0.0,
) -> tuple[str, int]:
    """The FCM with the largest blast radius, and that radius."""
    worst_name = ""
    worst_size = -1
    for name in graph.fcm_names():
        size = len(blast_radius(graph, name, threshold))
        if size > worst_size:
            worst_name, worst_size = name, size
    return worst_name, worst_size
