"""Plain-text rendering of tables, graphs and mappings.

The benchmark harness regenerates the paper's tables and figures as text;
this module provides the shared formatting: aligned tables (Table 1),
edge lists (Figs. 3-4), cluster/mapping summaries (Figs. 5-8).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.allocation.clustering import ClusterState
from repro.allocation.mapping import Mapping
from repro.influence.influence_graph import InfluenceGraph


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


def render_influence_graph(graph: InfluenceGraph, title: str = "") -> str:
    """Edge list rendering of an influence graph (Figs. 3-4 style)."""
    rows = []
    for src, dst, weight in sorted(graph.influence_edges()):
        # Paper-style 2-decimal weights; estimation-derived values can be
        # far smaller, where fixed-point would print a misleading 0.00.
        label = f"{weight:.2f}" if weight >= 0.005 else f"{weight:.2e}"
        rows.append((f"{src} -> {dst}", label))
    for group in graph.replica_groups():
        members = sorted(group)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                rows.append((f"{a} == {b}", "0 (replica link)"))
    return format_table(
        ["edge", "influence"],
        rows,
        title=title or f"influence graph ({len(graph)} nodes)",
    )


def render_clusters(state: ClusterState, title: str = "") -> str:
    """Cluster table with combined attributes and cross influence."""
    rows = []
    for i, cluster in enumerate(state.clusters):
        attrs = state.attributes(i)
        timing = attrs.timing
        rows.append(
            (
                cluster.label,
                " ".join(cluster.members),
                attrs.criticality,
                f"[{timing.earliest_start:g}, {timing.deadline:g}] ct={timing.computation_time:g}"
                if timing
                else "-",
            )
        )
    table = format_table(
        ["cluster", "members", "max C", "timing envelope"],
        rows,
        title=title or f"{len(state.clusters)} clusters",
    )
    cross = state.total_cross_influence()
    return f"{table}\ntotal cross-cluster influence: {cross:.3f}"


def render_cluster_influences(state: ClusterState) -> str:
    """Inter-cluster influence matrix entries (nonzero only)."""
    rows = []
    n = len(state.clusters)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            value = state.influence(i, j)
            if value > 0.0:
                rows.append(
                    (state.clusters[i].label, state.clusters[j].label, f"{value:.3f}")
                )
            elif state.replica_related(i, j) and i < j:
                rows.append(
                    (state.clusters[i].label, state.clusters[j].label, "0 (replica)")
                )
    return format_table(["from", "to", "influence"], rows)


def render_resilience(report, title: str = "") -> str:
    """Availability-per-class table plus degradation/recovery summary.

    ``report`` is a :class:`~repro.resilience.campaign.ResilienceReport`;
    typed loosely to keep metrics free of a hard resilience dependency.
    """
    rows = [
        (label, report.class_sizes[label], f"{report.availability[label]:.4f}")
        for label in report.availability
    ]
    table = format_table(
        ["class", "processes", "availability"],
        rows,
        title=title
        or (
            "Degraded-mode availability "
            f"({report.trials} trials, {report.failures_per_trial} failures, "
            f"horizon {report.horizon:g})"
        ),
    )
    lines = [
        table,
        f"clusters shed: mean {report.mean_clusters_shed:.2f}, "
        f"max {report.max_clusters_shed}",
        f"replica-separation violations: {report.separation_violations}",
        f"class-A outage trials: {report.class_a_outages}",
        f"recoveries: {report.recoveries} "
        f"(p50 {report.recovery_p50:.2f}, p95 {report.recovery_p95:.2f}, "
        f"worst {report.recovery_worst:.2f})",
    ]
    return "\n".join(lines)


def render_campaign(result, title: str = "") -> str:
    """Fault-injection campaign summary (faultsim ``CampaignResult``).

    Typed loosely, like :func:`render_resilience`, to keep metrics free
    of a hard faultsim dependency.
    """
    rows = [
        ("trials", result.trials),
        ("mean affected FCMs", f"{result.mean_affected_fcms:.3f}"),
        ("mean affected clusters", f"{result.mean_affected_clusters:.3f}"),
        ("max affected FCMs", result.max_affected_fcms),
        ("cross-cluster escape rate", f"{result.cross_cluster_rate:.3f}"),
    ]
    return format_table(
        ["metric", "value"],
        rows,
        title=title or "Fault-injection campaign",
    )


def render_exec_report(report) -> str:
    """One-or-two-line summary of an :class:`~repro.exec.ExecReport`.

    Shows how the supervised runner completed a campaign: worker/batch
    shape, checkpoint reuse, and any retries or degradations.
    """
    lines = [
        f"exec: {report.batches_run}/{report.batches_total} batches run "
        f"({report.batches_from_checkpoint} from checkpoint) · "
        f"workers {report.workers} · batch size {report.batch_size}"
    ]
    events = []
    if report.retries:
        events.append(f"retries {report.retries}")
    if report.worker_crashes:
        events.append(f"worker crashes {report.worker_crashes}")
    if report.timeouts:
        events.append(f"timeouts {report.timeouts}")
    if report.splits:
        events.append(f"batch splits {report.splits}")
    if report.serial_fallbacks:
        events.append(f"serial fallbacks {report.serial_fallbacks}")
    if report.pool_abandoned:
        events.append("pool abandoned")
    if report.corrupt_checkpoint_lines:
        events.append(
            f"corrupt checkpoint lines {report.corrupt_checkpoint_lines}"
        )
    if events:
        lines.append("exec events: " + ", ".join(events))
    if report.checkpoint_path:
        lines.append(f"checkpoint: {report.checkpoint_path}")
    return "\n".join(lines)


def render_shard_report(report) -> str:
    """Summary of a :class:`~repro.exec.ShardReport` (sharded campaigns).

    Shows the shard/lease shape and everything the supervisor had to do
    beyond the happy path: expiries, re-dispatches, crashes, rescues.
    """
    lines = [
        f"shards: {report.shards} x {report.block}-trial blocks over "
        f"'{report.backend}' backend · slots {report.slots} · "
        f"{report.leases_granted} leases · {report.partials} partials "
        f"({report.partials_from_checkpoint} from checkpoint)"
    ]
    events = []
    if report.lease_expiries:
        events.append(f"lease expiries {report.lease_expiries}")
    if report.redispatches:
        events.append(f"redispatches {report.redispatches}")
    if report.shard_crashes:
        events.append(f"shard crashes {report.shard_crashes}")
    if report.serial_rescue_blocks:
        events.append(f"serial rescue blocks {report.serial_rescue_blocks}")
    if report.backend_abandoned:
        events.append("backend abandoned")
    if getattr(report, "protocol_torn_lines", 0):
        events.append(f"torn protocol lines {report.protocol_torn_lines}")
    if getattr(report, "generation_fenced_lines", 0):
        events.append(
            f"generation-fenced lines {report.generation_fenced_lines}"
        )
    if report.corrupt_checkpoint_lines:
        events.append(
            f"corrupt checkpoint lines {report.corrupt_checkpoint_lines}"
        )
    if events:
        lines.append("shard events: " + ", ".join(events))
    if report.checkpoint_path:
        lines.append(f"checkpoint: {report.checkpoint_path}")
    return "\n".join(lines)


def render_degradation(plan) -> str:
    """One degraded-mode plan as text (mapping table plus decisions)."""
    lines = list(plan.describe())
    if plan.mapping is not None:
        lines.append(render_mapping(plan.mapping, title="degraded SW -> HW mapping"))
    return "\n".join(lines)


def render_mapping(mapping: Mapping, title: str = "") -> str:
    """HW-node to SW-cluster assignment table (Figs. 6-8 style)."""
    rows = []
    for hw_name, label in mapping.describe():
        rows.append((hw_name, label, mapping.hw.node(hw_name).fcr))
    table = format_table(
        ["HW node", "mapped SW processes", "FCR"],
        rows,
        title=title or "SW -> HW mapping",
    )
    return f"{table}\ncommunication cost: {mapping.communication_cost():.3f}"
