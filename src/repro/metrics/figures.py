"""ASCII charts for curves and distributions.

The benches and the CLI report trade-off curves and sweeps; a small
horizontal bar chart makes the knee visible in a terminal without any
plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import DDSIError

BAR_CHAR = "#"
DEFAULT_WIDTH = 40


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = DEFAULT_WIDTH,
    title: str | None = None,
    value_format: str = "{:.3f}",
) -> str:
    """Horizontal bar chart, one row per (label, value).

    Bars scale to the maximum value; zero/negative values render as
    empty bars (the numeric column still shows the value).
    """
    if len(labels) != len(values):
        raise DDSIError("labels and values must have equal length")
    if width < 1:
        raise DDSIError("width must be >= 1")
    if not labels:
        return title or ""
    peak = max(max(values), 0.0)
    label_width = max(len(str(label)) for label in labels)
    rendered_values = [value_format.format(v) for v in values]
    value_width = max(len(v) for v in rendered_values)
    lines = []
    if title:
        lines.append(title)
    for label, value, text in zip(labels, values, rendered_values):
        if peak > 0 and value > 0:
            length = max(1, round(width * value / peak))
        else:
            length = 0
        lines.append(
            f"{str(label).ljust(label_width)}  {text.rjust(value_width)}  "
            f"{BAR_CHAR * length}"
        )
    return "\n".join(lines)


def tradeoff_chart(curve, metric: str = "cross_influence", width: int = DEFAULT_WIDTH) -> str:
    """Bar chart of one metric over a :class:`TradeoffCurve`."""
    points = curve.feasible_points()
    if not points:
        raise DDSIError("no feasible points to chart")
    labels = [f"{p.hw_nodes} nodes" for p in points]
    values = [getattr(p, metric) for p in points]
    return bar_chart(
        labels,
        values,
        width=width,
        title=f"trade-off: {metric} by integration level",
    )
