"""Dependability metrics and text reports."""

from repro.metrics.containment import (
    blast_radius,
    containment_ratio,
    expected_affected_analytic,
    worst_blast_radius,
)
from repro.metrics.figures import bar_chart, tradeoff_chart
from repro.metrics.dependability import (
    fcm_failure_probability,
    replicated_module_failure,
    system_dependability_index,
)
from repro.metrics.report import (
    format_table,
    render_campaign,
    render_cluster_influences,
    render_clusters,
    render_degradation,
    render_exec_report,
    render_influence_graph,
    render_mapping,
    render_resilience,
)

__all__ = [
    "bar_chart",
    "blast_radius",
    "containment_ratio",
    "expected_affected_analytic",
    "fcm_failure_probability",
    "format_table",
    "render_campaign",
    "render_cluster_influences",
    "render_clusters",
    "render_degradation",
    "render_exec_report",
    "render_influence_graph",
    "render_mapping",
    "render_resilience",
    "replicated_module_failure",
    "system_dependability_index",
    "tradeoff_chart",
    "worst_blast_radius",
]
