"""System-level dependability estimates.

The paper composes dependability qualitatively; these helpers put numbers
on a configured system so that design alternatives can be ranked:

* per-FCM survival probability given baseline fault rates and the
  influence graph (a fault anywhere may cascade);
* system survival under k-of-n replication (TMR etc.);
* a criticality-weighted dependability index for whole partitions.

The model is deliberately simple (single mission period, independent
spontaneous faults, one propagation wave per fault — consistent with the
paper's independence assumptions in §2) and is cross-validated against
the Monte-Carlo simulator in the test suite.
"""

from __future__ import annotations

import math

from repro.errors import ProbabilityError
from repro.influence.influence_graph import InfluenceGraph


def fcm_failure_probability(
    graph: InfluenceGraph,
    target: str,
    base_rates: dict[str, float],
) -> float:
    """Probability ``target`` ends the mission faulty (one-wave model).

    ``base_rates`` gives each FCM's spontaneous fault probability for the
    mission.  The target fails if it faults spontaneously or if any direct
    influencer faults spontaneously *and* transmits:

        P = 1 - (1 - r_t) * Π_s (1 - r_s * I(s -> t))
    """
    _check_rates(graph, base_rates)
    complement = 1.0 - base_rates.get(target, 0.0)
    for source in graph.fcm_names():
        if source == target:
            continue
        influence = graph.influence(source, target)
        if influence <= 0.0:
            continue
        complement *= 1.0 - base_rates.get(source, 0.0) * influence
    return 1.0 - complement


def replicated_module_failure(
    replica_failures: list[float],
    quorum: int,
) -> float:
    """Failure probability of a k-of-n replicated module.

    The module fails when fewer than ``quorum`` replicas survive.  For TMR
    pass the three replica failure probabilities and ``quorum=2``.
    Replica failures are treated as independent (they sit on distinct HW
    nodes in a valid mapping).
    """
    n = len(replica_failures)
    if not 1 <= quorum <= n:
        raise ProbabilityError(f"quorum {quorum} invalid for {n} replicas")
    for p in replica_failures:
        if not 0.0 <= p <= 1.0:
            raise ProbabilityError(f"failure probability {p} outside [0, 1]")
    # Sum over subsets is exponential; n is tiny (2-5) in practice.
    fail_total = 0.0
    for mask in range(1 << n):
        surviving = [i for i in range(n) if not mask & (1 << i)]
        if len(surviving) >= quorum:
            continue
        prob = 1.0
        for i in range(n):
            prob *= replica_failures[i] if mask & (1 << i) else 1.0 - replica_failures[i]
        fail_total += prob
    return fail_total


def system_dependability_index(
    graph: InfluenceGraph,
    base_rates: dict[str, float],
    quorum: int = 2,
) -> float:
    """Criticality-weighted survival index in [0, 1]; higher is better.

    Each module contributes its survival probability weighted by its
    criticality; replica groups contribute as k-of-n modules.  Modules
    with zero criticality still contribute with weight epsilon so a
    system of uncritical modules is not vacuously perfect.
    """
    _check_rates(graph, base_rates)
    groups = {frozenset(g) for g in graph.replica_groups()}
    grouped: set[str] = set()
    terms: list[tuple[float, float]] = []  # (weight, survival)

    for group in groups:
        members = sorted(group)
        grouped.update(members)
        failures = [
            fcm_failure_probability(graph, m, base_rates) for m in members
        ]
        q = min(quorum, len(members))
        fail = replicated_module_failure(failures, q)
        weight = max(
            graph.fcm(m).attributes.criticality for m in members
        )
        terms.append((max(weight, 1e-9), 1.0 - fail))

    for name in graph.fcm_names():
        if name in grouped:
            continue
        fail = fcm_failure_probability(graph, name, base_rates)
        weight = graph.fcm(name).attributes.criticality
        terms.append((max(weight, 1e-9), 1.0 - fail))

    total_weight = sum(w for w, _s in terms)
    return sum(w * s for w, s in terms) / total_weight


def _check_rates(graph: InfluenceGraph, base_rates: dict[str, float]) -> None:
    for name, rate in base_rates.items():
        if not graph.has_fcm(name):
            raise ProbabilityError(f"rate given for unknown FCM {name!r}")
        if not 0.0 <= rate <= 1.0 or not math.isfinite(rate):
            raise ProbabilityError(f"rate for {name!r} outside [0, 1]: {rate}")
