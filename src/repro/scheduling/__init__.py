"""Scheduling substrate: EDF, RM, non-preemptive, feasibility predicates."""

from repro.scheduling.edf import EDFResult, demand_feasible, edf_schedule
from repro.scheduling.feasibility import (
    FeasibilityMethod,
    TimedModule,
    combination_feasible,
    coschedulable,
    density_feasible,
    jobs_from_modules,
)
from repro.scheduling.nonpreemptive import (
    NonPreemptiveResult,
    TimingFaultOutcome,
    inject_timing_fault,
    nonpreemptive_edf_schedule,
)
from repro.scheduling.rm import (
    ResponseTimeResult,
    hyperbolic_test,
    liu_layland_bound,
    response_time_analysis,
    rm_schedulable,
    total_utilization,
    utilization_test,
)
from repro.scheduling.task_model import Job, PeriodicTask, ScheduleSlice

__all__ = [
    "EDFResult",
    "FeasibilityMethod",
    "Job",
    "NonPreemptiveResult",
    "PeriodicTask",
    "ResponseTimeResult",
    "ScheduleSlice",
    "TimedModule",
    "TimingFaultOutcome",
    "combination_feasible",
    "coschedulable",
    "demand_feasible",
    "density_feasible",
    "edf_schedule",
    "hyperbolic_test",
    "inject_timing_fault",
    "jobs_from_modules",
    "liu_layland_bound",
    "nonpreemptive_edf_schedule",
    "response_time_analysis",
    "rm_schedulable",
    "total_utilization",
    "utilization_test",
]
