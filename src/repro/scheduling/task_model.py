"""Schedulable job model.

The allocation engine must decide whether a set of FCMs can share one
processor ("the processes in the cluster must all be schedulable so that
their timing requirements are met").  We model each FCM's timing
attribute as one aperiodic *job*: ``computation_time`` units of work to be
placed inside ``[earliest_start, deadline]``; a periodic variant is
handled by :mod:`repro.scheduling.rm`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.model.attributes import TimingConstraint


@dataclass(frozen=True)
class Job:
    """One aperiodic job derived from an FCM timing constraint."""

    name: str
    release: float
    deadline: float
    work: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise SchedulingError(f"job {self.name!r}: work must be >= 0")
        if self.release < 0:
            raise SchedulingError(f"job {self.name!r}: release must be >= 0")
        if self.deadline < self.release + self.work - 1e-12:
            raise SchedulingError(
                f"job {self.name!r} is infeasible alone: "
                f"{self.work} units in [{self.release}, {self.deadline}]"
            )

    @classmethod
    def from_timing(cls, name: str, timing: TimingConstraint) -> "Job":
        return cls(
            name=name,
            release=timing.earliest_start,
            deadline=timing.deadline,
            work=timing.computation_time,
        )

    @property
    def window(self) -> float:
        return self.deadline - self.release

    @property
    def laxity(self) -> float:
        return self.window - self.work


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic task for rate-monotonic analysis (implicit deadlines
    unless ``deadline`` is given)."""

    name: str
    period: float
    work: float
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise SchedulingError(f"task {self.name!r}: period must be > 0")
        if self.work < 0:
            raise SchedulingError(f"task {self.name!r}: work must be >= 0")
        effective = self.deadline if self.deadline is not None else self.period
        if effective <= 0 or effective < self.work:
            raise SchedulingError(
                f"task {self.name!r}: deadline {effective} cannot fit work {self.work}"
            )

    @property
    def utilization(self) -> float:
        return self.work / self.period

    @property
    def effective_deadline(self) -> float:
        return self.deadline if self.deadline is not None else self.period


@dataclass(frozen=True)
class ScheduleSlice:
    """A contiguous execution interval assigned to one job."""

    job: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SchedulingError("schedule slice must have positive length")

    @property
    def length(self) -> float:
        return self.end - self.start
