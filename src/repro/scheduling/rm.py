"""Rate-monotonic analysis for the periodic task variant.

The paper cites the classical scheduling literature (Stankovic et al.) for
checking "the feasibility of scheduling sets of these processes on the
same processor".  For periodic workloads (the avionics example's sensor
and display loops) we provide the standard toolkit:

* Liu & Layland utilization bound ``n (2^{1/n} - 1)`` — sufficient;
* hyperbolic bound ``Π (U_i + 1) <= 2`` — tighter sufficient test;
* exact response-time analysis (fixed-point iteration) — necessary and
  sufficient for synchronous, independent, constrained-deadline tasks
  under rate-monotonic / deadline-monotonic priorities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.scheduling.task_model import PeriodicTask


def total_utilization(tasks: list[PeriodicTask]) -> float:
    return sum(task.utilization for task in tasks)


def liu_layland_bound(n: int) -> float:
    """The RM schedulability bound for ``n`` tasks; ln 2 in the limit."""
    if n < 1:
        raise SchedulingError("n must be >= 1")
    return n * (2.0 ** (1.0 / n) - 1.0)


def utilization_test(tasks: list[PeriodicTask]) -> bool:
    """Sufficient: U <= n(2^{1/n} - 1).  False is *inconclusive*."""
    if not tasks:
        return True
    return total_utilization(tasks) <= liu_layland_bound(len(tasks)) + 1e-12


def hyperbolic_test(tasks: list[PeriodicTask]) -> bool:
    """Sufficient (tighter): Π (U_i + 1) <= 2.  False is inconclusive."""
    product = 1.0
    for task in tasks:
        product *= task.utilization + 1.0
    return product <= 2.0 + 1e-12


@dataclass(frozen=True)
class ResponseTimeResult:
    """Exact RM analysis outcome."""

    schedulable: bool
    response_times: dict[str, float]

    def response(self, name: str) -> float:
        try:
            return self.response_times[name]
        except KeyError:
            raise SchedulingError(f"no task named {name!r}") from None


def response_time_analysis(tasks: list[PeriodicTask], max_iterations: int = 10_000) -> ResponseTimeResult:
    """Exact test under deadline-monotonic priorities.

    ``R_i = C_i + Σ_{j ∈ hp(i)} ceil(R_i / T_j) C_j`` iterated to a fixed
    point; schedulable iff every ``R_i <= D_i``.  Tasks whose fixed point
    exceeds the deadline report ``inf``.
    """
    names = [t.name for t in tasks]
    if len(names) != len(set(names)):
        raise SchedulingError("task names must be unique")
    # Deadline-monotonic priority order (RM when deadlines == periods).
    ordered = sorted(tasks, key=lambda t: (t.effective_deadline, t.name))
    responses: dict[str, float] = {}
    schedulable = True
    for i, task in enumerate(ordered):
        higher = ordered[:i]
        r = task.work
        for _ in range(max_iterations):
            interference = sum(
                math.ceil((r - 1e-12) / h.period) * h.work for h in higher
            )
            r_next = task.work + interference
            if abs(r_next - r) < 1e-12:
                break
            r = r_next
            if r > task.effective_deadline + 1e-12:
                break
        else:
            raise SchedulingError("response-time iteration failed to converge")
        if r > task.effective_deadline + 1e-12:
            responses[task.name] = float("inf")
            schedulable = False
        else:
            responses[task.name] = r
    return ResponseTimeResult(schedulable=schedulable, response_times=responses)


def rm_schedulable(tasks: list[PeriodicTask]) -> bool:
    """Decision procedure: quick sufficient tests, then the exact one."""
    if not tasks:
        return True
    if total_utilization(tasks) > 1.0 + 1e-12:
        return False
    if utilization_test(tasks) or hyperbolic_test(tasks):
        return True
    return response_time_analysis(tasks).schedulable
