"""Co-schedulability predicate used by the allocation engine.

When combining SW nodes, "we must nonetheless check the values of all
attributes, such as timing constraints, since certain combinations of
nodes may be infeasible" (§6).  This module turns FCM attribute sets into
jobs and answers: can this set share one processor?

Two testers are provided and benchmarked against each other (DESIGN.md
ablation list): the exact processor-demand criterion, and a fast
density-based sufficient/necessary sandwich used for large sweeps.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from enum import Enum

from repro.model.attributes import AttributeSet
from repro.scheduling.edf import demand_feasible
from repro.scheduling.task_model import Job


class FeasibilityMethod(Enum):
    EXACT = "exact"  # processor-demand criterion (decides)
    DENSITY = "density"  # Σ C_i / (D_i - r_i) <= 1 (sufficient only)


@dataclass(frozen=True)
class TimedModule:
    """A named attribute set — the allocation engine's view of an FCM."""

    name: str
    attributes: AttributeSet

    def job(self) -> Job | None:
        if self.attributes.timing is None:
            return None
        return Job.from_timing(self.name, self.attributes.timing)


def jobs_from_modules(modules: Iterable[TimedModule]) -> list[Job]:
    """Jobs for every module that carries a timing constraint."""
    jobs = []
    for module in modules:
        job = module.job()
        if job is not None:
            jobs.append(job)
    return jobs


def density_feasible(jobs: list[Job]) -> bool:
    """Sufficient test: total density <= 1 guarantees feasibility.

    Density of a job is ``work / window``.  Cheap (O(n)) and safe for
    accepting combinations, but may reject feasible sets.
    """
    return sum(job.work / job.window for job in jobs if job.window > 0) <= 1.0 + 1e-12


def coschedulable(
    modules: Iterable[TimedModule],
    method: FeasibilityMethod = FeasibilityMethod.EXACT,
) -> bool:
    """Can these modules share one preemptive processor?

    Modules without timing constraints never block a combination.
    """
    jobs = jobs_from_modules(list(modules))
    if not jobs:
        return True
    if method is FeasibilityMethod.DENSITY:
        return density_feasible(jobs)
    return demand_feasible(jobs)


def combination_feasible(
    group_a: Iterable[TimedModule],
    group_b: Iterable[TimedModule],
    method: FeasibilityMethod = FeasibilityMethod.EXACT,
) -> bool:
    """Whether the union of two already-placed groups stays schedulable."""
    return coschedulable([*group_a, *group_b], method=method)
