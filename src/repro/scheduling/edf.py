"""Earliest-deadline-first scheduling of aperiodic jobs on one processor.

Two complementary tools:

* :func:`demand_feasible` — the exact processor-demand criterion: a job
  set is feasible on one preemptive processor iff for every interval
  ``[t1, t2]`` delimited by a release and a deadline, the total work of
  jobs entirely contained in the interval does not exceed its length.
  (EDF is optimal for preemptive uniprocessor scheduling, so this decides
  feasibility outright.)
* :func:`edf_schedule` — an explicit preemptive EDF simulation producing
  the actual schedule slices, used by examples/reports and the
  non-preemptive comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.scheduling.task_model import Job, ScheduleSlice

_EPS = 1e-9


def demand_feasible(jobs: list[Job]) -> bool:
    """Exact preemptive uniprocessor feasibility (processor demand)."""
    if not jobs:
        return True
    releases = sorted({job.release for job in jobs})
    deadlines = sorted({job.deadline for job in jobs})
    for t1 in releases:
        for t2 in deadlines:
            if t2 <= t1:
                continue
            demand = sum(
                job.work
                for job in jobs
                if job.release >= t1 - _EPS and job.deadline <= t2 + _EPS
            )
            if demand > (t2 - t1) + _EPS:
                return False
    return True


@dataclass(frozen=True)
class EDFResult:
    """Outcome of an EDF simulation."""

    feasible: bool
    slices: tuple[ScheduleSlice, ...]
    missed: tuple[str, ...]  # jobs that missed their deadline

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.slices), default=0.0)

    def completion_time(self, job: str) -> float:
        """Finish time of ``job``; raises if it never ran to completion."""
        ends = [s.end for s in self.slices if s.job == job]
        if not ends:
            raise SchedulingError(f"job {job!r} never ran")
        return max(ends)


def edf_schedule(jobs: list[Job]) -> EDFResult:
    """Simulate preemptive EDF; event-driven, exact for this job model.

    Deadline misses do not abort the simulation: remaining work is still
    scheduled (work-conserving), and the missing jobs are reported, which
    lets callers measure *how much* a cluster overloads.
    """
    names = [job.name for job in jobs]
    if len(names) != len(set(names)):
        raise SchedulingError("job names must be unique")
    remaining = {job.name: job.work for job in jobs}
    slices: list[ScheduleSlice] = []
    missed: set[str] = set()

    time = 0.0
    pending = sorted(jobs, key=lambda j: j.release)
    released: list[Job] = []
    idx = 0
    guard = 0
    while idx < len(pending) or any(remaining[n] > _EPS for n in remaining):
        guard += 1
        if guard > 10 * len(jobs) * (len(jobs) + 1) + 100:
            raise SchedulingError("EDF simulation failed to converge")
        # Release newly arrived jobs.
        while idx < len(pending) and pending[idx].release <= time + _EPS:
            released.append(pending[idx])
            idx += 1
        ready = [j for j in released if remaining[j.name] > _EPS]
        if not ready:
            if idx >= len(pending):
                break
            time = pending[idx].release
            continue
        # Earliest deadline first; stable tie-break on name.
        current = min(ready, key=lambda j: (j.deadline, j.name))
        # Run until the job finishes or the next release, whichever first.
        next_release = pending[idx].release if idx < len(pending) else float("inf")
        finish = time + remaining[current.name]
        end = min(finish, next_release)
        if end <= time + _EPS:
            time = next_release
            continue
        slices.append(ScheduleSlice(current.name, time, end))
        remaining[current.name] -= end - time
        if remaining[current.name] <= _EPS:
            remaining[current.name] = 0.0
            if end > current.deadline + _EPS:
                missed.add(current.name)
        time = end

    # Jobs that still hold work (cannot happen in a work-conserving sim
    # with finite jobs, but guard anyway) count as missed.
    for name, rem in remaining.items():
        if rem > _EPS:
            missed.add(name)

    # A job may also miss by finishing after its deadline in an earlier
    # slice bundle; recompute misses from completion times for robustness.
    for job in jobs:
        ends = [s.end for s in slices if s.job == job.name]
        if ends and max(ends) > job.deadline + _EPS:
            missed.add(job.name)
        # A job with zero work trivially meets its deadline.

    merged = _merge_adjacent(slices)
    return EDFResult(
        feasible=not missed,
        slices=tuple(merged),
        missed=tuple(sorted(missed)),
    )


def _merge_adjacent(slices: list[ScheduleSlice]) -> list[ScheduleSlice]:
    """Merge back-to-back slices of the same job for readable schedules."""
    merged: list[ScheduleSlice] = []
    for piece in slices:
        if merged and merged[-1].job == piece.job and abs(merged[-1].end - piece.start) < _EPS:
            merged[-1] = ScheduleSlice(piece.job, merged[-1].start, piece.end)
        else:
            merged.append(piece)
    return merged
