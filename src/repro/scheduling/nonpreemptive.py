"""Non-preemptive scheduling and timing-fault propagation.

Section 4.2.3: "If non-preemptive scheduling is used, then a timing fault
(e.g., a task in an infinite loop) can cause all other tasks also to fail.
However, the probability of transmission of the timing fault can be
minimised by using preemptive scheduling."

This module simulates both disciplines in the presence of an injected
timing fault (a job that overruns its nominal work, possibly forever) and
measures how many *other* jobs miss their deadlines — the empirical
transmission probability of the timing fault.  The preemption ablation
bench builds directly on this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.scheduling.edf import _EPS, edf_schedule
from repro.scheduling.task_model import Job, ScheduleSlice


@dataclass(frozen=True)
class NonPreemptiveResult:
    feasible: bool
    slices: tuple[ScheduleSlice, ...]
    missed: tuple[str, ...]


def nonpreemptive_edf_schedule(jobs: list[Job], horizon: float | None = None) -> NonPreemptiveResult:
    """Non-preemptive EDF: once a job starts it runs to completion.

    ``horizon`` caps execution of any single job (models a watchdog-less
    platform observed up to the horizon: an infinite-loop job occupies the
    processor until the horizon).  Jobs whose work is ``inf`` require a
    horizon.
    """
    names = [job.name for job in jobs]
    if len(names) != len(set(names)):
        raise SchedulingError("job names must be unique")
    if any(job.work == float("inf") for job in jobs) and horizon is None:
        raise SchedulingError("infinite jobs require a horizon")

    pending = sorted(jobs, key=lambda j: j.release)
    idx = 0
    released: list[Job] = []
    done: set[str] = set()
    slices: list[ScheduleSlice] = []
    missed: set[str] = set()
    time = 0.0

    while idx < len(pending) or len(done) < len(jobs):
        while idx < len(pending) and pending[idx].release <= time + _EPS:
            released.append(pending[idx])
            idx += 1
        ready = [j for j in released if j.name not in done]
        if not ready:
            if idx >= len(pending):
                break
            time = pending[idx].release
            continue
        current = min(ready, key=lambda j: (j.deadline, j.name))
        end = time + current.work
        if horizon is not None and end > horizon:
            end = horizon
        if end > time + _EPS:
            slices.append(ScheduleSlice(current.name, time, end))
        done.add(current.name)
        if end > current.deadline + _EPS or (horizon is not None and time + current.work > horizon):
            missed.add(current.name)
        time = end
        if horizon is not None and time >= horizon - _EPS:
            # Everything not yet finished misses.
            for job in jobs:
                if job.name not in done:
                    missed.add(job.name)
            break

    return NonPreemptiveResult(
        feasible=not missed,
        slices=tuple(slices),
        missed=tuple(sorted(missed)),
    )


@dataclass(frozen=True)
class TimingFaultOutcome:
    """Result of injecting a timing fault into one job of a cluster."""

    faulty_job: str
    discipline: str  # "preemptive" | "nonpreemptive"
    victims: tuple[str, ...]  # other jobs that missed because of the fault

    @property
    def transmitted(self) -> bool:
        return bool(self.victims)


def inject_timing_fault(
    jobs: list[Job],
    faulty: str,
    overrun_factor: float = float("inf"),
    horizon: float | None = None,
    preemptive: bool = True,
) -> TimingFaultOutcome:
    """Run the cluster with ``faulty``'s work inflated by ``overrun_factor``.

    ``overrun_factor=inf`` models the paper's infinite loop.  Under the
    preemptive discipline the faulty job is bounded by its deadline budget
    — a preemptive scheduler with deadline enforcement aborts it — so
    other jobs keep their slots; under non-preemptive EDF it holds the
    processor.  Victims are jobs (other than the faulty one) that miss
    deadlines in the faulted run but not in the clean run.
    """
    by_name = {job.name: job for job in jobs}
    if faulty not in by_name:
        raise SchedulingError(f"no job named {faulty!r}")
    if overrun_factor < 1.0:
        raise SchedulingError("overrun_factor must be >= 1")
    if horizon is None:
        horizon = 2.0 * max(job.deadline for job in jobs)

    original = by_name[faulty]
    if preemptive:
        # Deadline enforcement truncates the runaway job at its window end:
        # it consumes at most its full window, then is killed.
        inflated_work = min(
            original.work * overrun_factor, original.deadline - original.release
        )
        faulted = [
            job if job.name != faulty else Job(
                name=job.name,
                release=job.release,
                deadline=job.deadline,
                work=inflated_work,
            )
            for job in jobs
        ]
        clean_missed = set(edf_schedule(jobs).missed)
        fault_missed = set(edf_schedule(faulted).missed)
        discipline = "preemptive"
    else:
        inflated_work = original.work * overrun_factor
        # Job.__post_init__ rejects work > window, so build the overrun job
        # without the sanity check by using the horizon-capped simulator's
        # convention: deadline stays, work inflates; feasibility check is
        # bypassed by constructing via object.__new__ through a helper.
        faulted = [
            job if job.name != faulty else _unchecked_job(
                job.name, job.release, job.deadline, inflated_work
            )
            for job in jobs
        ]
        clean_missed = set(nonpreemptive_edf_schedule(jobs, horizon=horizon).missed)
        fault_missed = set(nonpreemptive_edf_schedule(faulted, horizon=horizon).missed)
        discipline = "nonpreemptive"

    victims = tuple(sorted((fault_missed - clean_missed) - {faulty}))
    return TimingFaultOutcome(faulty_job=faulty, discipline=discipline, victims=victims)


def _unchecked_job(name: str, release: float, deadline: float, work: float) -> Job:
    """A Job that may be infeasible alone (an overrunning, faulty job)."""
    job = object.__new__(Job)
    object.__setattr__(job, "name", name)
    object.__setattr__(job, "release", release)
    object.__setattr__(job, "deadline", deadline)
    object.__setattr__(job, "work", work)
    return job
