"""Influence engine: Eqs. (1)-(4), separation, estimation, reduction."""

from repro.influence.cluster import (
    cluster_contains_replica_of,
    cluster_influence_on,
    clusters_combinable,
    condense_influence,
    influence_on_cluster,
)
from repro.influence.estimation import (
    DEFAULT_MEDIUM_HAZARD,
    InjectionOutcome,
    Medium,
    MediumModel,
    UsageHistory,
    estimate_effect,
    estimate_occurrence,
    estimate_transmission,
    wilson_interval,
)
from repro.influence.factors import FACTOR_FAULT_KIND, FactorKind, InfluenceFactor
from repro.influence.influence_graph import InfluenceGraph
from repro.influence.probability import (
    combine_probabilities,
    factor_contribution,
    influence_from_factors,
)
from repro.influence.reduction import (
    DEFAULT_RESIDUAL,
    TECHNIQUE_TARGETS,
    ReductionReport,
    apply_technique,
    rank_techniques,
    total_influence,
)
from repro.influence.separation import (
    DEFAULT_ORDER,
    SeparationResult,
    compute_separation,
    convergence_order,
    separation,
)

__all__ = [
    "DEFAULT_MEDIUM_HAZARD",
    "DEFAULT_ORDER",
    "DEFAULT_RESIDUAL",
    "FACTOR_FAULT_KIND",
    "FactorKind",
    "InfluenceFactor",
    "InfluenceGraph",
    "InjectionOutcome",
    "Medium",
    "MediumModel",
    "ReductionReport",
    "SeparationResult",
    "TECHNIQUE_TARGETS",
    "UsageHistory",
    "apply_technique",
    "cluster_contains_replica_of",
    "cluster_influence_on",
    "clusters_combinable",
    "combine_probabilities",
    "compute_separation",
    "condense_influence",
    "convergence_order",
    "estimate_effect",
    "estimate_occurrence",
    "estimate_transmission",
    "factor_contribution",
    "influence_from_factors",
    "influence_on_cluster",
    "rank_techniques",
    "separation",
    "total_influence",
    "wilson_interval",
]
