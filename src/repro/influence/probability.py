"""Eq. (2): combining fault factors into an influence value.

Given the factors f_1 ... f_n acting jointly and independently between a
source and a target FCM, the influence is

    FCM_i -> FCM_j  =  1 - (1 - p_1)(1 - p_2) ... (1 - p_n)

i.e. the probability that *at least one* factor materialises.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ProbabilityError
from repro.influence.factors import InfluenceFactor


def combine_probabilities(
    probabilities: Iterable[float], context: str | None = None
) -> float:
    """``1 - Π(1 - p_k)`` over probabilities in [0, 1].

    An empty iterable yields 0.0 (no factor, no influence).  ``context``
    names where the probabilities came from (an FCM pair, a factor
    tuple) so an out-of-range ``p_k`` is reported against its source
    instead of silently producing an influence value > 1.
    """
    where = f" ({context})" if context else ""
    complement = 1.0
    for index, p in enumerate(probabilities):
        if not 0.0 <= p <= 1.0:
            raise ProbabilityError(
                f"p_{index + 1} must be in [0, 1], got {p}{where}"
            )
        complement *= 1.0 - p
    return 1.0 - complement


def influence_from_factors(
    factors: Iterable[InfluenceFactor], context: str | None = None
) -> float:
    """Eq. (2) applied to factor objects (each contributes Eq. (1)).

    An invalid factor probability is reported with the factor's kind and
    position plus the caller's ``context`` (typically the FCM pair).
    """
    factor_tuple = tuple(factors)
    for index, factor in enumerate(factor_tuple):
        p = factor.probability
        if not 0.0 <= p <= 1.0:
            where = f" of {context}" if context else ""
            raise ProbabilityError(
                f"factor[{index}] ({factor.kind.value}){where} has "
                f"probability {p}, outside [0, 1]"
            )
    return combine_probabilities(
        (f.probability for f in factor_tuple), context=context
    )


def factor_contribution(factors: list[InfluenceFactor], index: int) -> float:
    """How much factor ``index`` adds to the combined influence.

    The difference between the full Eq. (2) value and the value with that
    factor removed — used to rank which mechanism to mitigate first.
    """
    if not 0 <= index < len(factors):
        raise ProbabilityError(f"factor index {index} out of range")
    full = influence_from_factors(factors)
    reduced = influence_from_factors(
        f for i, f in enumerate(factors) if i != index
    )
    return full - reduced
