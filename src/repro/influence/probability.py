"""Eq. (2): combining fault factors into an influence value.

Given the factors f_1 ... f_n acting jointly and independently between a
source and a target FCM, the influence is

    FCM_i -> FCM_j  =  1 - (1 - p_1)(1 - p_2) ... (1 - p_n)

i.e. the probability that *at least one* factor materialises.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ProbabilityError
from repro.influence.factors import InfluenceFactor


def combine_probabilities(probabilities: Iterable[float]) -> float:
    """``1 - Π(1 - p_k)`` over probabilities in [0, 1].

    An empty iterable yields 0.0 (no factor, no influence).
    """
    complement = 1.0
    for p in probabilities:
        if not 0.0 <= p <= 1.0:
            raise ProbabilityError(f"probability must be in [0, 1], got {p}")
        complement *= 1.0 - p
    return 1.0 - complement


def influence_from_factors(factors: Iterable[InfluenceFactor]) -> float:
    """Eq. (2) applied to factor objects (each contributes Eq. (1))."""
    return combine_probabilities(f.probability for f in factors)


def factor_contribution(factors: list[InfluenceFactor], index: int) -> float:
    """How much factor ``index`` adds to the combined influence.

    The difference between the full Eq. (2) value and the value with that
    factor removed — used to rank which mechanism to mitigate first.
    """
    if not 0 <= index < len(factors):
        raise ProbabilityError(f"factor index {index} out of range")
    full = influence_from_factors(factors)
    reduced = influence_from_factors(
        f for i, f in enumerate(factors) if i != index
    )
    return full - reduced
