"""Eq. (4): influence between a cluster of FCMs and a neighbour.

When SW nodes are combined (Fig. 2), internal influences disappear and the
influences of the members on a common external neighbour combine:

    FCM_C -> FCM_t = 1 - Π_i (1 - (FCM_i -> FCM_t))

with the replica override: "if any of the component nodes had an influence
of 0 on the neighbour [i.e. a replica link], then the final value is also
0" — the replica relation dominates, and the cluster inherits the
cannot-be-combined constraint.

The inbound direction (neighbour onto cluster) uses the same combination
over the member-wise inbound influences.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import InfluenceError
from repro.influence.influence_graph import InfluenceGraph
from repro.influence.probability import combine_probabilities


def cluster_influence_on(
    graph: InfluenceGraph,
    members: Iterable[str],
    target: str,
) -> float:
    """Eq. (4): influence of the cluster ``members`` on external ``target``.

    Returns 0.0 and marks nothing special when no member influences the
    target; raises if the target is inside the cluster.
    """
    member_list = _check_members(graph, members, target)
    if any(graph.is_replica_link(m, target) for m in member_list):
        # Replica override: the combined node is a replica of the target's
        # module; influence is pinned to 0 (and combination forbidden).
        return 0.0
    return combine_probabilities(graph.influence(m, target) for m in member_list)


def influence_on_cluster(
    graph: InfluenceGraph,
    source: str,
    members: Iterable[str],
) -> float:
    """Influence of external ``source`` on the cluster ``members``.

    Symmetric application of Eq. (4) over inbound edges.
    """
    member_list = _check_members(graph, members, source)
    if any(graph.is_replica_link(source, m) for m in member_list):
        return 0.0
    return combine_probabilities(graph.influence(source, m) for m in member_list)


def cluster_contains_replica_of(
    graph: InfluenceGraph,
    members: Iterable[str],
    other: str,
) -> bool:
    """True when ``other`` is replica-linked to any cluster member.

    Such a cluster may never be combined with ``other`` (the replicas must
    land on different HW nodes).
    """
    return any(graph.is_replica_link(m, other) for m in set(members))


def clusters_combinable(
    graph: InfluenceGraph,
    first: Iterable[str],
    second: Iterable[str],
) -> bool:
    """Whether two clusters may be merged w.r.t. the replica constraint.

    (Other constraints — schedulability, resources — are checked by the
    allocation engine; this is the pure replica-separation predicate.)
    """
    first_set, second_set = set(first), set(second)
    if first_set & second_set:
        raise InfluenceError("clusters overlap")
    return not any(
        graph.is_replica_link(a, b) for a in first_set for b in second_set
    )


def condense_influence(
    graph: InfluenceGraph,
    partition: list[list[str]],
) -> dict[tuple[int, int], float]:
    """Cluster-to-cluster influences for a full partition.

    Returns a mapping from ordered block-index pairs to the Eq. (4)
    combination over all member-to-member edges between the blocks.  A
    replica link between two blocks pins their entry to 0.0 (and the
    blocks are not combinable).  Pairs with zero influence and no replica
    link are omitted.
    """
    flat = [name for block in partition for name in block]
    if len(flat) != len(set(flat)):
        raise InfluenceError("partition blocks overlap")
    for name in flat:
        if not graph.has_fcm(name):
            raise InfluenceError(f"FCM {name!r} not in influence graph")

    out: dict[tuple[int, int], float] = {}
    for i, src_block in enumerate(partition):
        for j, dst_block in enumerate(partition):
            if i == j:
                continue
            replica = any(
                graph.is_replica_link(a, b) for a in src_block for b in dst_block
            )
            if replica:
                out[(i, j)] = 0.0
                continue
            value = combine_probabilities(
                graph.influence(a, b)
                for a in src_block
                for b in dst_block
            )
            if value > 0.0:
                out[(i, j)] = value
    return out


def _check_members(
    graph: InfluenceGraph,
    members: Iterable[str],
    outside: str,
) -> list[str]:
    member_list = list(dict.fromkeys(members))
    if not member_list:
        raise InfluenceError("cluster must have at least one member")
    for name in member_list:
        if not graph.has_fcm(name):
            raise InfluenceError(f"FCM {name!r} not in influence graph")
    if not graph.has_fcm(outside):
        raise InfluenceError(f"FCM {outside!r} not in influence graph")
    if outside in member_list:
        raise InfluenceError(f"{outside!r} is inside the cluster")
    return member_list
