"""Influence-reduction techniques (§4.2.2-4.2.3).

Once influence values are measured, "the next step is to reduce influence
between FCMs so that system dependability is increased".  The paper names
level-specific techniques; we model each as a multiplicative attenuation
of the transmission component p_{i,2} of the relevant factor kinds:

* procedure level — OO design / information hiding reduces global-variable
  spread; redundancy (range checks) reduces parameter-passing factors;
* task/process level — recovery blocks attenuate message errors,
  preemptive scheduling bounds timing-fault transmission, memory
  separation attenuates shared-memory factors.

:func:`apply_technique` rewrites an influence graph's factor-based edges
accordingly and recomputes Eq. (2); edges carrying only a direct value
(no factor decomposition) are scaled whole when their recorded dominant
kind matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProbabilityError
from repro.influence.factors import FactorKind
from repro.influence.influence_graph import InfluenceGraph
from repro.model.faults import IsolationTechnique

# Which factor kinds each technique attenuates, and the default residual
# transmission fraction (0.0 = perfect isolation, 1.0 = no effect).
TECHNIQUE_TARGETS: dict[IsolationTechnique, tuple[FactorKind, ...]] = {
    IsolationTechnique.INFORMATION_HIDING: (FactorKind.GLOBAL_VARIABLE,),
    IsolationTechnique.RANGE_CHECKS: (FactorKind.PARAMETER_PASSING,),
    IsolationTechnique.RECOVERY_BLOCKS: (FactorKind.MESSAGE_PASSING,),
    IsolationTechnique.N_VERSION_PROGRAMMING: (
        FactorKind.MESSAGE_PASSING,
        FactorKind.SHARED_MEMORY,
    ),
    IsolationTechnique.PREEMPTIVE_SCHEDULING: (FactorKind.TIMING,),
    IsolationTechnique.MEMORY_SEPARATION: (
        FactorKind.SHARED_MEMORY,
        FactorKind.RESOURCE_SHARING,
    ),
    IsolationTechnique.RESOURCE_QUOTAS: (FactorKind.RESOURCE_SHARING,),
}

DEFAULT_RESIDUAL: dict[IsolationTechnique, float] = {
    IsolationTechnique.INFORMATION_HIDING: 0.2,
    IsolationTechnique.RANGE_CHECKS: 0.1,
    IsolationTechnique.RECOVERY_BLOCKS: 0.15,
    IsolationTechnique.N_VERSION_PROGRAMMING: 0.05,
    IsolationTechnique.PREEMPTIVE_SCHEDULING: 0.1,
    IsolationTechnique.MEMORY_SEPARATION: 0.05,
    IsolationTechnique.RESOURCE_QUOTAS: 0.2,
}


@dataclass(frozen=True)
class ReductionReport:
    """Effect of one technique application on an influence graph."""

    technique: IsolationTechnique
    residual: float
    edges_changed: int
    total_influence_before: float
    total_influence_after: float

    @property
    def reduction(self) -> float:
        """Absolute drop in summed influence."""
        return self.total_influence_before - self.total_influence_after


def apply_technique(
    graph: InfluenceGraph,
    technique: IsolationTechnique,
    residual: float | None = None,
) -> ReductionReport:
    """Apply ``technique`` in place, attenuating matching factors.

    ``residual`` is the fraction of transmission probability that remains
    (defaults per technique).  Edges with an empty factor tuple are left
    untouched — a direct-valued edge does not record its mechanism, so
    there is nothing sound to attenuate.
    """
    if residual is None:
        residual = DEFAULT_RESIDUAL[technique]
    if not 0.0 <= residual <= 1.0:
        raise ProbabilityError(f"residual must be in [0, 1], got {residual}")
    targets = TECHNIQUE_TARGETS[technique]

    before = total_influence(graph)
    changed = 0
    for src, dst, _w in graph.influence_edges():
        factors = graph.factors(src, dst)
        if not factors:
            continue
        if not any(f.kind in targets for f in factors):
            continue
        new_factors = tuple(
            f.mitigated(residual) if f.kind in targets else f for f in factors
        )
        graph.set_influence(src, dst, factors=new_factors)
        changed += 1
    after = total_influence(graph)
    return ReductionReport(
        technique=technique,
        residual=residual,
        edges_changed=changed,
        total_influence_before=before,
        total_influence_after=after,
    )


def total_influence(graph: InfluenceGraph) -> float:
    """Sum of all influence edge weights — the minimisation target.

    "Minimisation of the value of influence on FCMs at each level of the
    hierarchy will maximise fault containment."
    """
    return sum(w for _s, _t, w in graph.influence_edges())


def rank_techniques(
    graph: InfluenceGraph,
    techniques: list[IsolationTechnique] | None = None,
) -> list[tuple[IsolationTechnique, float]]:
    """Rank techniques by the influence reduction each would achieve.

    Each technique is applied to a *copy* of the graph; the original is
    untouched.  Returns (technique, reduction) pairs, best first.
    """
    candidates = techniques if techniques is not None else list(TECHNIQUE_TARGETS)
    ranked: list[tuple[IsolationTechnique, float]] = []
    for technique in candidates:
        trial = graph.copy()
        report = apply_technique(trial, technique)
        ranked.append((technique, report.reduction))
    ranked.sort(key=lambda pair: (-pair[1], pair[0].value))
    return ranked
