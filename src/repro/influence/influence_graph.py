"""The influence graph: FCM nodes, directed influence edges.

Nodes represent FCMs at one hierarchy level; a labeled unidirectional edge
represents the influence of one FCM on another (§4.2).  Edge labels carry
"a tuple representing the factors in the source FCM that influence the
target, and an associated weight".

Replica semantics (§5.1): "Replicas are connected by edges of weight 0;
there is no edge in any other case of non-influence."  We additionally
carry an explicit ``replica`` flag on those edges so the weight-0
convention and the constraint flag can be cross-checked; replica links are
stored in *both* directions (the relation is symmetric).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import GraphError, InfluenceError, ProbabilityError
from repro.graphs.digraph import Digraph
from repro.influence.factors import InfluenceFactor
from repro.influence.probability import influence_from_factors
from repro.model.fcm import FCM

_EMPTY_SET: frozenset[str] = frozenset()


class InfluenceGraph:
    """Directed influence graph among FCMs at one level.

    Edges come in two kinds:

    * *influence edges* — weight in (0, 1], optional factor tuple;
    * *replica links* — weight exactly 0, ``replica=True``, symmetric.

    Plain zero influence is represented by the *absence* of an edge.

    A replica-partner index keeps :meth:`is_replica_link` O(1), and a
    monotonically increasing :attr:`version` lets compiled artifacts
    (``repro.faultsim.kernel.compile_graph``, the allocation engine's
    matrices) cache against a graph instance and invalidate on mutation.
    """

    def __init__(self) -> None:
        self._graph = Digraph()
        self._fcms: dict[str, FCM] = {}
        # name -> set of replica partners (symmetric); mirrors the
        # replica=True edges exactly.
        self._replica_partners: dict[str, set[str]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter; bumps on any node/edge change."""
        return self._version

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_fcm(self, fcm: FCM) -> None:
        if fcm.name in self._fcms:
            raise InfluenceError(f"FCM {fcm.name!r} already in influence graph")
        self._fcms[fcm.name] = fcm
        self._graph.add_node(fcm.name)
        self._version += 1

    def remove_fcm(self, name: str) -> None:
        self._require(name)
        self._graph.remove_node(name)
        del self._fcms[name]
        partners = self._replica_partners.pop(name, None)
        if partners:
            for other in partners:
                self._replica_partners[other].discard(name)
        self._version += 1

    def has_fcm(self, name: str) -> bool:
        return name in self._fcms

    def fcm(self, name: str) -> FCM:
        self._require(name)
        return self._fcms[name]

    def fcm_names(self) -> list[str]:
        return list(self._fcms)

    def fcms(self) -> list[FCM]:
        return list(self._fcms.values())

    def __len__(self) -> int:
        return len(self._fcms)

    # ------------------------------------------------------------------
    # Influence edges
    # ------------------------------------------------------------------
    def set_influence(
        self,
        source: str,
        target: str,
        value: float | None = None,
        factors: Iterable[InfluenceFactor] | None = None,
    ) -> float:
        """Set the influence of ``source`` on ``target``.

        Either a direct ``value`` (the paper's "relative values suffice"
        path) or a tuple of ``factors`` (Eqs. 1-2) must be given.  Returns
        the stored weight.  Setting an influence of exactly 0 removes the
        edge (absence means no influence); replica links are not touchable
        through this method.
        """
        self._require(source)
        self._require(target)
        if (value is None) == (factors is None):
            raise InfluenceError("provide exactly one of value= or factors=")
        factor_tuple: tuple[InfluenceFactor, ...] = tuple(factors or ())
        if factors is not None:
            value = influence_from_factors(
                factor_tuple, context=f"influence {source!r} -> {target!r}"
            )
        assert value is not None
        if not 0.0 <= value <= 1.0:
            raise ProbabilityError(
                f"influence {source!r} -> {target!r} must be in [0, 1], "
                f"got {value}"
            )
        if self.is_replica_link(source, target):
            raise InfluenceError(
                f"{source!r} and {target!r} are replicas; their link weight "
                "is fixed at 0"
            )
        self._version += 1
        if value == 0.0:
            if self._graph.has_edge(source, target):
                self._graph.remove_edge(source, target)
            return 0.0
        if self._graph.has_edge(source, target):
            self._graph.set_weight(source, target, value)
            self._graph.edge_data(source, target)["factors"] = factor_tuple
        else:
            self._graph.add_edge(source, target, value, factors=factor_tuple, replica=False)
        return value

    def influence(self, source: str, target: str) -> float:
        """Influence of ``source`` on ``target``; 0.0 when no edge exists.

        Replica links report 0.0, per the paper's convention.
        """
        self._require(source)
        self._require(target)
        if source == target:
            raise InfluenceError("influence of an FCM on itself is undefined")
        if self._graph.has_edge(source, target):
            return self._graph.weight(source, target)
        return 0.0

    def factors(self, source: str, target: str) -> tuple[InfluenceFactor, ...]:
        """The factor tuple recorded on an edge (may be empty)."""
        if not self._graph.has_edge(source, target):
            raise GraphError(f"no influence edge {source!r} -> {target!r}")
        return self._graph.edge_data(source, target).get("factors", ())

    def influence_edges(self) -> list[tuple[str, str, float]]:
        """All non-replica edges as (source, target, weight)."""
        partners = self._replica_partners
        return [
            (src, dst, w)
            for src, targets in self._graph.adjacency().items()
            for dst, w in targets.items()
            if dst not in partners.get(src, _EMPTY_SET)
        ]

    def influence_edge_factors(
        self,
    ) -> Iterator[tuple[str, str, float, tuple[InfluenceFactor, ...]]]:
        """One-pass iterator over (source, target, weight, factors).

        Equivalent to :meth:`influence_edges` plus a :meth:`factors` call
        per edge, without the per-edge lookups — the audit's hot path.
        """
        partners = self._replica_partners
        payloads = self._graph.edge_payloads()
        for src, targets in self._graph.adjacency().items():
            skip = partners.get(src, _EMPTY_SET)
            for dst, w in targets.items():
                if dst in skip:
                    continue
                yield src, dst, w, payloads[(src, dst)].get("factors", ())

    def mutual_influence(self, a: str, b: str) -> float:
        """Sum of influences in each direction (H1's merge criterion)."""
        return self.influence(a, b) + self.influence(b, a)

    # ------------------------------------------------------------------
    # Replica links
    # ------------------------------------------------------------------
    def link_replicas(self, a: str, b: str) -> None:
        """Record that ``a`` and ``b`` are replicas of one module.

        Installs symmetric weight-0 edges flagged ``replica=True``.  The
        two FCMs must genuinely be replicas (same ``replica_of`` origin, or
        one the origin of the other) when that metadata is available.
        """
        self._require(a)
        self._require(b)
        if a == b:
            raise InfluenceError("an FCM is not its own replica")
        fa, fb = self._fcms[a], self._fcms[b]
        origins = {fa.replica_of or fa.name, fb.replica_of or fb.name}
        if len(origins) != 1:
            raise InfluenceError(
                f"{a!r} and {b!r} are not replicas of the same original "
                f"(origins {sorted(origins)!r})"
            )
        for src, dst in ((a, b), (b, a)):
            if self._graph.has_edge(src, dst):
                if not self._graph.edge_data(src, dst).get("replica", False):
                    raise InfluenceError(
                        f"influence edge {src!r} -> {dst!r} already exists; "
                        "replicas cannot also influence each other"
                    )
            else:
                self._graph.add_edge(src, dst, 0.0, factors=(), replica=True)
        self._replica_partners.setdefault(a, set()).add(b)
        self._replica_partners.setdefault(b, set()).add(a)
        self._version += 1

    def is_replica_link(self, a: str, b: str) -> bool:
        return b in self._replica_partners.get(a, _EMPTY_SET)

    def replica_partners(self, name: str) -> frozenset[str]:
        """The replica partners of ``name`` (empty when unreplicated)."""
        partners = self._replica_partners.get(name)
        return frozenset(partners) if partners else _EMPTY_SET

    def replica_groups(self) -> list[set[str]]:
        """Partition of replica-linked FCMs into groups (by origin)."""
        groups: dict[str, set[str]] = {}
        partners = self._replica_partners
        for name, fcm in self._fcms.items():
            origin = fcm.replica_of or name
            if fcm.replica_of is not None or partners.get(name):
                groups.setdefault(origin, set()).add(name)
        return [g for g in groups.values() if len(g) > 1]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def as_digraph(self, include_replica_links: bool = False) -> Digraph:
        """A :class:`Digraph` copy of this influence graph.

        Replica links are weight-0 edges; excluding them (the default)
        gives the pure probability matrix used by separation.
        """
        out = Digraph()
        for name in self._fcms:
            out.add_node(name)
        partners = self._replica_partners
        payloads = self._graph.edge_payloads()
        for src, targets in self._graph.adjacency().items():
            skip = partners.get(src, _EMPTY_SET) if not include_replica_links else _EMPTY_SET
            for dst, w in targets.items():
                if dst in skip:
                    continue
                out._install_edge(src, dst, w, dict(payloads[(src, dst)]))
        return out

    def copy(self) -> "InfluenceGraph":
        clone = InfluenceGraph()
        clone._graph = self._graph.copy()
        clone._fcms = dict(self._fcms)
        clone._replica_partners = {
            name: set(partners)
            for name, partners in self._replica_partners.items()
        }
        return clone

    def _require(self, name: str) -> None:
        if name not in self._fcms:
            raise InfluenceError(f"FCM {name!r} not in influence graph")
