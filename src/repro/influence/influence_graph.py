"""The influence graph: FCM nodes, directed influence edges.

Nodes represent FCMs at one hierarchy level; a labeled unidirectional edge
represents the influence of one FCM on another (§4.2).  Edge labels carry
"a tuple representing the factors in the source FCM that influence the
target, and an associated weight".

Replica semantics (§5.1): "Replicas are connected by edges of weight 0;
there is no edge in any other case of non-influence."  We additionally
carry an explicit ``replica`` flag on those edges so the weight-0
convention and the constraint flag can be cross-checked; replica links are
stored in *both* directions (the relation is symmetric).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import GraphError, InfluenceError, ProbabilityError
from repro.graphs.digraph import Digraph
from repro.influence.factors import InfluenceFactor
from repro.influence.probability import influence_from_factors
from repro.model.fcm import FCM


class InfluenceGraph:
    """Directed influence graph among FCMs at one level.

    Edges come in two kinds:

    * *influence edges* — weight in (0, 1], optional factor tuple;
    * *replica links* — weight exactly 0, ``replica=True``, symmetric.

    Plain zero influence is represented by the *absence* of an edge.
    """

    def __init__(self) -> None:
        self._graph = Digraph()
        self._fcms: dict[str, FCM] = {}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_fcm(self, fcm: FCM) -> None:
        if fcm.name in self._fcms:
            raise InfluenceError(f"FCM {fcm.name!r} already in influence graph")
        self._fcms[fcm.name] = fcm
        self._graph.add_node(fcm.name)

    def remove_fcm(self, name: str) -> None:
        self._require(name)
        self._graph.remove_node(name)
        del self._fcms[name]

    def has_fcm(self, name: str) -> bool:
        return name in self._fcms

    def fcm(self, name: str) -> FCM:
        self._require(name)
        return self._fcms[name]

    def fcm_names(self) -> list[str]:
        return list(self._fcms)

    def fcms(self) -> list[FCM]:
        return list(self._fcms.values())

    def __len__(self) -> int:
        return len(self._fcms)

    # ------------------------------------------------------------------
    # Influence edges
    # ------------------------------------------------------------------
    def set_influence(
        self,
        source: str,
        target: str,
        value: float | None = None,
        factors: Iterable[InfluenceFactor] | None = None,
    ) -> float:
        """Set the influence of ``source`` on ``target``.

        Either a direct ``value`` (the paper's "relative values suffice"
        path) or a tuple of ``factors`` (Eqs. 1-2) must be given.  Returns
        the stored weight.  Setting an influence of exactly 0 removes the
        edge (absence means no influence); replica links are not touchable
        through this method.
        """
        self._require(source)
        self._require(target)
        if (value is None) == (factors is None):
            raise InfluenceError("provide exactly one of value= or factors=")
        factor_tuple: tuple[InfluenceFactor, ...] = tuple(factors or ())
        if factors is not None:
            value = influence_from_factors(
                factor_tuple, context=f"influence {source!r} -> {target!r}"
            )
        assert value is not None
        if not 0.0 <= value <= 1.0:
            raise ProbabilityError(
                f"influence {source!r} -> {target!r} must be in [0, 1], "
                f"got {value}"
            )
        if self.is_replica_link(source, target):
            raise InfluenceError(
                f"{source!r} and {target!r} are replicas; their link weight "
                "is fixed at 0"
            )
        if value == 0.0:
            if self._graph.has_edge(source, target):
                self._graph.remove_edge(source, target)
            return 0.0
        if self._graph.has_edge(source, target):
            self._graph.set_weight(source, target, value)
            self._graph.edge_data(source, target)["factors"] = factor_tuple
        else:
            self._graph.add_edge(source, target, value, factors=factor_tuple, replica=False)
        return value

    def influence(self, source: str, target: str) -> float:
        """Influence of ``source`` on ``target``; 0.0 when no edge exists.

        Replica links report 0.0, per the paper's convention.
        """
        self._require(source)
        self._require(target)
        if source == target:
            raise InfluenceError("influence of an FCM on itself is undefined")
        if self._graph.has_edge(source, target):
            return self._graph.weight(source, target)
        return 0.0

    def factors(self, source: str, target: str) -> tuple[InfluenceFactor, ...]:
        """The factor tuple recorded on an edge (may be empty)."""
        if not self._graph.has_edge(source, target):
            raise GraphError(f"no influence edge {source!r} -> {target!r}")
        return self._graph.edge_data(source, target).get("factors", ())

    def influence_edges(self) -> list[tuple[str, str, float]]:
        """All non-replica edges as (source, target, weight)."""
        return [
            (src, dst, w)
            for src, dst, w in self._graph.edges()
            if not self._graph.edge_data(src, dst).get("replica", False)
        ]

    def mutual_influence(self, a: str, b: str) -> float:
        """Sum of influences in each direction (H1's merge criterion)."""
        return self.influence(a, b) + self.influence(b, a)

    # ------------------------------------------------------------------
    # Replica links
    # ------------------------------------------------------------------
    def link_replicas(self, a: str, b: str) -> None:
        """Record that ``a`` and ``b`` are replicas of one module.

        Installs symmetric weight-0 edges flagged ``replica=True``.  The
        two FCMs must genuinely be replicas (same ``replica_of`` origin, or
        one the origin of the other) when that metadata is available.
        """
        self._require(a)
        self._require(b)
        if a == b:
            raise InfluenceError("an FCM is not its own replica")
        fa, fb = self._fcms[a], self._fcms[b]
        origins = {fa.replica_of or fa.name, fb.replica_of or fb.name}
        if len(origins) != 1:
            raise InfluenceError(
                f"{a!r} and {b!r} are not replicas of the same original "
                f"(origins {sorted(origins)!r})"
            )
        for src, dst in ((a, b), (b, a)):
            if self._graph.has_edge(src, dst):
                if not self._graph.edge_data(src, dst).get("replica", False):
                    raise InfluenceError(
                        f"influence edge {src!r} -> {dst!r} already exists; "
                        "replicas cannot also influence each other"
                    )
            else:
                self._graph.add_edge(src, dst, 0.0, factors=(), replica=True)

    def is_replica_link(self, a: str, b: str) -> bool:
        return self._graph.has_edge(a, b) and bool(
            self._graph.edge_data(a, b).get("replica", False)
        )

    def replica_groups(self) -> list[set[str]]:
        """Partition of replica-linked FCMs into groups (by origin)."""
        groups: dict[str, set[str]] = {}
        for name, fcm in self._fcms.items():
            origin = fcm.replica_of or name
            if fcm.replica_of is not None or self._has_replica_edge(name):
                groups.setdefault(origin, set()).add(name)
        return [g for g in groups.values() if len(g) > 1]

    def _has_replica_edge(self, name: str) -> bool:
        return any(
            self._graph.edge_data(name, succ).get("replica", False)
            for succ in self._graph.successors(name)
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def as_digraph(self, include_replica_links: bool = False) -> Digraph:
        """A :class:`Digraph` copy of this influence graph.

        Replica links are weight-0 edges; excluding them (the default)
        gives the pure probability matrix used by separation.
        """
        out = Digraph()
        for name in self._fcms:
            out.add_node(name)
        for src, dst, w in self._graph.edges():
            data = self._graph.edge_data(src, dst)
            if data.get("replica", False) and not include_replica_links:
                continue
            out.add_edge(src, dst, w, **data)
        return out

    def copy(self) -> "InfluenceGraph":
        clone = InfluenceGraph()
        clone._graph = self._graph.copy()
        clone._fcms = dict(self._fcms)
        return clone

    def _require(self, name: str) -> None:
        if name not in self._fcms:
            raise InfluenceError(f"FCM {name!r} not in influence graph")
