"""Eq. (3): separation between FCMs.

Separation is "the probability of one FCM *not* affecting another if all
other FCMs at the same level are considered":

    FCM_i o FCM_j = 1 - (P_ij + Σ_k P_ik P_kj + Σ_l Σ_k P_ik P_kl P_lj + ...)

The bracketed sum is the (i, j) entry of ``P + P^2 + P^3 + ...`` where P is
the influence matrix.  The paper notes higher-order terms can be
neglected; we expose the truncation order (default 3, matching the three
explicit terms in the paper) and a closed-form infinite sum when the
series converges.

Because the series is not a probability calculus (paths are summed, not
inclusion-exclusion-combined), the raw sum can exceed 1; separation is
clamped to [0, 1] by default with the raw value also reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InfluenceError
from repro.graphs.matrix import (
    MAX_SERIES_ORDER,
    adjacency_matrix,
    power_series_limit,
    power_series_sum,
    power_series_sum_guarded,
    series_tail_bound,
    spectral_radius,
)
from repro.influence.influence_graph import InfluenceGraph
from repro.obs import current

DEFAULT_ORDER = 3


@dataclass(frozen=True)
class SeparationResult:
    """Separation values for every ordered FCM pair at one level.

    Attributes:
        order: Truncation order used (``None`` for the closed-form limit).
        names: Node ordering of the matrices.
        transitive: The summed transitive-influence matrix
            (``P + ... + P^order``).
        tail_bound: Upper bound on the neglected tail (0 for closed form,
            ``inf`` when the norm criterion fails).
        truncated: True when the convergence guard stopped the series
            early — the terms were not decreasing, so the truncation is
            *not* an approximation of the (divergent) infinite series
            and downstream consumers should treat the values as a lower
            bound on transitive influence only.
        terms_used: Terms actually accumulated (``None`` for the closed
            form).
    """

    order: int | None
    names: tuple[str, ...]
    transitive: np.ndarray
    tail_bound: float
    truncated: bool = False
    terms_used: int | None = None

    def separation(self, source: str, target: str, clamp: bool = True) -> float:
        """``1 - transitive[source, target]``, clamped to [0, 1] by default."""
        value = 1.0 - self.transitive_influence(source, target)
        if clamp:
            value = min(1.0, max(0.0, value))
        return value

    def transitive_influence(self, source: str, target: str) -> float:
        i = self._index(source)
        j = self._index(target)
        if i == j:
            raise InfluenceError("separation of an FCM from itself is undefined")
        return float(self.transitive[i, j])

    def matrix(self, clamp: bool = True) -> np.ndarray:
        """Full separation matrix (diagonal set to NaN: undefined)."""
        sep = 1.0 - self.transitive
        if clamp:
            sep = np.clip(sep, 0.0, 1.0)
        np.fill_diagonal(sep, np.nan)
        return sep

    def _index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise InfluenceError(f"FCM {name!r} not in separation result") from None


def compute_separation(
    graph: InfluenceGraph,
    order: int | None = DEFAULT_ORDER,
) -> SeparationResult:
    """Compute Eq. (3) over all FCM pairs of ``graph``.

    ``order=None`` requests the closed-form infinite sum
    ``(I - P)^{-1} - I`` (requires spectral radius < 1).
    Replica links (weight 0) do not contribute.
    """
    digraph = graph.as_digraph(include_replica_links=False)
    matrix, names = adjacency_matrix(digraph)
    rec = current()
    if order is None:
        transitive = power_series_limit(matrix)
        return SeparationResult(
            order=None,
            names=tuple(names),
            transitive=transitive,
            tail_bound=0.0,
        )
    if order < 1:
        raise InfluenceError("truncation order must be >= 1")
    requested = order
    if order > MAX_SERIES_ORDER:
        order = MAX_SERIES_ORDER
        rec.decision(
            "separation", "order_capped", subject=str(requested),
            reason=f"path length capped at {MAX_SERIES_ORDER}; deeper terms "
            "are either negligible or the series diverges",
            cap=MAX_SERIES_ORDER,
        )
    transitive, terms_used, diverging = power_series_sum_guarded(matrix, order)
    tail = series_tail_bound(matrix, order)
    if diverging:
        rec.decision(
            "separation", "truncated", subject=f"order={requested}",
            reason="power-series terms stopped decreasing (spectral radius "
            ">= 1); sum truncated instead of accumulating a divergent tail",
            terms_used=terms_used,
        )
        if rec.enabled:
            rec.counter("separation_truncations_total").inc()
        tail = float("inf")
    return SeparationResult(
        order=order,
        names=tuple(names),
        transitive=transitive,
        tail_bound=tail,
        truncated=diverging,
        terms_used=terms_used,
    )


def separation(
    graph: InfluenceGraph,
    source: str,
    target: str,
    order: int | None = DEFAULT_ORDER,
    clamp: bool = True,
) -> float:
    """Convenience wrapper: separation of one ordered pair."""
    return compute_separation(graph, order).separation(source, target, clamp=clamp)


def convergence_order(
    graph: InfluenceGraph,
    tolerance: float = 1e-6,
    max_order: int = 64,
) -> int:
    """Smallest truncation order whose neglected tail is below ``tolerance``.

    Substantiates "at some point, higher-order terms are likely to be small
    enough to be neglected" for a concrete graph.  Uses the exact tail —
    the entrywise gap between the closed-form limit and the truncation —
    which exists whenever the spectral radius is < 1 (the infinity-norm
    bound of :func:`series_tail_bound` can be infinite on graphs whose row
    sums exceed 1 even though the series converges).
    """
    import numpy as np

    digraph = graph.as_digraph(include_replica_links=False)
    matrix, _ = adjacency_matrix(digraph)
    radius = spectral_radius(matrix)
    if radius >= 1.0:
        raise InfluenceError(
            f"series diverges (spectral radius {radius:.4f} >= 1); "
            "no truncation order achieves the tolerance"
        )
    limit = power_series_limit(matrix)
    for order in range(1, max_order + 1):
        tail = float(np.max(np.abs(limit - power_series_sum(matrix, order))))
        if tail < tolerance:
            return order
    raise InfluenceError(
        f"exact tail did not reach {tolerance} within order {max_order}"
    )
