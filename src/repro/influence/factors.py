"""Influence factors: the f_1 ... f_n of Eq. (1).

A factor is one mechanism by which a source FCM can affect a target FCM —
parameter passing, a shared global variable, shared memory, message
passing, a timing dependence.  Each factor decomposes into the paper's
three probabilities:

* ``p_occurrence`` (p_{i,1}) — probability of a fault occurring in the
  source FCM, in the context of this factor;
* ``p_transmission`` (p_{i,2}) — probability the fault is transmitted to
  the target over this mechanism (depends on medium and data volume);
* ``p_effect`` (p_{i,3}) — probability the transmitted fault results in a
  fault in the target (estimated by injecting faults into the target).

The factor's overall probability is the product, Eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ProbabilityError
from repro.model.faults import FaultKind


class FactorKind(Enum):
    """Fault-transmission mechanisms the paper discusses, by level."""

    PARAMETER_PASSING = "parameter_passing"  # procedure level, f1
    GLOBAL_VARIABLE = "global_variable"  # procedure level, f2
    SHARED_MEMORY = "shared_memory"  # task/process level, f1
    MESSAGE_PASSING = "message_passing"  # task/process level, f2
    TIMING = "timing"  # task/process level, f3
    RESOURCE_SHARING = "resource_sharing"  # process level


# Default association between transmission mechanisms and the fault kind
# they introduce in the target; used by the fault simulator.
FACTOR_FAULT_KIND: dict[FactorKind, FaultKind] = {
    FactorKind.PARAMETER_PASSING: FaultKind.PARAMETER_PASSING,
    FactorKind.GLOBAL_VARIABLE: FaultKind.GLOBAL_VARIABLE,
    FactorKind.SHARED_MEMORY: FaultKind.SHARED_MEMORY,
    FactorKind.MESSAGE_PASSING: FaultKind.MESSAGE_ERROR,
    FactorKind.TIMING: FaultKind.TIMING,
    FactorKind.RESOURCE_SHARING: FaultKind.MEMORY_FOOTPRINT,
}


def _check_probability(value: float, label: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ProbabilityError(f"{label} must be in [0, 1], got {value}")
    return float(value)


@dataclass(frozen=True)
class InfluenceFactor:
    """One fault factor f_i between a source and a target FCM.

    ``probability`` (Eq. 1) is the product of the three components.  A
    factor may alternatively be built from a directly known probability
    via :meth:`from_probability` (the paper notes relative values often
    suffice).
    """

    kind: FactorKind
    p_occurrence: float
    p_transmission: float
    p_effect: float

    def __post_init__(self) -> None:
        label = self.kind.value
        _check_probability(self.p_occurrence, f"{label}: p_occurrence")
        _check_probability(self.p_transmission, f"{label}: p_transmission")
        _check_probability(self.p_effect, f"{label}: p_effect")

    @property
    def probability(self) -> float:
        """Eq. (1): p_i = p_{i,1} * p_{i,2} * p_{i,3}."""
        return self.p_occurrence * self.p_transmission * self.p_effect

    @classmethod
    def from_probability(cls, kind: FactorKind, probability: float) -> "InfluenceFactor":
        """A factor whose overall probability is given directly.

        The decomposition is degenerate: occurrence carries the whole
        probability, transmission and effect are certain.  This matches the
        paper's worked example, where influences are given as single
        numbers.
        """
        _check_probability(probability, "probability")
        return cls(kind=kind, p_occurrence=probability, p_transmission=1.0, p_effect=1.0)

    def mitigated(self, transmission_scale: float) -> "InfluenceFactor":
        """A copy with p_transmission scaled down by ``transmission_scale``.

        Isolation techniques act chiefly on the transmission component
        (e.g. preemptive scheduling bounds timing-fault transmission,
        §4.2.3); scale must be in [0, 1].
        """
        _check_probability(transmission_scale, "transmission_scale")
        return InfluenceFactor(
            kind=self.kind,
            p_occurrence=self.p_occurrence,
            p_transmission=self.p_transmission * transmission_scale,
            p_effect=self.p_effect,
        )
