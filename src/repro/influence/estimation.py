"""Estimating the components of Eq. (1) from data.

Section 4.2.1 of the paper sketches how each probability is obtained:

* p_{i,1} (fault occurrence) "can be measured from previous usage of that
  FCM.  If the FCM has not been used previously, an equivalent probability
  can be derived by extensive testing" — :func:`estimate_occurrence`.
* p_{i,2} (transmission) "depends on both communication medium and data
  volume" — :class:`MediumModel` / :func:`estimate_transmission`.
* p_{i,3} (resulting fault) "can be determined by injecting faults into
  the target FCM" — :func:`estimate_effect` consumes injection campaign
  counts (the campaigns themselves live in :mod:`repro.faultsim`).

Point estimates use the Laplace (add-one) rule so zero-observation inputs
stay away from the degenerate 0/1 endpoints; Wilson intervals quantify
uncertainty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.errors import InfluenceError, ProbabilityError


@dataclass(frozen=True)
class UsageHistory:
    """Operational record of one FCM: executions and observed faults."""

    executions: int
    faults: int

    def __post_init__(self) -> None:
        if self.executions < 0 or self.faults < 0:
            raise InfluenceError("counts must be non-negative")
        if self.faults > self.executions:
            raise InfluenceError("faults cannot exceed executions")


def estimate_occurrence(history: UsageHistory, smoothing: float = 1.0) -> float:
    """p_{i,1} from usage history, with additive smoothing.

    ``(faults + s) / (executions + 2 s)`` — the Laplace estimate for
    ``s = 1``.  ``smoothing=0`` gives the raw maximum-likelihood ratio
    (requires at least one execution).
    """
    if smoothing < 0:
        raise InfluenceError("smoothing must be >= 0")
    if smoothing == 0 and history.executions == 0:
        raise InfluenceError("raw estimate requires at least one execution")
    return (history.faults + smoothing) / (history.executions + 2 * smoothing)


class Medium(Enum):
    """Communication media, ordered roughly by corruption exposure."""

    PARAMETER = "parameter"  # call-by-value parameter passing
    MESSAGE = "message"  # checksummed message passing
    GLOBAL_VARIABLE = "global_variable"  # unprotected global
    SHARED_MEMORY = "shared_memory"  # shared memory region


# Per-unit-volume transmission hazard of each medium.  The paper: "if data
# is being transmitted using shared memory, then the probability of the
# memory being corrupt can be determined a priori"; these defaults encode
# the qualitative ordering of §4.2.2 (globals worse than parameters) and
# can be overridden per system.
DEFAULT_MEDIUM_HAZARD: dict[Medium, float] = {
    Medium.PARAMETER: 0.002,
    Medium.MESSAGE: 0.005,
    Medium.GLOBAL_VARIABLE: 0.02,
    Medium.SHARED_MEMORY: 0.01,
}


@dataclass(frozen=True)
class MediumModel:
    """Transmission model: ``p = 1 - (1 - hazard)^volume``.

    ``hazard`` is the per-data-unit corruption probability of the medium;
    ``volume`` scales exposure, so bulk transfers over a risky medium
    dominate — exactly the data-volume dependence the paper requires.
    """

    hazard: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.hazard <= 1.0:
            raise ProbabilityError(f"hazard must be in [0, 1], got {self.hazard}")

    def transmission_probability(self, volume: float) -> float:
        if volume < 0:
            raise InfluenceError("volume must be >= 0")
        return 1.0 - (1.0 - self.hazard) ** volume


def estimate_transmission(
    medium: Medium,
    volume: float,
    hazards: dict[Medium, float] | None = None,
) -> float:
    """p_{i,2} from the medium kind and data volume."""
    table = hazards if hazards is not None else DEFAULT_MEDIUM_HAZARD
    try:
        hazard = table[medium]
    except KeyError:
        raise InfluenceError(f"no hazard configured for medium {medium}") from None
    return MediumModel(hazard).transmission_probability(volume)


@dataclass(frozen=True)
class InjectionOutcome:
    """Result of a fault-injection campaign against a target FCM."""

    injections: int
    target_faults: int

    def __post_init__(self) -> None:
        if self.injections <= 0:
            raise InfluenceError("campaign must contain at least one injection")
        if not 0 <= self.target_faults <= self.injections:
            raise InfluenceError("target_faults must be within [0, injections]")


def estimate_effect(outcome: InjectionOutcome, smoothing: float = 1.0) -> float:
    """p_{i,3}: probability a faulty input causes a target fault."""
    if smoothing < 0:
        raise InfluenceError("smoothing must be >= 0")
    return (outcome.target_faults + smoothing) / (outcome.injections + 2 * smoothing)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used to report confidence bounds on every estimated probability
    component.  ``z=1.96`` gives ~95% coverage.
    """
    if trials <= 0:
        raise InfluenceError("trials must be positive")
    if not 0 <= successes <= trials:
        raise InfluenceError("successes must be within [0, trials]")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(
        p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials)
    )
    return (max(0.0, centre - half), min(1.0, centre + half))
