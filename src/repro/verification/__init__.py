"""Verification: non-interference battery, system audits, R5 obligations.

R5 retest obligations live in :mod:`repro.composition.retest`; this
package hosts the analytic checks.
"""

from repro.verification.checks import ALLOWED_FACTORS, AuditReport, audit_system
from repro.verification.noninterference import (
    NonInterferenceReport,
    verify_noninterference,
)

__all__ = [
    "ALLOWED_FACTORS",
    "AuditReport",
    "NonInterferenceReport",
    "audit_system",
    "verify_noninterference",
]
