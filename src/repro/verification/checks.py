"""The full design-audit battery.

Ties together the structural audits (hierarchy rules), the analytic
non-interference checks, and the fault-level discipline check ("obtaining
isolation of fault types into fixed levels of a design/implementation
hierarchy") into one report over a :class:`SoftwareSystem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.influence.factors import FactorKind
from repro.model.fcm import Level
from repro.model.system import SoftwareSystem
from repro.verification.noninterference import (
    NonInterferenceReport,
    verify_noninterference,
)

# Which factor kinds are legitimate at which level: procedure-level
# mechanisms must not appear between processes, and vice versa.  Task
# techniques "are also applicable at the process level", so the shared
# kinds list both levels.
ALLOWED_FACTORS: dict[Level, frozenset[FactorKind]] = {
    Level.PROCEDURE: frozenset(
        {FactorKind.PARAMETER_PASSING, FactorKind.GLOBAL_VARIABLE}
    ),
    Level.TASK: frozenset(
        {
            FactorKind.SHARED_MEMORY,
            FactorKind.MESSAGE_PASSING,
            FactorKind.TIMING,
        }
    ),
    Level.PROCESS: frozenset(
        {
            FactorKind.SHARED_MEMORY,
            FactorKind.MESSAGE_PASSING,
            FactorKind.TIMING,
            FactorKind.RESOURCE_SHARING,
        }
    ),
}


@dataclass
class AuditReport:
    """Everything the battery found, grouped by category."""

    structural: list[str] = field(default_factory=list)
    level_discipline: list[str] = field(default_factory=list)
    noninterference: dict[Level, NonInterferenceReport] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return (
            not self.structural
            and not self.level_discipline
            and all(report.passed for report in self.noninterference.values())
        )

    def describe(self) -> list[str]:
        lines = list(self.structural)
        lines.extend(self.level_discipline)
        for level, report in self.noninterference.items():
            lines.extend(f"[{level.name}] {msg}" for msg in report.describe())
        return lines


def audit_system(
    system: SoftwareSystem,
    influence_budget: float = 1.0,
    separation_floor: float = 0.0,
) -> AuditReport:
    """Run every check against ``system``."""
    report = AuditReport()
    report.structural = system.validate()

    for level, graph in system.influence.items():
        allowed = ALLOWED_FACTORS.get(level, frozenset(FactorKind))
        for src, dst, _w in graph.influence_edges():
            for factor in graph.factors(src, dst):
                if factor.kind not in allowed:
                    report.level_discipline.append(
                        f"factor {factor.kind.value} on {src} -> {dst} is "
                        f"not a {level.name}-level mechanism"
                    )
        report.noninterference[level] = verify_noninterference(
            graph,
            influence_budget=influence_budget,
            separation_floor=separation_floor,
        )
    return report
