"""Non-interference verification between FCMs.

"Ensuring a desired level of non-interference of operation between SW
modules, and providing effective guidelines for support of
non-interference" (§1.1).  Operationally we verify that at each level:

* every influence an FCM exerts stays below a per-level budget;
* every pair's *separation* (Eq. 3) stays above a threshold;
* replica pairs are perfectly separated (no influence path at all).

"Once an FCM has been created, verification tests are run to ensure that
its interactions with other FCMs do not violate the restrictions and
requirements of a FCM" (§3) — :func:`verify_noninterference` is that
battery in analytic form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.algorithms import has_path
from repro.influence.influence_graph import InfluenceGraph
from repro.influence.separation import compute_separation


@dataclass(frozen=True)
class NonInterferenceReport:
    """Outcome of the non-interference battery."""

    influence_budget: float
    separation_floor: float
    over_budget: tuple[tuple[str, str, float], ...]
    under_separated: tuple[tuple[str, str, float], ...]
    replica_paths: tuple[tuple[str, str], ...]

    @property
    def passed(self) -> bool:
        return not (self.over_budget or self.under_separated or self.replica_paths)

    def describe(self) -> list[str]:
        lines = []
        for src, dst, value in self.over_budget:
            lines.append(
                f"influence {src} -> {dst} = {value:.3f} exceeds budget "
                f"{self.influence_budget:.3f}"
            )
        for src, dst, value in self.under_separated:
            lines.append(
                f"separation {src} o {dst} = {value:.3f} below floor "
                f"{self.separation_floor:.3f}"
            )
        for src, dst in self.replica_paths:
            lines.append(f"replicas {src} and {dst} are not isolated")
        return lines


def verify_noninterference(
    graph: InfluenceGraph,
    influence_budget: float = 1.0,
    separation_floor: float = 0.0,
    order: int = 3,
) -> NonInterferenceReport:
    """Run the analytic non-interference battery at one level.

    ``influence_budget``: maximum tolerated direct influence per edge
    (1.0 disables the check).  ``separation_floor``: minimum tolerated
    pairwise separation (0.0 disables).  Replica isolation is always
    checked: no directed influence path may connect two replicas of one
    module (a path would let one replica's fault reach its peer, defeating
    the replication).
    """
    over_budget = [
        (src, dst, w)
        for src, dst, w in graph.influence_edges()
        if w > influence_budget + 1e-12
    ]

    under_separated: list[tuple[str, str, float]] = []
    names = graph.fcm_names()
    if separation_floor > 0.0 and len(names) > 1:
        result = compute_separation(graph, order=order)
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                value = result.separation(src, dst)
                if value < separation_floor - 1e-12:
                    under_separated.append((src, dst, value))

    replica_paths: list[tuple[str, str]] = []
    digraph = graph.as_digraph(include_replica_links=False)
    for group in graph.replica_groups():
        members = sorted(group)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if has_path(digraph, a, b) or has_path(digraph, b, a):
                    replica_paths.append((a, b))

    return NonInterferenceReport(
        influence_budget=influence_budget,
        separation_floor=separation_floor,
        over_budget=tuple(over_budget),
        under_separated=tuple(under_separated),
        replica_paths=tuple(replica_paths),
    )
