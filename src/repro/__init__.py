"""repro — Dependability-Driven Software Integration (DDSI).

A reproduction of "A Framework for Dependability Driven Software
Integration" (Suri, Ghosh & Marlowe, ICDCS 1998): fault containment
modules, rules of composition, influence/separation metrics, and HW/SW
allocation heuristics, plus the substrates (graphs, scheduling, fault
simulation) needed to exercise them.

Quick start::

    from repro import (
        paper_system, fully_connected, IntegrationFramework, FrameworkOptions
    )

    outcome = IntegrationFramework(paper_system()).integrate(fully_connected(6))
    print(outcome.summary())

Subpackages:

* ``repro.model`` — FCMs, attributes, fault taxonomy, hierarchy
* ``repro.composition`` — rules R1-R5, merging/grouping, retest tracking
* ``repro.influence`` — Eqs. (1)-(4), separation, estimation, reduction
* ``repro.scheduling`` — EDF/RM feasibility, timing-fault simulation
* ``repro.allocation`` — SW/HW graphs, heuristics H1-H3, mapping, goodness
* ``repro.faultsim`` — Monte-Carlo fault propagation and campaigns
* ``repro.resilience`` — HW-failure injection, degraded-mode planning,
  recovery policies (restart/retry/failover)
* ``repro.verification`` — non-interference battery, system audit
* ``repro.metrics`` — containment/dependability measures, text reports
* ``repro.workloads`` — paper example, avionics + automotive scenarios,
  generators
* ``repro.core`` — the end-to-end :class:`IntegrationFramework`
* ``repro.analysis`` — trade-off sweeps, codesign, exact optima, annealing
* ``repro.obs`` — tracing, metrics, decision events (``--trace``/``--metrics``)
* ``repro.extensions`` — the OO class level (paper footnote 4)
* ``repro.io`` — JSON round-trip, Graphviz export; ``repro.cli`` — the
  ``python -m repro`` command line
"""

from repro.core import (
    FrameworkOptions,
    Heuristic,
    IntegrationFramework,
    IntegrationOutcome,
    MappingApproach,
    integrate,
)
from repro.allocation import (
    ClusterState,
    CombinationPolicy,
    HWGraph,
    HWNode,
    expand_replication,
    fully_connected,
    initial_state,
)
from repro.influence import InfluenceFactor, InfluenceGraph, FactorKind
from repro.model import (
    FCM,
    AttributeSet,
    FCMHierarchy,
    Level,
    SecurityLevel,
    SoftwareSystem,
    TimingConstraint,
)
from repro.resilience import (
    DegradationPlan,
    FailureEvent,
    FailureKind,
    FailureScenario,
    ResilienceReport,
    plan_degradation,
    run_resilience_campaign,
)
from repro.workloads import avionics_system, paper_system, random_system

__version__ = "1.0.0"

__all__ = [
    "AttributeSet",
    "ClusterState",
    "CombinationPolicy",
    "DegradationPlan",
    "FCM",
    "FCMHierarchy",
    "FactorKind",
    "FailureEvent",
    "FailureKind",
    "FailureScenario",
    "FrameworkOptions",
    "HWGraph",
    "HWNode",
    "Heuristic",
    "InfluenceFactor",
    "InfluenceGraph",
    "IntegrationFramework",
    "IntegrationOutcome",
    "Level",
    "MappingApproach",
    "ResilienceReport",
    "SecurityLevel",
    "SoftwareSystem",
    "TimingConstraint",
    "__version__",
    "avionics_system",
    "expand_replication",
    "fully_connected",
    "initial_state",
    "integrate",
    "paper_system",
    "plan_degradation",
    "random_system",
    "run_resilience_campaign",
]
