"""R5 retest-obligation tracking.

"Whenever a FCM is modified, its parent FCM, and only its parent, also
needs to be tested, including the interfaces with its siblings."  The
hierarchy's level-of-abstraction property makes this sound: faults are
allowed to propagate only in predefined ways at each level, so a change
inside an FCM can affect at most its parent's composition and its sibling
interfaces — never grandparents or unrelated modules.

:class:`RetestTracker` accumulates obligations as modifications are
reported and discharges them as tests are recorded, supporting the
paper's "SW evolution and recertification" goal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import VerificationError
from repro.composition.rules import retest_set
from repro.model.hierarchy import FCMHierarchy


class ObligationKind(Enum):
    MODULE = "module"  # retest the FCM itself
    PARENT = "parent"  # retest the parent's composition
    INTERFACE = "interface"  # retest interface with one sibling


@dataclass(frozen=True)
class Obligation:
    """One outstanding retest obligation."""

    kind: ObligationKind
    subject: str  # FCM to test
    counterpart: str | None = None  # sibling, for INTERFACE obligations

    def describe(self) -> str:
        if self.kind is ObligationKind.INTERFACE:
            return f"retest interface {self.subject} <-> {self.counterpart}"
        if self.kind is ObligationKind.PARENT:
            return f"retest parent composition {self.subject}"
        return f"retest module {self.subject}"


@dataclass
class RetestTracker:
    """Accumulates and discharges R5 retest obligations."""

    hierarchy: FCMHierarchy
    pending: set[Obligation] = field(default_factory=set)
    discharged: list[Obligation] = field(default_factory=list)

    def modified(self, name: str) -> tuple[Obligation, ...]:
        """Report that ``name`` was modified; returns the new obligations.

        Derives the R5 set: the module, its parent, and every sibling
        interface.  Obligations already pending are not duplicated.
        """
        members = retest_set(self.hierarchy, name)
        new: list[Obligation] = [Obligation(ObligationKind.MODULE, name)]
        parent = self.hierarchy.parent_of(name)
        if parent is not None:
            new.append(Obligation(ObligationKind.PARENT, parent.name))
            for sibling in self.hierarchy.siblings_of(name):
                new.append(
                    Obligation(ObligationKind.INTERFACE, name, sibling.name)
                )
        assert set(o.subject for o in new) <= set(members) | {name}
        added = tuple(o for o in new if o not in self.pending)
        self.pending.update(added)
        return added

    def record_test(self, obligation: Obligation) -> None:
        """Discharge one obligation; raises if it was not pending."""
        if obligation not in self.pending:
            raise VerificationError(f"not pending: {obligation.describe()}")
        self.pending.discard(obligation)
        self.discharged.append(obligation)

    def discharge_module(self, name: str) -> int:
        """Discharge every pending obligation whose subject is ``name``.

        Returns the number discharged.  (Convenience for "we reran the
        full test suite of this FCM".)
        """
        matching = [o for o in self.pending if o.subject == name]
        for obligation in matching:
            self.record_test(obligation)
        return len(matching)

    def is_clean(self) -> bool:
        return not self.pending

    def pending_for(self, name: str) -> list[Obligation]:
        return sorted(
            (o for o in self.pending if o.subject == name or o.counterpart == name),
            key=lambda o: (o.kind.value, o.subject, o.counterpart or ""),
        )
