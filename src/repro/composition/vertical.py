"""Vertical integration: grouping FCMs into higher-level FCMs.

"Grouping allows FCMs to retain their mutual interface by simply
including each procedure in a single task" — the children keep their
identity and boundaries; a new parent FCM is created one level up whose
attributes dominate its children's (§4.3).

Also implements the two escapes from R2/R3 the paper describes (§4.1):

* duplication — clone a child subtree so each parent owns a private copy;
* parent integration (R4) — merge the parents so the children become
  siblings and may then communicate or merge.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import CompositionError, RuleViolation
from repro.composition.history import IntegrationLog, OperationKind
from repro.composition.rules import (
    check_r1_grouping,
    check_r2_unparented,
    check_r4_cross_parent,
)
from repro.model.attributes import AttributeSet, combine_all
from repro.model.fcm import FCM, Level
from repro.model.hierarchy import FCMHierarchy


def group(
    hierarchy: FCMHierarchy,
    children: Iterable[str],
    parent_name: str,
    extra_attributes: AttributeSet | None = None,
    log: IntegrationLog | None = None,
) -> FCM:
    """Create a parent FCM one level up containing ``children`` (R1, R2).

    The parent's attributes are the §4.3 combination of the children's
    (plus optional ``extra_attributes`` of the parent itself, e.g. a
    process-level memory budget expressed as criticality floor).
    Returns the new parent FCM.
    """
    child_list = list(dict.fromkeys(children))
    if not child_list:
        raise CompositionError("grouping requires at least one child")
    child_levels = {hierarchy.get(name).level for name in child_list}
    if len(child_levels) != 1:
        raise CompositionError(
            f"children span levels {sorted(level.name for level in child_levels)}"
        )
    child_level = child_levels.pop()
    parent_level = child_level.parent_level
    if parent_level is None:
        raise RuleViolation("R1", f"{child_level.name} FCMs have no higher level")

    for checker in (
        lambda: check_r1_grouping(hierarchy, child_list, parent_level),
        lambda: check_r2_unparented(hierarchy, child_list),
    ):
        violation = checker()
        if violation is not None:
            raise violation

    attrs = combine_all([hierarchy.get(name).attributes for name in child_list])
    if extra_attributes is not None:
        attrs = attrs.combine(extra_attributes)
    parent = hierarchy.add(FCM(parent_name, parent_level, attrs))
    for name in child_list:
        hierarchy.attach(name, parent_name)
    if log is not None:
        log.record(
            OperationKind.GROUP,
            inputs=tuple(child_list),
            outputs=(parent_name,),
            rules_checked=("R1", "R2"),
        )
    return parent


def duplicate_child_for(
    hierarchy: FCMHierarchy,
    child: str,
    new_parent: str,
    suffix: str | None = None,
    log: IntegrationLog | None = None,
) -> FCM:
    """R2 escape: give ``new_parent`` its own copy of ``child``'s subtree.

    "If two tasks require the same procedure, then a copy of the procedure
    can be inserted separately into each.  This method has high overhead,
    and is generally not preferred" — but is the approach of choice for
    widely-called utility functions.  The clone is named with ``suffix``
    (default ``"_for_<parent>"``).
    """
    child_fcm = hierarchy.get(child)
    parent_fcm = hierarchy.get(new_parent)
    if child_fcm.level.parent_level is not parent_fcm.level:
        raise RuleViolation(
            "R1",
            f"duplicate of {child!r} ({child_fcm.level.name}) cannot attach "
            f"to {new_parent!r} ({parent_fcm.level.name})",
        )
    if not child_fcm.stateless and child_fcm.level is Level.PROCEDURE:
        raise CompositionError(
            f"procedure {child!r} is stateful; only stateless procedures "
            "may be freely replicated (system model §2)"
        )
    clone = hierarchy.duplicate_subtree(
        child, suffix or f"_for_{new_parent}", parent=new_parent
    )
    if log is not None:
        log.record(
            OperationKind.DUPLICATE,
            inputs=(child,),
            outputs=(clone.name,),
            rules_checked=("R1", "R2"),
            note=f"duplicated for parent {new_parent}",
        )
    return clone


def integrate_parents(
    hierarchy: FCMHierarchy,
    first_child: str,
    second_child: str,
    merged_parent_name: str,
    log: IntegrationLog | None = None,
) -> FCM:
    """R4: integrate the parents of two children that must interact.

    "If two tasks in different processes need to communicate, all tasks of
    the two parent processes can be combined into one parent FCM."  The
    two parents are removed; a single parent FCM with the combined
    attributes adopts every child of both.  The two children become
    siblings, so direct communication (and future merging, R3) is allowed.
    """
    violation = check_r4_cross_parent(hierarchy, first_child, second_child)
    if violation is not None:
        raise violation
    parent_a = hierarchy.parent_of(first_child)
    parent_b = hierarchy.parent_of(second_child)
    assert parent_a is not None and parent_b is not None  # checked above
    if hierarchy.parent_of(parent_a.name) is not None or hierarchy.parent_of(parent_b.name) is not None:
        # Integrating parents that themselves have parents would require
        # integrating the grandparents too (R4 applied recursively); keep
        # the operation explicit one level at a time.
        raise CompositionError(
            "parents with parents of their own must be integrated from the "
            "top down (apply R4 at the higher level first)"
        )

    children_a = [c.name for c in hierarchy.children_of(parent_a.name)]
    children_b = [c.name for c in hierarchy.children_of(parent_b.name)]
    merged_attrs = parent_a.attributes.combine(parent_b.attributes)

    for child in children_a + children_b:
        hierarchy.detach(child)
    hierarchy.remove(parent_a.name)
    hierarchy.remove(parent_b.name)
    merged = hierarchy.add(FCM(merged_parent_name, parent_a.level, merged_attrs))
    for child in children_a + children_b:
        hierarchy.attach(child, merged_parent_name)
    if log is not None:
        log.record(
            OperationKind.INTEGRATE_PARENTS,
            inputs=(parent_a.name, parent_b.name),
            outputs=(merged_parent_name,),
            rules_checked=("R4",),
            note=f"children {first_child} and {second_child} needed integration",
        )
    return merged
