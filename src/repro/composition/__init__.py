"""Composition engine: rules R1-R5, vertical/horizontal integration."""

from repro.composition.history import (
    IntegrationLog,
    IntegrationRecord,
    OperationKind,
)
from repro.composition.horizontal import merge
from repro.composition.retest import Obligation, ObligationKind, RetestTracker
from repro.composition.rules import (
    RULEBOOK,
    RuleText,
    check_r1_grouping,
    check_r2_unparented,
    check_r3_siblings,
    check_r4_cross_parent,
    retest_set,
)
from repro.composition.vertical import duplicate_child_for, group, integrate_parents

__all__ = [
    "IntegrationLog",
    "IntegrationRecord",
    "Obligation",
    "ObligationKind",
    "OperationKind",
    "RULEBOOK",
    "RetestTracker",
    "RuleText",
    "check_r1_grouping",
    "check_r2_unparented",
    "check_r3_siblings",
    "check_r4_cross_parent",
    "duplicate_child_for",
    "group",
    "integrate_parents",
    "merge",
    "retest_set",
]
