"""The rules of composition, R1-R5 (§4.1).

R1  Any number of FCMs at one level can be integrated to form an FCM at
    the next higher level (layered integration DAG).
R2  The integration DAG is a tree — no FCM has two parents, no sharing of
    a lower-level FCM; reuse requires separate compilation (duplication)
    per caller.
R3  Future integration by merging: an FCM can be merged only with its
    siblings.
R4  If children of different parents are integrated, their parents must be
    integrated.
R5  Whenever an FCM is modified, its parent FCM — and only its parent —
    also needs to be tested, including the interfaces with its siblings.

This module provides *checkers*: pure predicates over a hierarchy and a
proposed operation, each returning None on success or a
:class:`~repro.errors.RuleViolation` describing the violation.  The
operations in :mod:`repro.composition.vertical` and
:mod:`repro.composition.horizontal` consult them before mutating.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import RuleViolation
from repro.model.fcm import Level
from repro.model.hierarchy import FCMHierarchy
from repro.obs import current


def _checked(rule: str, violation: RuleViolation | None) -> RuleViolation | None:
    """Record one rule firing (outcome-labeled counter; decisions for
    violations) and pass the checker's verdict through."""
    rec = current()
    if rec.enabled:
        outcome = "ok" if violation is None else "violation"
        rec.counter("rule_checks_total").inc(rule=rule, outcome=outcome)
        if violation is not None:
            rec.decision("rule", "violation", subject=rule, reason=str(violation))
    return violation


@dataclass(frozen=True)
class RuleText:
    """Identifier and statement of one composition rule."""

    rule: str
    statement: str


RULEBOOK: dict[str, RuleText] = {
    "R1": RuleText("R1", "Any number of FCMs at one level can be integrated to form an FCM at the next higher level."),
    "R2": RuleText("R2", "The integration DAG is a tree: every FCM has at most one parent and is never shared."),
    "R3": RuleText("R3", "An FCM can be merged only with its siblings."),
    "R4": RuleText("R4", "If children of different parents are integrated, their parents must be integrated."),
    "R5": RuleText("R5", "Whenever an FCM is modified, its parent FCM, and only its parent, also needs to be tested, including the interfaces with its siblings."),
}


def check_r1_grouping(
    hierarchy: FCMHierarchy,
    children: Iterable[str],
    parent_level: Level,
) -> RuleViolation | None:
    """R1: every child must sit exactly one level below ``parent_level``."""
    expected = parent_level.child_level
    if expected is None:
        return _checked(
            "R1", RuleViolation("R1", f"{parent_level.name} has no child level")
        )
    for name in children:
        fcm = hierarchy.get(name)
        if fcm.level is not expected:
            return _checked(
                "R1",
                RuleViolation(
                    "R1",
                    f"{name!r} is a {fcm.level.name} FCM; a {parent_level.name} "
                    f"parent integrates {expected.name} FCMs only",
                ),
            )
    return _checked("R1", None)


def check_r2_unparented(
    hierarchy: FCMHierarchy,
    children: Iterable[str],
) -> RuleViolation | None:
    """R2: none of the FCMs to be grouped may already have a parent."""
    for name in children:
        parent = hierarchy.parent_of(name)
        if parent is not None:
            return _checked(
                "R2",
                RuleViolation(
                    "R2",
                    f"{name!r} already belongs to {parent.name!r}; an FCM cannot "
                    "be shared — duplicate it, or integrate the parents (R4)",
                ),
            )
    return _checked("R2", None)


def check_r3_siblings(
    hierarchy: FCMHierarchy,
    names: Iterable[str],
) -> RuleViolation | None:
    """R3: all FCMs to be merged must share one parent (or all be roots
    at the same level — top-level siblings of the forest)."""
    name_list = list(names)
    if len(name_list) < 2:
        return _checked(
            "R3", RuleViolation("R3", "merging requires at least two FCMs")
        )
    levels = {hierarchy.get(name).level for name in name_list}
    if len(levels) != 1:
        return _checked(
            "R3",
            RuleViolation(
                "R3",
                f"cannot merge across levels {sorted(level.name for level in levels)}",
            ),
        )
    parents = {
        parent.name if (parent := hierarchy.parent_of(name)) is not None else None
        for name in name_list
    }
    if len(parents) != 1:
        return _checked(
            "R3",
            RuleViolation(
                "R3",
                f"FCMs {name_list!r} are not siblings (parents: "
                f"{sorted(map(repr, parents))}); to integrate children of "
                "different parents, first integrate the parents (R4)",
            ),
        )
    return _checked("R3", None)


def check_r4_cross_parent(
    hierarchy: FCMHierarchy,
    first: str,
    second: str,
) -> RuleViolation | None:
    """R4 precondition check: confirms the two FCMs *do* have different
    parents (so parent integration is the applicable remedy)."""
    p1 = hierarchy.parent_of(first)
    p2 = hierarchy.parent_of(second)
    if p1 is None or p2 is None:
        return _checked(
            "R4",
            RuleViolation(
                "R4",
                f"{first!r} and {second!r} must both have parents to integrate",
            ),
        )
    if p1.name == p2.name:
        return _checked(
            "R4",
            RuleViolation(
                "R4",
                f"{first!r} and {second!r} already share parent {p1.name!r}; "
                "merge them directly (R3)",
            ),
        )
    return _checked("R4", None)


def retest_set(hierarchy: FCMHierarchy, modified: str) -> tuple[str, ...]:
    """R5: the FCMs that must be retested after ``modified`` changes.

    The modified FCM itself, its parent (and only its parent — not
    grandparents), and the sibling *interfaces* — represented by the
    sibling names whose interfaces with the modified FCM need retest.
    """
    hierarchy.get(modified)
    out = [modified]
    parent = hierarchy.parent_of(modified)
    if parent is not None:
        out.append(parent.name)
        out.extend(s.name for s in hierarchy.siblings_of(modified))
    rec = current()
    if rec.enabled:
        rec.counter("rule_checks_total").inc(rule="R5", outcome="ok")
        rec.decision(
            "rule",
            "retest",
            subject="R5",
            reason=f"modification of {modified!r} requires retesting "
            f"{len(out)} FCMs",
            fcms=list(out),
        )
    return tuple(out)
