"""Provenance log of integration operations.

Every composition operation records what it did, which rules it checked,
and which FCMs it produced.  The verification engine replays this log to
derive retest obligations (R5), and reports include it so an evolving
design stays auditable — the paper's motivation of "supporting SW
evolution and recertification".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum


class OperationKind(Enum):
    GROUP = "group"  # vertical: children -> new parent
    MERGE = "merge"  # horizontal: siblings -> one FCM
    DUPLICATE = "duplicate"  # R2/R3 escape: clone a subtree
    INTEGRATE_PARENTS = "integrate_parents"  # R4 remedy
    MODIFY = "modify"  # attribute or body change
    REPLICATE = "replicate"  # FT expansion


@dataclass(frozen=True)
class IntegrationRecord:
    """One entry in the integration log."""

    sequence: int
    kind: OperationKind
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    rules_checked: tuple[str, ...]
    note: str = ""


@dataclass
class IntegrationLog:
    """Append-only record of composition operations."""

    records: list[IntegrationRecord] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def record(
        self,
        kind: OperationKind,
        inputs: tuple[str, ...],
        outputs: tuple[str, ...],
        rules_checked: tuple[str, ...] = (),
        note: str = "",
    ) -> IntegrationRecord:
        entry = IntegrationRecord(
            sequence=next(self._counter),
            kind=kind,
            inputs=inputs,
            outputs=outputs,
            rules_checked=rules_checked,
            note=note,
        )
        self.records.append(entry)
        return entry

    def operations_of_kind(self, kind: OperationKind) -> list[IntegrationRecord]:
        return [r for r in self.records if r.kind is kind]

    def touching(self, name: str) -> list[IntegrationRecord]:
        """All records that mention ``name`` as input or output."""
        return [r for r in self.records if name in r.inputs or name in r.outputs]

    def __len__(self) -> int:
        return len(self.records)
