"""Horizontal integration: merging sibling FCMs.

"In merging, boundaries between constituent FCMs disappear; for example,
extracting the code of two or more procedures and merging to create one
procedure with all of the original functionality. ... Merging is used
only when two FCMs have common functionality, and the overhead of
maintaining separate FCMs is unnecessary."

Merging obeys R3 (siblings only).  The merged FCM:

* carries the §4.3 attribute combination of the constituents;
* adopts all their children (the constituents' *boundaries* vanish, but
  their children remain FCMs with their own boundaries);
* replaces the constituents in the level's influence graph, with Eq. (4)
  applied to combine edges toward every external neighbour.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import CompositionError
from repro.composition.history import IntegrationLog, OperationKind
from repro.composition.rules import check_r3_siblings
from repro.influence.cluster import cluster_influence_on, influence_on_cluster
from repro.influence.influence_graph import InfluenceGraph
from repro.model.attributes import combine_all
from repro.model.fcm import FCM
from repro.model.hierarchy import FCMHierarchy


def merge(
    hierarchy: FCMHierarchy,
    siblings: Iterable[str],
    merged_name: str,
    influence_graph: InfluenceGraph | None = None,
    log: IntegrationLog | None = None,
) -> FCM:
    """Merge sibling FCMs into one FCM at the same level (R3).

    When ``influence_graph`` (the graph at the siblings' level) is given,
    the merged node replaces the constituents and Eq. (4) combines their
    edges; a replica link between any constituent and an outside FCM
    transfers to the merged node, and merging two replicas of the same
    module is rejected outright.
    """
    names = list(dict.fromkeys(siblings))
    violation = check_r3_siblings(hierarchy, names)
    if violation is not None:
        raise violation

    if influence_graph is not None:
        for a in names:
            for b in names:
                if a < b and influence_graph.is_replica_link(a, b):
                    raise CompositionError(
                        f"{a!r} and {b!r} are replicas of one module and "
                        "must remain separate FCMs"
                    )

    fcms = [hierarchy.get(name) for name in names]
    level = fcms[0].level
    merged_attrs = combine_all([fcm.attributes for fcm in fcms])
    # Replica lineage: merging a replica with ordinary siblings keeps the
    # replica lineage (the merged node still must avoid its peers).  An FCM
    # that is itself the *origin* of a replica group (replica_of=None but
    # replica-linked in the influence graph) contributes its own name.
    origins = {fcm.replica_of for fcm in fcms if fcm.replica_of is not None}
    if influence_graph is not None:
        for fcm in fcms:
            if fcm.replica_of is None and influence_graph.has_fcm(fcm.name):
                if any(
                    influence_graph.is_replica_link(fcm.name, other)
                    for other in influence_graph.fcm_names()
                    if other != fcm.name
                ):
                    origins.add(fcm.name)
    if len(origins) > 1:
        raise CompositionError(
            f"cannot merge replicas of different modules: {sorted(origins)!r}"
        )
    replica_of = origins.pop() if origins else None

    parent = hierarchy.parent_of(names[0])
    adopted: list[str] = []
    for name in names:
        for child in hierarchy.children_of(name):
            adopted.append(child.name)
            hierarchy.detach(child.name)
    for name in names:
        if parent is not None:
            hierarchy.detach(name)
        hierarchy.remove(name)
    merged = hierarchy.add(
        FCM(merged_name, level, merged_attrs, replica_of=replica_of),
        parent=parent.name if parent is not None else None,
    )
    for child in adopted:
        hierarchy.attach(child, merged_name)

    if influence_graph is not None:
        _merge_in_influence_graph(influence_graph, names, merged)

    if log is not None:
        log.record(
            OperationKind.MERGE,
            inputs=tuple(names),
            outputs=(merged_name,),
            rules_checked=("R3",),
        )
    return merged


def _merge_in_influence_graph(
    graph: InfluenceGraph,
    names: list[str],
    merged: FCM,
) -> None:
    """Replace ``names`` with ``merged`` in the influence graph (Eq. 4)."""
    present = [n for n in names if graph.has_fcm(n)]
    if not present:
        return
    outside = [n for n in graph.fcm_names() if n not in present]
    outgoing = {t: cluster_influence_on(graph, present, t) for t in outside}
    incoming = {s: influence_on_cluster(graph, s, present) for s in outside}
    replica_partners = [
        t for t in outside
        if any(graph.is_replica_link(m, t) for m in present)
    ]
    for name in present:
        graph.remove_fcm(name)
    graph.add_fcm(merged)
    for target, value in outgoing.items():
        if value > 0.0:
            graph.set_influence(merged.name, target, value)
    for source, value in incoming.items():
        if value > 0.0:
            graph.set_influence(source, merged.name, value)
    for partner in replica_partners:
        graph.link_replicas(merged.name, partner)
