"""Core facade: the end-to-end integration pipeline."""

from repro.core.framework import (
    FrameworkOptions,
    Heuristic,
    IntegrationFramework,
    MappingApproach,
    integrate,
)
from repro.core.results import IntegrationOutcome

__all__ = [
    "FrameworkOptions",
    "Heuristic",
    "IntegrationFramework",
    "IntegrationOutcome",
    "MappingApproach",
    "integrate",
]
