"""Typed results of the end-to-end integration pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.allocation.goodness import MappingScore
from repro.allocation.heuristics.base import CondensationResult
from repro.allocation.mapping import Mapping
from repro.verification.checks import AuditReport


@dataclass
class IntegrationOutcome:
    """Everything the pipeline produced, stage by stage.

    Attributes:
        system_name: Name of the integrated system.
        audit: Pre-allocation design audit (structure, non-interference).
        condensation: The SW-graph reduction trace.
        mapping: The SW->HW assignment.
        score: Goodness evaluation of the mapping.
        notes: Free-form stage notes (heuristic used, targets, fallbacks).
    """

    system_name: str
    audit: AuditReport
    condensation: CondensationResult
    mapping: Mapping
    score: MappingScore
    notes: list[str] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.score.feasible

    def summary(self) -> str:
        lines = [
            f"system: {self.system_name}",
            f"heuristic: {self.condensation.heuristic}",
            f"clusters: {', '.join(self.condensation.labels())}",
            "cross-cluster influence: "
            f"{self.score.partition.cross_influence:.3f}",
            f"communication cost: {self.score.communication_cost:.3f}",
            f"feasible: {self.feasible}",
        ]
        if not self.audit.passed:
            lines.append("audit findings: " + "; ".join(self.audit.describe()))
        lines.extend(self.notes)
        return "\n".join(lines)
