"""The integration framework facade.

One object that walks a :class:`SoftwareSystem` through the paper's whole
method: audit the design (§3), expand replication (§5.4), condense the SW
graph with a chosen heuristic (§5.4, §6), map onto the HW graph (§5.3),
and score the result (§5.3).  Each stage is also callable separately; the
facade just sequences them with consistent options and collects the typed
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import AllocationError
from repro.allocation.clustering import ClusterState
from repro.allocation.constraints import CombinationPolicy, ResourceRequirements
from repro.allocation.goodness import evaluate_mapping
from repro.allocation.heuristics import (
    condense_criticality,
    condense_h1,
    condense_h2,
    condense_h3,
    condense_timing,
    pack_by_timing,
)
from repro.allocation.heuristics.base import CondensationResult
from repro.allocation.hw_model import HWGraph
from repro.allocation.mapping import Mapping, map_approach_a, map_approach_b
from repro.allocation.sw_graph import expand_replication, required_hw_nodes
from repro.core.results import IntegrationOutcome
from repro.model.fcm import Level
from repro.model.system import SoftwareSystem
from repro.obs import current
from repro.verification.checks import audit_system


class Heuristic(Enum):
    """Condensation heuristics available to the pipeline."""

    H1 = "h1"
    H2 = "h2"
    H3 = "h3"
    H1_ANNEALED = "h1-annealed"  # H1 polished by simulated annealing
    CRITICALITY = "criticality"  # Approach B (§6.2)
    TIMING = "timing"  # slack-driven refinement (Fig. 8)
    TIMING_PACK = "timing-pack"  # first-fit over the timing order


class MappingApproach(Enum):
    IMPORTANCE = "a"  # Approach A: importance of tasks
    ATTRIBUTES = "b"  # Approach B: importance of attributes


@dataclass
class FrameworkOptions:
    """Pipeline configuration.

    ``engine`` selects the allocation-stage implementation:
    ``"vector"`` compiles the expanded influence graph and combination
    policy to array/cached form (bit-identical results, see
    ``docs/PERFORMANCE.md``), ``"scalar"`` keeps the pure-Python oracle,
    and ``"auto"`` picks vector when numpy is importable and the policy
    is compilable.  The resolved choice is recorded as an
    ``allocation``-category engine decision.
    """

    heuristic: Heuristic = Heuristic.H1
    mapping: MappingApproach = MappingApproach.IMPORTANCE
    policy: CombinationPolicy = field(default_factory=CombinationPolicy)
    resources: ResourceRequirements = field(default_factory=ResourceRequirements)
    influence_budget: float = 1.0
    separation_floor: float = 0.0
    engine: str = "auto"


class IntegrationFramework:
    """End-to-end dependability-driven integration of one system."""

    def __init__(self, system: SoftwareSystem, options: FrameworkOptions | None = None) -> None:
        self.system = system
        self.options = options or FrameworkOptions()

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def audit(self):
        """Stage 1: structural and non-interference audit."""
        with current().span("audit", system=self.system.name):
            return audit_system(
                self.system,
                influence_budget=self.options.influence_budget,
                separation_floor=self.options.separation_floor,
            )

    def expanded_state(self) -> ClusterState:
        """Stage 2: replicate FT>1 processes and start singleton clusters.

        Also resolves the allocation engine: under ``vector`` the
        expanded graph and the combination policy are compiled once here
        and attached to the state, so every later stage (condense, map,
        score) answers influence/policy queries from the compiled form.
        """
        with current().span("expand") as span:
            graph = self.system.influence_at(Level.PROCESS)
            expanded = expand_replication(graph)
            span.set(processes=len(graph), expanded=len(expanded))
            state = ClusterState(expanded, self.options.policy)
            choice = self._resolve_allocation_engine(state)
            span.set(engine=choice.engine)
            return state

    def _resolve_allocation_engine(self, state: ClusterState):
        """Pick scalar/vector for the allocation stages; attach artifacts."""
        from repro.allocation.compiled import compile_policy
        from repro.faultsim.engine import record_engine_decision, resolve_engine
        from repro.faultsim.kernel import NUMPY_AVAILABLE

        compiled_policy = None
        vectorizable = True
        why_not = ""
        if NUMPY_AVAILABLE:
            compiled_policy = compile_policy(state.graph, state.policy)
            if compiled_policy is None:
                vectorizable = False
                why_not = "combination policy is not compilable"
        choice = resolve_engine(
            self.options.engine, vectorizable=vectorizable, why_not=why_not
        )
        record_engine_decision("allocation", choice)
        if choice.is_vector:
            from repro.faultsim.kernel import compile_graph
            from repro.graphs.matrix import CompiledInfluence

            compiled_graph = compile_graph(state.graph)
            state.attach_compiled(
                influence=CompiledInfluence.from_weights(
                    compiled_graph.names, compiled_graph.weights
                ),
                policy=compiled_policy,
            )
        return choice

    def condense(self, state: ClusterState, target: int) -> CondensationResult:
        """Stage 3: reduce the SW graph to at most ``target`` clusters."""
        heuristic = self.options.heuristic
        rec = current()
        with rec.span(
            "condense",
            heuristic=heuristic.value,
            target=target,
            engine="vector" if state.is_compiled else "scalar",
        ):
            result = self._condense(state, target, heuristic)
        if rec.enabled:
            for step in result.steps:
                rec.decision(
                    "condense",
                    "merge",
                    subject=",".join(step.first) + " + " + ",".join(step.second),
                    reason=step.note or f"heuristic {result.heuristic}",
                    mutual_influence=step.mutual_influence,
                    heuristic=result.heuristic,
                )
        return result

    def _condense(
        self, state: ClusterState, target: int, heuristic: Heuristic
    ) -> CondensationResult:
        if heuristic is Heuristic.H1:
            return condense_h1(state, target)
        if heuristic is Heuristic.H1_ANNEALED:
            from repro.analysis.annealing import AnnealingOptions, anneal

            result = condense_h1(state, target)
            anneal(result.state, AnnealingOptions(iterations=2000, seed=0))
            return result
        if heuristic is Heuristic.H2:
            return condense_h2(state, target)
        if heuristic is Heuristic.H3:
            return condense_h3(state, target)
        if heuristic is Heuristic.CRITICALITY:
            return condense_criticality(state, target)
        if heuristic is Heuristic.TIMING:
            return condense_timing(state, target)
        if heuristic is Heuristic.TIMING_PACK:
            return pack_by_timing(state, target)
        raise AllocationError(f"unknown heuristic {heuristic!r}")

    def map(self, state: ClusterState, hw: HWGraph) -> Mapping:
        """Stage 4: assign clusters to HW nodes."""
        with current().span(
            "map",
            approach=self.options.mapping.value,
            hw_nodes=len(hw),
            engine="vector" if state.is_compiled else "scalar",
        ):
            if self.options.mapping is MappingApproach.IMPORTANCE:
                return map_approach_a(state, hw, self.options.resources)
            return map_approach_b(state, hw, self.options.resources)

    def validate_by_campaign(
        self,
        outcome: IntegrationOutcome,
        trials: int = 1000,
        seed: int = 0,
        engine: str = "auto",
    ):
        """Independent validation: seed faults, measure cross-node escapes.

        Returns the :class:`~repro.faultsim.campaign.CampaignResult` and
        appends a one-line note to the outcome — the analytic goodness
        score and the simulated escape rate together close the loop the
        paper's §5.3 containment criterion asks for.  ``engine`` selects
        the trial simulator (``auto``/``scalar``/``vector``, see
        :func:`repro.faultsim.engine.resolve_engine`).
        """
        from repro.faultsim.campaign import run_campaign

        state = outcome.condensation.state
        campaign = run_campaign(
            state.graph, state.as_partition(), trials=trials, seed=seed,
            engine=engine,
        )
        outcome.notes.append(
            f"campaign validation ({trials} faults): "
            f"escape rate {campaign.cross_cluster_rate:.3f}, "
            f"mean affected {campaign.mean_affected_fcms:.3f}"
        )
        return campaign

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def degrade(
        self,
        outcome: IntegrationOutcome,
        failed_nodes: list[str] | tuple[str, ...] | set[str],
        failed_links: tuple[tuple[str, str], ...] = (),
    ):
        """Plan the degraded mapping after losing ``failed_nodes``.

        Re-homes the outcome's clusters on the surviving HW with the
        pipeline's configured mapping approach, shedding the least
        critical clusters if capacity runs out.  Returns the
        :class:`~repro.resilience.degradation.DegradationPlan`.
        """
        from repro.resilience.degradation import plan_degradation

        return plan_degradation(
            outcome,
            failed_nodes,
            failed_links=failed_links,
            approach=self.options.mapping.value,
            resources=self.options.resources,
        )

    def validate_under_failures(
        self,
        outcome: IntegrationOutcome,
        failures: int = 2,
        trials: int = 100,
        seed: int = 0,
        horizon: float = 100.0,
        rates=None,
        policies=None,
    ):
        """Independent validation: inject HW-node failures, measure
        degraded-mode availability.

        Runs a resilience campaign against the outcome's own HW graph and
        appends a one-line note, mirroring :meth:`validate_by_campaign`
        for the hardware-failure axis.  Returns the
        :class:`~repro.resilience.campaign.ResilienceReport`.
        """
        from repro.resilience.campaign import run_resilience_campaign

        report = run_resilience_campaign(
            outcome,
            failures=failures,
            trials=trials,
            seed=seed,
            horizon=horizon,
            rates=rates,
            policies=policies,
            resources=self.options.resources,
            approach=self.options.mapping.value,
        )
        outcome.notes.append(
            f"resilience validation ({trials} trials, {failures} failures): "
            f"min class availability {report.min_availability:.3f}, "
            f"mean clusters shed {report.mean_clusters_shed:.2f}, "
            f"separation violations {report.separation_violations}"
        )
        return report

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def integrate(self, hw: HWGraph) -> IntegrationOutcome:
        """Run all stages against ``hw`` and return the full outcome."""
        rec = current()
        with rec.span(
            "pipeline",
            system=self.system.name,
            heuristic=self.options.heuristic.value,
            mapping=self.options.mapping.value,
            hw_nodes=len(hw),
        ):
            audit = self.audit()
            state = self.expanded_state()
            notes = []
            lower = required_hw_nodes(state.graph)
            if lower > len(hw):
                raise AllocationError(
                    f"replication needs {lower} HW nodes but only {len(hw)} exist"
                )
            condensation = self.condense(state, len(hw))
            mapping = self.map(condensation.state, hw)
            with rec.span(
                "score",
                engine="vector" if condensation.state.is_compiled else "scalar",
            ):
                score = evaluate_mapping(mapping, self.options.resources)
            notes.append(
                f"condensed to {len(condensation.state.clusters)} clusters "
                f"for {len(hw)} HW nodes (replica lower bound {lower})"
            )
        return IntegrationOutcome(
            system_name=self.system.name,
            audit=audit,
            condensation=condensation,
            mapping=mapping,
            score=score,
            notes=notes,
        )


def integrate(
    system: SoftwareSystem,
    hw: HWGraph,
    options: FrameworkOptions | None = None,
) -> IntegrationOutcome:
    """Functional one-shot wrapper around :class:`IntegrationFramework`."""
    return IntegrationFramework(system, options).integrate(hw)
