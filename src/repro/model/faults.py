"""Fault taxonomy per FCM level.

Section 3 of the paper assigns each hierarchy level a predefined class of
faults handled within that level:

* Process level — faults arising from sharing HW resources: memory
  footprints (memory-space overlap), timing/scheduling faults,
  communication faults, CPU overuse.
* Task level — faults crossing lightweight threads inside one process:
  shared-memory corruption, message errors, timing faults (missed
  deadlines, priority inversion).
* Procedure level — passing of erroneous data via parameters, return
  values, or global variables.

This module encodes that taxonomy plus the isolation techniques the paper
names for each level, and a :class:`FaultEvent` record used by the
fault-injection simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.model.fcm import Level


class FaultKind(Enum):
    """Concrete fault classes named in the paper, tagged by level."""

    # Process level (resource sharing).
    MEMORY_FOOTPRINT = "memory_footprint"
    SCHEDULING = "scheduling"
    COMMUNICATION = "communication"
    CPU_OVERUSE = "cpu_overuse"
    # Task level (intra-process threads).
    SHARED_MEMORY = "shared_memory"
    MESSAGE_ERROR = "message_error"
    TIMING = "timing"
    PRIORITY_INVERSION = "priority_inversion"
    # Procedure level (data flow).
    PARAMETER_PASSING = "parameter_passing"
    RETURN_VALUE = "return_value"
    GLOBAL_VARIABLE = "global_variable"


# The hierarchy level at which each fault kind is contained.  Task-level
# techniques "are also applicable at the process level" (§4.2.3), so
# several kinds appear at both; the mapping records the *lowest* level
# responsible for containing the kind.
CONTAINMENT_LEVEL: dict[FaultKind, Level] = {
    FaultKind.MEMORY_FOOTPRINT: Level.PROCESS,
    FaultKind.SCHEDULING: Level.PROCESS,
    FaultKind.COMMUNICATION: Level.PROCESS,
    FaultKind.CPU_OVERUSE: Level.PROCESS,
    FaultKind.SHARED_MEMORY: Level.TASK,
    FaultKind.MESSAGE_ERROR: Level.TASK,
    FaultKind.TIMING: Level.TASK,
    FaultKind.PRIORITY_INVERSION: Level.TASK,
    FaultKind.PARAMETER_PASSING: Level.PROCEDURE,
    FaultKind.RETURN_VALUE: Level.PROCEDURE,
    FaultKind.GLOBAL_VARIABLE: Level.PROCEDURE,
}


class IsolationTechnique(Enum):
    """Techniques the paper names for constraining fault scope."""

    MEMORY_SEPARATION = "memory_separation"  # process level
    RESOURCE_QUOTAS = "resource_quotas"  # process level (CPU overuse)
    N_VERSION_PROGRAMMING = "n_version_programming"  # task level
    RECOVERY_BLOCKS = "recovery_blocks"  # task level
    PREEMPTIVE_SCHEDULING = "preemptive_scheduling"  # task level timing
    INFORMATION_HIDING = "information_hiding"  # procedure level (OO)
    RANGE_CHECKS = "range_checks"  # procedure level parameters


# Which techniques mitigate which fault kinds.
MITIGATIONS: dict[FaultKind, tuple[IsolationTechnique, ...]] = {
    FaultKind.MEMORY_FOOTPRINT: (IsolationTechnique.MEMORY_SEPARATION,),
    FaultKind.SCHEDULING: (IsolationTechnique.PREEMPTIVE_SCHEDULING,),
    FaultKind.COMMUNICATION: (IsolationTechnique.RECOVERY_BLOCKS,),
    FaultKind.CPU_OVERUSE: (
        IsolationTechnique.RESOURCE_QUOTAS,
        IsolationTechnique.PREEMPTIVE_SCHEDULING,
    ),
    FaultKind.SHARED_MEMORY: (IsolationTechnique.MEMORY_SEPARATION,),
    FaultKind.MESSAGE_ERROR: (
        IsolationTechnique.RECOVERY_BLOCKS,
        IsolationTechnique.N_VERSION_PROGRAMMING,
    ),
    FaultKind.TIMING: (IsolationTechnique.PREEMPTIVE_SCHEDULING,),
    FaultKind.PRIORITY_INVERSION: (IsolationTechnique.PREEMPTIVE_SCHEDULING,),
    FaultKind.PARAMETER_PASSING: (
        IsolationTechnique.RANGE_CHECKS,
        IsolationTechnique.INFORMATION_HIDING,
    ),
    FaultKind.RETURN_VALUE: (IsolationTechnique.RANGE_CHECKS,),
    FaultKind.GLOBAL_VARIABLE: (IsolationTechnique.INFORMATION_HIDING,),
}


def kinds_for_level(level: Level) -> tuple[FaultKind, ...]:
    """Fault kinds contained at exactly ``level``."""
    return tuple(kind for kind, lvl in CONTAINMENT_LEVEL.items() if lvl is level)


def is_contained_at(kind: FaultKind, level: Level) -> bool:
    """Whether ``level`` (or a lower level) is responsible for ``kind``.

    A fault kind contained at the procedure level never needs handling at
    the process level in a well-formed hierarchy — that is the point of
    isolating fault types into fixed levels.
    """
    return CONTAINMENT_LEVEL[kind] <= level


@dataclass(frozen=True)
class FaultEvent:
    """One fault occurrence, as recorded by the simulator.

    Attributes:
        fcm: Name of the FCM where the fault occurred (source for
            transmissions).
        kind: Fault class.
        time: Simulation time of occurrence.
        transmitted_from: Name of the FCM whose fault propagated here, or
            ``None`` for a spontaneous (direct-introduction) fault.
    """

    fcm: str
    kind: FaultKind
    time: float
    transmitted_from: str | None = None

    @property
    def spontaneous(self) -> bool:
        return self.transmitted_from is None
