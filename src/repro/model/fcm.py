"""Fault containment modules (FCMs) — the paper's core abstraction.

An FCM is a software module whose boundary is designed to contain a
predefined class of faults.  The paper fixes a three-level hierarchy
(Fig. 1): procedures (lowest), tasks (middle), processes (top).  The model
deliberately allows extension — :class:`Level` is an ``IntEnum`` and the
hierarchy machinery works for any strictly ordered level set — but the
three canonical levels are what the rest of the library instantiates.

FCM objects are identified by globally unique names (the paper: "tasks
have unique static names, and only one instance of a given task can be
live at any time").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import ModelError
from repro.model.attributes import AttributeSet

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-/]*$")


class Level(IntEnum):
    """FCM hierarchy level, ordered lowest to highest."""

    PROCEDURE = 0
    TASK = 1
    PROCESS = 2

    @property
    def parent_level(self) -> "Level | None":
        """The level a parent FCM lives at, or None for the top level."""
        if self is Level.PROCESS:
            return None
        return Level(self + 1)

    @property
    def child_level(self) -> "Level | None":
        """The level child FCMs live at, or None for the bottom level."""
        if self is Level.PROCEDURE:
            return None
        return Level(self - 1)


@dataclass
class FCM:
    """One fault containment module.

    Attributes:
        name: Globally unique identifier.
        level: Hierarchy level.
        attributes: Dependability attributes (criticality, FT, timing, ...).
        stateless: Procedures are assumed stateless ("no static variables,
            and results independent of invocation order, and thus may be
            freely replicated"); meaningful at the procedure level only.
        replica_of: For expanded replicas, the name of the original FCM;
            ``None`` for originals.
    """

    name: str
    level: Level
    attributes: AttributeSet = field(default_factory=AttributeSet)
    stateless: bool = True
    replica_of: str | None = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ModelError(
                f"invalid FCM name {self.name!r}: must start with a letter or "
                "underscore and contain only [A-Za-z0-9_.-/]"
            )
        if not isinstance(self.level, Level):
            raise ModelError(f"level must be a Level, got {self.level!r}")

    @property
    def is_replica(self) -> bool:
        return self.replica_of is not None

    def replicate(self, suffix: str) -> "FCM":
        """A replica of this FCM named ``<name><suffix>``.

        The replica itself carries FT = 1 (it *is* one of the copies), and
        records its origin so allocation can enforce replica separation.
        """
        return FCM(
            name=f"{self.name}{suffix}",
            level=self.level,
            attributes=self.attributes.with_fault_tolerance(1),
            stateless=self.stateless,
            replica_of=self.name,
        )

    def __hash__(self) -> int:
        return hash((self.name, self.level))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FCM):
            return NotImplemented
        return self.name == other.name and self.level == other.level

    def __repr__(self) -> str:
        return f"FCM({self.name!r}, {self.level.name})"


def procedure(name: str, attributes: AttributeSet | None = None, stateless: bool = True) -> FCM:
    """Construct a procedure-level FCM."""
    return FCM(name, Level.PROCEDURE, attributes or AttributeSet(), stateless=stateless)


def task(name: str, attributes: AttributeSet | None = None) -> FCM:
    """Construct a task-level FCM."""
    return FCM(name, Level.TASK, attributes or AttributeSet())


def process(name: str, attributes: AttributeSet | None = None) -> FCM:
    """Construct a process-level FCM."""
    return FCM(name, Level.PROCESS, attributes or AttributeSet())
