"""The FCM hierarchy container.

Maintains the layered integration DAG of rules R1/R2: parent links only
between adjacent levels (R1), and the DAG is a *tree* — every FCM has at
most one parent, and no FCM is shared between two parents (R2).  The
severe consequence the paper highlights — no function reuse by sharing;
reused functions must be separately duplicated per caller — is enforced
here and realised by :meth:`FCMHierarchy.duplicate_subtree`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import HierarchyError, ModelError
from repro.model.attributes import AttributeSet
from repro.model.fcm import FCM, Level


class FCMHierarchy:
    """A forest of FCMs with tree-shaped parent/child links.

    The hierarchy owns FCM objects keyed by name.  Structural invariants
    (checked on every mutation):

    * every FCM name is unique;
    * a parent link joins adjacent levels only (child.level + 1 ==
      parent.level), per R1;
    * every FCM has at most one parent, per R2;
    * links never form a cycle (guaranteed by the level discipline).
    """

    def __init__(self) -> None:
        self._fcms: dict[str, FCM] = {}
        self._parent: dict[str, str] = {}
        self._children: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, fcm: FCM, parent: str | None = None) -> FCM:
        """Add ``fcm``; optionally attach to ``parent`` in the same call."""
        if fcm.name in self._fcms:
            raise HierarchyError(f"FCM name {fcm.name!r} already present")
        self._fcms[fcm.name] = fcm
        self._children[fcm.name] = []
        if parent is not None:
            try:
                self.attach(fcm.name, parent)
            except HierarchyError:
                del self._fcms[fcm.name]
                del self._children[fcm.name]
                raise
        return fcm

    def remove(self, name: str) -> None:
        """Remove an FCM.  It must be a leaf of the link forest."""
        fcm = self.get(name)
        if self._children[name]:
            raise HierarchyError(
                f"cannot remove {name!r}: it still has children "
                f"{self._children[name]!r}"
            )
        parent = self._parent.pop(name, None)
        if parent is not None:
            self._children[parent].remove(name)
        del self._children[name]
        del self._fcms[fcm.name]

    def get(self, name: str) -> FCM:
        try:
            return self._fcms[name]
        except KeyError:
            raise HierarchyError(f"no FCM named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._fcms

    def __len__(self) -> int:
        return len(self._fcms)

    def __iter__(self) -> Iterator[FCM]:
        return iter(self._fcms.values())

    def names(self) -> list[str]:
        return list(self._fcms)

    def at_level(self, level: Level) -> list[FCM]:
        """All FCMs at ``level``, in insertion order."""
        return [fcm for fcm in self._fcms.values() if fcm.level is level]

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def attach(self, child: str, parent: str) -> None:
        """Create the parent link ``child -> parent`` (rules R1, R2)."""
        child_fcm = self.get(child)
        parent_fcm = self.get(parent)
        if child_fcm.level.parent_level is not parent_fcm.level:
            raise HierarchyError(
                f"R1: {child!r} ({child_fcm.level.name}) can only attach to a "
                f"{child_fcm.level.parent_level and child_fcm.level.parent_level.name} "
                f"parent, not {parent!r} ({parent_fcm.level.name})"
            )
        if child in self._parent:
            raise HierarchyError(
                f"R2: {child!r} already has parent {self._parent[child]!r}; "
                "an FCM may not be shared — duplicate it instead"
            )
        self._parent[child] = parent
        self._children[parent].append(child)

    def detach(self, child: str) -> None:
        """Remove ``child``'s parent link (it becomes a root of its level)."""
        self.get(child)
        parent = self._parent.pop(child, None)
        if parent is None:
            raise HierarchyError(f"{child!r} has no parent to detach")
        self._children[parent].remove(child)

    def parent_of(self, name: str) -> FCM | None:
        self.get(name)
        parent = self._parent.get(name)
        return self._fcms[parent] if parent is not None else None

    def children_of(self, name: str) -> list[FCM]:
        self.get(name)
        return [self._fcms[c] for c in self._children[name]]

    def siblings_of(self, name: str) -> list[FCM]:
        """FCMs sharing this FCM's parent (excluding itself).

        Root FCMs (no parent) have no siblings in the R3 sense: merging is
        only defined among children of one parent.
        """
        parent = self._parent.get(name)
        if parent is None:
            self.get(name)
            return []
        return [self._fcms[c] for c in self._children[parent] if c != name]

    def descendants_of(self, name: str) -> list[FCM]:
        """All transitive children, preorder."""
        self.get(name)
        out: list[FCM] = []
        stack = list(reversed(self._children[name]))
        while stack:
            current = stack.pop()
            out.append(self._fcms[current])
            stack.extend(reversed(self._children[current]))
        return out

    def roots(self) -> list[FCM]:
        """FCMs with no parent."""
        return [fcm for fcm in self._fcms.values() if fcm.name not in self._parent]

    # ------------------------------------------------------------------
    # Aggregation & validation
    # ------------------------------------------------------------------
    def effective_attributes(self, name: str) -> AttributeSet:
        """Attributes of ``name`` combined with all its descendants'.

        A parent FCM's effective requirements must dominate its children's
        (max criticality, min deadline, summed throughput); this computes
        that aggregate per §4.3.
        """
        fcm = self.get(name)
        acc = fcm.attributes
        for child in self.descendants_of(name):
            acc = acc.combine(child.attributes)
        return acc

    def validate(self) -> list[str]:
        """Full structural audit; returns a list of violation messages.

        An empty list means the hierarchy is well-formed.  (Mutations
        already enforce the invariants; this re-checks from first
        principles and is used by the verification battery.)
        """
        problems: list[str] = []
        for child, parent in self._parent.items():
            child_fcm = self._fcms[child]
            parent_fcm = self._fcms[parent]
            if child_fcm.level.parent_level is not parent_fcm.level:
                problems.append(
                    f"R1 violation: {child!r} ({child_fcm.level.name}) linked "
                    f"to {parent!r} ({parent_fcm.level.name})"
                )
        seen_children: set[str] = set()
        for parent, children in self._children.items():
            for child in children:
                if child in seen_children:
                    problems.append(f"R2 violation: {child!r} has multiple parents")
                seen_children.add(child)
                if self._parent.get(child) != parent:
                    problems.append(
                        f"internal inconsistency: child list of {parent!r} "
                        f"disagrees with parent map for {child!r}"
                    )
        return problems

    def duplicate_subtree(self, name: str, suffix: str, parent: str | None = None) -> FCM:
        """Clone ``name`` and its whole subtree with names suffixed.

        This realises the paper's first escape from R2/R3: "the lower level
        FCM(s) can be duplicated and integrated separately with the two
        different parents.  All associated code, text and data of the child
        FCMs is duplicated."  Returns the new subtree root.
        """
        original = self.get(name)
        if parent is not None:
            self.get(parent)
        if not suffix:
            raise ModelError("duplicate_subtree requires a non-empty suffix")

        def clone(fcm: FCM) -> FCM:
            return FCM(
                name=f"{fcm.name}{suffix}",
                level=fcm.level,
                attributes=fcm.attributes,
                stateless=fcm.stateless,
                replica_of=fcm.replica_of,
            )

        new_root = self.add(clone(original), parent=parent)
        stack: list[tuple[str, str]] = [(original.name, new_root.name)]
        while stack:
            old_parent, new_parent = stack.pop()
            for child in self._children[old_parent]:
                new_child = self.add(clone(self._fcms[child]), parent=new_parent)
                stack.append((child, new_child.name))
        return new_root

    def render(self) -> str:
        """ASCII rendering of the forest, for reports and Fig. 1."""
        lines: list[str] = []
        for root in self.roots():
            self._render_node(root.name, "", lines)
        return "\n".join(lines)

    def _render_node(self, name: str, indent: str, lines: list[str]) -> None:
        fcm = self._fcms[name]
        lines.append(f"{indent}{fcm.name} [{fcm.level.name}]")
        for child in self._children[name]:
            self._render_node(child, indent + "  ", lines)
