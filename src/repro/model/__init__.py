"""FCM data model: attributes, fault taxonomy, hierarchy, system."""

from repro.model.attributes import (
    DEFAULT_IMPORTANCE_WEIGHTS,
    AttributeSet,
    ImportanceWeights,
    SecurityLevel,
    TimingConstraint,
    combine_all,
    combine_all_grouped,
)
from repro.model.faults import (
    CONTAINMENT_LEVEL,
    MITIGATIONS,
    FaultEvent,
    FaultKind,
    IsolationTechnique,
    is_contained_at,
    kinds_for_level,
)
from repro.model.fcm import FCM, Level, procedure, process, task
from repro.model.hierarchy import FCMHierarchy
from repro.model.system import SoftwareSystem

__all__ = [
    "AttributeSet",
    "CONTAINMENT_LEVEL",
    "DEFAULT_IMPORTANCE_WEIGHTS",
    "FCM",
    "FCMHierarchy",
    "FaultEvent",
    "FaultKind",
    "ImportanceWeights",
    "IsolationTechnique",
    "Level",
    "MITIGATIONS",
    "SecurityLevel",
    "SoftwareSystem",
    "TimingConstraint",
    "combine_all",
    "combine_all_grouped",
    "is_contained_at",
    "kinds_for_level",
    "procedure",
    "process",
    "task",
]
