"""The software system: an FCM hierarchy plus per-level influence data.

A :class:`SoftwareSystem` ties together the structural model (hierarchy)
with the quantitative model (influence factors between sibling FCMs at
each level).  It is the object most of the framework's pipelines consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ModelError
from repro.model.fcm import FCM, Level
from repro.model.hierarchy import FCMHierarchy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.influence.influence_graph import InfluenceGraph


@dataclass
class SoftwareSystem:
    """An FCM hierarchy together with influence graphs per level.

    Attributes:
        name: System identifier, used in reports.
        hierarchy: The FCM forest.
        influence: Mapping from level to the influence graph among the FCMs
            at that level.  Graphs are created lazily via
            :meth:`influence_at`.
    """

    name: str
    hierarchy: FCMHierarchy = field(default_factory=FCMHierarchy)
    influence: dict[Level, "InfluenceGraph"] = field(default_factory=dict)

    def influence_at(self, level: Level) -> "InfluenceGraph":
        """The influence graph among FCMs at ``level``, created on demand.

        Nodes are synchronised with the hierarchy: every FCM currently at
        the level is present in the graph.
        """
        from repro.influence.influence_graph import InfluenceGraph

        graph = self.influence.get(level)
        if graph is None:
            graph = InfluenceGraph()
            self.influence[level] = graph
        for fcm in self.hierarchy.at_level(level):
            if not graph.has_fcm(fcm.name):
                graph.add_fcm(fcm)
        return graph

    def processes(self) -> list[FCM]:
        return self.hierarchy.at_level(Level.PROCESS)

    def tasks(self) -> list[FCM]:
        return self.hierarchy.at_level(Level.TASK)

    def procedures(self) -> list[FCM]:
        return self.hierarchy.at_level(Level.PROCEDURE)

    def validate(self) -> list[str]:
        """Structural audit of hierarchy plus influence-graph consistency."""
        problems = self.hierarchy.validate()
        for level, graph in self.influence.items():
            level_names = {fcm.name for fcm in self.hierarchy.at_level(level)}
            for name in graph.fcm_names():
                if name not in level_names:
                    problems.append(
                        f"influence graph at {level.name} references "
                        f"{name!r}, which is not a {level.name} FCM"
                    )
        return problems

    def require_valid(self) -> None:
        problems = self.validate()
        if problems:
            raise ModelError("invalid system: " + "; ".join(problems))
