"""FCM attributes and their combination semantics.

Each FCM carries an attribute set: criticality, fault-tolerance
(replication) requirement, timing constraints (earliest start time EST,
task completion deadline TCD, computation time CT), throughput, and
security level.  Section 4.3 of the paper specifies how attributes combine
when FCMs are integrated: "the resulting FCM will usually have the most
stringent component values (e.g. max criticality, min deadline), or an
aggregate (e.g., sum of throughputs)".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import IntEnum

from repro.errors import AttributeError_


class SecurityLevel(IntEnum):
    """Information-security classification of an FCM's data.

    Combination takes the most stringent (highest) level.
    """

    UNCLASSIFIED = 0
    RESTRICTED = 1
    CONFIDENTIAL = 2
    SECRET = 3


@dataclass(frozen=True)
class TimingConstraint:
    """An aperiodic timing window: run ``computation_time`` units of work
    somewhere in ``[earliest_start, deadline]``.

    Matches the paper's (EST, TCD, CT) triple.  A window is *degenerate*
    when the computation cannot even fit alone.
    """

    earliest_start: float
    deadline: float
    computation_time: float

    def __post_init__(self) -> None:
        if self.computation_time < 0:
            raise AttributeError_("computation_time must be >= 0")
        if self.earliest_start < 0:
            raise AttributeError_("earliest_start must be >= 0")
        if self.deadline < self.earliest_start:
            raise AttributeError_("deadline must be >= earliest_start")
        if not self.fits_alone():
            raise AttributeError_(
                f"degenerate window: {self.computation_time} units of work "
                f"cannot fit in [{self.earliest_start}, {self.deadline}]"
            )

    @property
    def window(self) -> float:
        """Length of the feasible interval."""
        return self.deadline - self.earliest_start

    @property
    def laxity(self) -> float:
        """Slack available: window minus computation time."""
        return self.window - self.computation_time

    def fits_alone(self) -> bool:
        """Whether the work fits in the window on a dedicated processor."""
        return self.computation_time <= self.window + 1e-12

    def overlaps(self, other: "TimingConstraint") -> bool:
        """Whether the two feasible windows intersect in time."""
        return (
            self.earliest_start < other.deadline - 1e-12
            and other.earliest_start < self.deadline - 1e-12
        )

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.earliest_start, self.deadline, self.computation_time)

    def combine(self, other: "TimingConstraint") -> "TimingConstraint":
        """Most-stringent combination for a *merged* FCM (§4.3).

        A merged module runs as one body of code, so it inherits the
        earliest start (it may begin as soon as any part may), the
        *minimum* deadline (most stringent), and the *sum* of computation
        times (all the work must happen).  Raises if the result is
        degenerate — such FCMs cannot be merged.
        """
        return TimingConstraint(
            earliest_start=min(self.earliest_start, other.earliest_start),
            deadline=min(self.deadline, other.deadline),
            computation_time=self.computation_time + other.computation_time,
        )

    def combine_grouped(self, other: "TimingConstraint") -> "TimingConstraint":
        """Envelope combination for *grouped* (co-located) FCMs.

        Grouped modules keep their own windows; the cluster's summary
        timing is the occupancy envelope: earliest start, latest deadline,
        total work.  Built without the degeneracy check — a summary of an
        overloaded cluster is still a useful descriptor (its laxity simply
        goes negative).
        """
        return _unchecked_timing(
            min(self.earliest_start, other.earliest_start),
            max(self.deadline, other.deadline),
            self.computation_time + other.computation_time,
        )


def _unchecked_timing(
    earliest_start: float,
    deadline: float,
    computation_time: float,
) -> TimingConstraint:
    """A TimingConstraint bypassing the degeneracy check (summaries only)."""
    constraint = object.__new__(TimingConstraint)
    object.__setattr__(constraint, "earliest_start", earliest_start)
    object.__setattr__(constraint, "deadline", deadline)
    object.__setattr__(constraint, "computation_time", computation_time)
    return constraint


@dataclass(frozen=True)
class AttributeSet:
    """The dependability-relevant attributes of one FCM.

    Attributes:
        criticality: Non-negative importance of correct function; larger is
            more critical (the paper's ``C`` column).
        fault_tolerance: Required number of concurrent replicas (``FT``);
            1 means no replication, 3 means TMR.
        timing: Optional timing constraint (``EST, TCD, CT``).
        throughput: Work rate the FCM must sustain (arbitrary units/sec);
            aggregates by sum on integration.
        security: Security classification; combines by max.
        communication_rate: Messages per unit time the FCM exchanges with
            peers; aggregates by sum.
    """

    criticality: float = 0.0
    fault_tolerance: int = 1
    timing: TimingConstraint | None = None
    throughput: float = 0.0
    security: SecurityLevel = SecurityLevel.UNCLASSIFIED
    communication_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.criticality < 0 or not math.isfinite(self.criticality):
            raise AttributeError_("criticality must be finite and >= 0")
        if self.fault_tolerance < 1:
            raise AttributeError_("fault_tolerance (replica count) must be >= 1")
        if self.throughput < 0:
            raise AttributeError_("throughput must be >= 0")
        if self.communication_rate < 0:
            raise AttributeError_("communication_rate must be >= 0")

    @property
    def replicated(self) -> bool:
        return self.fault_tolerance > 1

    def combine(self, other: "AttributeSet") -> "AttributeSet":
        """Attribute combination on FCM integration (paper §4.3).

        Most stringent wins for criticality, security and fault tolerance;
        throughput and communication rate aggregate by sum; timing combines
        via :meth:`TimingConstraint.combine` (or passes through when only
        one side has a constraint).
        """
        if self.timing is None:
            timing = other.timing
        elif other.timing is None:
            timing = self.timing
        else:
            timing = self.timing.combine(other.timing)
        return AttributeSet(
            criticality=max(self.criticality, other.criticality),
            fault_tolerance=max(self.fault_tolerance, other.fault_tolerance),
            timing=timing,
            throughput=self.throughput + other.throughput,
            security=max(self.security, other.security),
            communication_rate=self.communication_rate + other.communication_rate,
        )

    def combine_grouped(self, other: "AttributeSet") -> "AttributeSet":
        """Attribute combination for *grouped* (co-located) FCMs.

        Identical to :meth:`combine` except timing, which takes the
        occupancy envelope instead of the most-stringent merge (grouped
        modules keep their own windows, so a single merged window would be
        spuriously strict).
        """
        if self.timing is None:
            timing = other.timing
        elif other.timing is None:
            timing = self.timing
        else:
            timing = self.timing.combine_grouped(other.timing)
        return AttributeSet(
            criticality=max(self.criticality, other.criticality),
            fault_tolerance=max(self.fault_tolerance, other.fault_tolerance),
            timing=timing,
            throughput=self.throughput + other.throughput,
            security=max(self.security, other.security),
            communication_rate=self.communication_rate + other.communication_rate,
        )

    def with_fault_tolerance(self, fault_tolerance: int) -> "AttributeSet":
        """Copy with a different replication requirement (used when
        expanding replicas: each replica itself needs FT = 1)."""
        return replace(self, fault_tolerance=fault_tolerance)


@dataclass(frozen=True)
class ImportanceWeights:
    """Static relative weights for the importance value of §5.1.

    ``importance(N_i)`` is the weighted sum of the node's attribute values
    using these predefined weights.  Timing importance uses *urgency* —
    inverse laxity — so tighter windows score higher.
    """

    criticality: float = 1.0
    fault_tolerance: float = 0.5
    timing_urgency: float = 0.25
    throughput: float = 0.1
    security: float = 0.25
    communication_rate: float = 0.05

    def __post_init__(self) -> None:
        values = (
            self.criticality,
            self.fault_tolerance,
            self.timing_urgency,
            self.throughput,
            self.security,
            self.communication_rate,
        )
        if any(v < 0 or not math.isfinite(v) for v in values):
            raise AttributeError_("importance weights must be finite and >= 0")

    def importance(self, attributes: AttributeSet) -> float:
        """Weighted-sum importance of an FCM (paper §5.1)."""
        urgency = 0.0
        if attributes.timing is not None:
            # +1 keeps zero-laxity (fully rigid) windows finite and maximal;
            # negative laxity (overloaded grouped summaries) clamps to the
            # maximal urgency.
            urgency = 1.0 / (1.0 + max(0.0, attributes.timing.laxity))
        return (
            self.criticality * attributes.criticality
            + self.fault_tolerance * (attributes.fault_tolerance - 1)
            + self.timing_urgency * urgency
            + self.throughput * attributes.throughput
            + self.security * float(attributes.security)
            + self.communication_rate * attributes.communication_rate
        )


DEFAULT_IMPORTANCE_WEIGHTS = ImportanceWeights()


def combine_all(attribute_sets: list[AttributeSet]) -> AttributeSet:
    """Fold :meth:`AttributeSet.combine` over a nonempty list."""
    if not attribute_sets:
        raise AttributeError_("cannot combine an empty attribute list")
    acc = attribute_sets[0]
    for attrs in attribute_sets[1:]:
        acc = acc.combine(attrs)
    return acc


def combine_all_grouped(attribute_sets: list[AttributeSet]) -> AttributeSet:
    """Fold :meth:`AttributeSet.combine_grouped` over a nonempty list."""
    if not attribute_sets:
        raise AttributeError_("cannot combine an empty attribute list")
    acc = attribute_sets[0]
    for attrs in attribute_sets[1:]:
        acc = acc.combine_grouped(attrs)
    return acc
