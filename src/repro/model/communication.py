"""Communication channels between FCMs.

The system model (§2) has tasks communicating via messages, procedures
via parameters and globals, and processes via shared resources.  A
:class:`Channel` describes one such connection concretely — mechanism,
message rate, data volume — and §4.2's estimation rules turn it into an
influence factor: p_{i,2} "depends on both communication medium and data
volume", p_{i,1} comes from the source's usage history, p_{i,3} from
injection campaigns against the target.

:func:`channels_to_influence` populates an influence graph from a channel
list plus per-FCM reliability records, closing the gap between a concrete
system description and the abstract influence numbers the allocation
machinery consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.influence.estimation import (
    InjectionOutcome,
    Medium,
    UsageHistory,
    estimate_effect,
    estimate_occurrence,
    estimate_transmission,
)
from repro.influence.factors import FactorKind, InfluenceFactor
from repro.influence.influence_graph import InfluenceGraph

#: Which factor kind each medium realises.
MEDIUM_FACTOR: dict[Medium, FactorKind] = {
    Medium.PARAMETER: FactorKind.PARAMETER_PASSING,
    Medium.MESSAGE: FactorKind.MESSAGE_PASSING,
    Medium.GLOBAL_VARIABLE: FactorKind.GLOBAL_VARIABLE,
    Medium.SHARED_MEMORY: FactorKind.SHARED_MEMORY,
}


@dataclass(frozen=True)
class Channel:
    """One concrete communication connection.

    Attributes:
        source: Sending FCM name.
        target: Receiving FCM name.
        medium: Transport mechanism.
        volume: Data units exposed per interaction (drives p_{i,2}).
        rate: Interactions per unit time (informs the communication_rate
            attribute; not part of the per-interaction probability).
    """

    source: str
    target: str
    medium: Medium
    volume: float = 1.0
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ModelError("a channel joins two distinct FCMs")
        if self.volume < 0:
            raise ModelError("volume must be >= 0")
        if self.rate < 0:
            raise ModelError("rate must be >= 0")

    def factor(
        self,
        source_history: UsageHistory,
        target_injection: InjectionOutcome | None = None,
        hazards: dict[Medium, float] | None = None,
        interactions: float = 1.0,
    ) -> InfluenceFactor:
        """Estimate the Eq. (1) factor this channel contributes.

        * p_{i,1} from the source FCM's operational record, compounded
          over ``interactions`` uses of the channel during the assessment
          period (``1 - (1 - p)^n``: the fault may arise on any use —
          influence values in the paper are per-mission aggregates, not
          per-call probabilities);
        * p_{i,2} from the medium and volume;
        * p_{i,3} from a fault-injection campaign against the target
          (defaults to the uninformative 0.5 when no campaign was run).
        """
        if interactions < 0:
            raise ModelError("interactions must be >= 0")
        p_once = estimate_occurrence(source_history)
        p1 = 1.0 - (1.0 - p_once) ** interactions
        p2 = estimate_transmission(self.medium, self.volume, hazards)
        p3 = (
            estimate_effect(target_injection)
            if target_injection is not None
            else 0.5
        )
        return InfluenceFactor(MEDIUM_FACTOR[self.medium], p1, p2, p3)


def channels_to_influence(
    graph: InfluenceGraph,
    channels: list[Channel],
    histories: dict[str, UsageHistory],
    injections: dict[str, InjectionOutcome] | None = None,
    hazards: dict[Medium, float] | None = None,
    mission_time: float = 1.0,
) -> None:
    """Populate ``graph`` with influence derived from concrete channels.

    Multiple channels between the same ordered pair combine by Eq. (2)
    (their factors are joined on one edge).  Every channel endpoint must
    already be an FCM of the graph; every source needs a usage history.
    Each channel is exercised ``rate * mission_time`` times during the
    assessment period (occurrence compounds accordingly).
    """
    if mission_time < 0:
        raise ModelError("mission_time must be >= 0")
    injections = injections or {}
    bundles: dict[tuple[str, str], list[InfluenceFactor]] = {}
    for channel in channels:
        for endpoint in (channel.source, channel.target):
            if not graph.has_fcm(endpoint):
                raise ModelError(f"channel endpoint {endpoint!r} not in graph")
        history = histories.get(channel.source)
        if history is None:
            raise ModelError(
                f"no usage history for channel source {channel.source!r}"
            )
        factor = channel.factor(
            history,
            injections.get(channel.target),
            hazards,
            interactions=channel.rate * mission_time,
        )
        bundles.setdefault((channel.source, channel.target), []).append(factor)
    for (source, target), factors in bundles.items():
        graph.set_influence(source, target, factors=factors)


def total_channel_rate(channels: list[Channel], fcm: str) -> float:
    """Summed message rate touching ``fcm`` (for the communication_rate
    attribute of §4.3)."""
    return sum(
        c.rate for c in channels if c.source == fcm or c.target == fcm
    )
