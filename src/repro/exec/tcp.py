"""The TCP shard transport: remote workers over newline-framed JSON.

:class:`TcpBackend` is the first transport whose slots can live on a
*different machine*.  The supervisor opens a TCP listener; workers —
``python -m repro exec shard-worker --connect HOST:PORT``, spawned on
loopback by the backend itself for tests and single-host runs, or
started by hand on remote hosts with ``--listen`` — dial in and speak
exactly the protocol of :mod:`repro.exec.transport`: one ``hello`` line
down, ``ready`` back, then leases served by
:func:`repro.exec.backend.serve_lease` with heartbeats, per-block
partials, and interleaved telemetry batches.  The lease supervisor,
checkpoints, and telemetry merge are reused byte-for-byte; only the
carrier changed.

Robustness model:

* **Connection loss is slot death.**  EOF or a socket error on a
  worker's connection drops the slot and surfaces an ``exit`` event;
  the supervisor's existing expiry/re-dispatch/serial-rescue ladder
  reclaims the lease.  Nothing waits on a dead wire.
* **Reconnection is a fresh registration.**  A worker that dials back
  in is accepted as a brand-new slot with a new id — the supervisor
  never resurrects the old lease, it re-dispatches the uncovered
  remainder wherever it likes.
* **Generations fence zombies.**  Every connection gets a monotonically
  increasing *generation* token, carried in the hello and echoed in
  every worker message; the supervisor drops any line whose generation
  does not match the connection it arrived on, and workers skip leases
  stamped for an older connection.  A delayed or duplicated write from
  a zombie connection can therefore never corrupt a fresh slot's
  lease accounting.
* **Duplicated delivery is idempotent.**  ``partial`` banking, ``done``
  handling, and telemetry batch merging all tolerate the same line
  arriving twice — proven by the :class:`~repro.exec.chaos.NetChaos`
  schedules in ``run_shard_chaos_selftest``.

:class:`~repro.exec.chaos.NetChaos` plugs into the receive path of this
backend (drops, partitions, delays, torn frames, duplicated lines) so
every one of those claims is tested deterministically, not asserted.
"""

from __future__ import annotations

import json
import selectors
import socket
import subprocess
import sys
import time

from repro.errors import CampaignInterrupted, ExecutionError
from repro.exec.backend import (
    LEASE_BLOCK_TRIALS,
    BackendEvent,
    ExecBackend,
    note_fenced_line,
    note_torn_line,
)
from repro.exec.transport import (
    _JOIN_GRACE_S,
    _READ_CHUNK,
    _StderrTail,
    _worker_env,
    shard_worker_main,
)

#: Socket I/O timeout.  Bounds every blocking send/recv so a wedged
#: peer can never hang the supervisor; a recv timeout is treated as
#: "no data yet", never as slot death.
_IO_TIMEOUT_S = 5.0
_ACCEPT_TIMEOUT_S = 30.0


def _parse_hostport(value: str, what: str) -> tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` with a pointed error."""
    host, sep, port_text = str(value).rpartition(":")
    try:
        port = int(port_text)
        if not sep or not host or not (0 <= port <= 65535):
            raise ValueError
    except ValueError:
        raise ExecutionError(
            f"{what} must be HOST:PORT, got {value!r}"
        ) from None
    return host, port


class _TcpSlot:
    """One accepted worker connection plus its receive-side state."""

    def __init__(
        self,
        slot_id: int,
        generation: int,
        conn: socket.socket,
        process: subprocess.Popen | None = None,
        stderr_tail: _StderrTail | None = None,
    ) -> None:
        self.id = slot_id
        self.generation = generation
        self.conn = conn
        self.buffer = bytearray()
        self.lines_seen = 0
        self.release_at: float | None = None  # NetChaos delay gate
        self.dup_rng = None  # NetChaos duplicate stream
        self.process = process
        self.stderr_tail = stderr_tail

    def write(self, payload: bytes) -> None:
        try:
            self.conn.sendall(payload)
        except (OSError, ValueError):
            pass  # connection died; its EOF event reclaims the work

    def close_conn(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


class TcpBackend(ExecBackend):
    """Shard backend #3: workers over real TCP connections.

    ``listen=None`` (the default) binds an ephemeral loopback port and
    spawns its own ``--connect`` workers — fully self-contained, the
    mode tests and single-host campaigns use.  ``listen="HOST:PORT"``
    binds there and *waits* for hand-started remote workers instead
    (``spawn_workers`` overrides the coupling if you need to).

    ``net_chaos`` (:class:`repro.exec.chaos.NetChaos`) injects
    deterministic faults into the receive path; see the class docs.
    """

    name = "tcp"

    def __init__(
        self,
        task_spec: dict,
        seed: int,
        chaos=None,
        block: int = LEASE_BLOCK_TRIALS,
        telemetry: dict | None = None,
        listen: str | None = None,
        spawn_workers: bool | None = None,
        net_chaos=None,
        accept_timeout_s: float = _ACCEPT_TIMEOUT_S,
    ) -> None:
        chaos_dict = chaos.to_dict() if chaos is not None else None
        self._hello_base = {
            "type": "hello",
            "spec": task_spec,
            "seed": seed,
            "chaos": chaos_dict,
            "block": block,
            "telemetry": telemetry,
        }
        try:
            json.dumps(self._hello_base, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(
                f"task spec is not JSON-serializable: {exc}"
            ) from exc
        if spawn_workers is None:
            spawn_workers = listen is None
        self._spawn_workers = spawn_workers
        self._accept_timeout_s = accept_timeout_s
        self._net_chaos = net_chaos
        host, port = _parse_hostport(listen or "127.0.0.1:0", "--listen")
        try:
            self._listener = socket.create_server((host, port), backlog=16)
        except OSError as exc:
            raise ExecutionError(
                f"cannot bind lease listener on {host}:{port}: {exc}"
            ) from exc
        self._listener.settimeout(accept_timeout_s)
        bound_host, bound_port = self._listener.getsockname()[:2]
        connect_host = (
            "127.0.0.1" if bound_host in ("0.0.0.0", "::") else bound_host
        )
        #: Where workers dial in (``HOST:PORT``, port resolved if 0).
        self.address = f"{connect_host}:{bound_port}"
        self._selector = selectors.DefaultSelector()
        self._slots: dict[int, _TcpSlot] = {}
        self._next_id = 0
        self._generation = 0
        self._lines_total = 0
        self._partitioned = False
        self._closed = False
        # Spawned worker processes not yet matched to a connection, and
        # processes whose connection already dropped (reaped at
        # shutdown so their stderr tails stay readable meanwhile).
        self._unclaimed: list[tuple[subprocess.Popen, _StderrTail]] = []
        self._retired: list[tuple[subprocess.Popen, _StderrTail]] = []
        #: Torn / stale-generation line counts (report + test surface).
        self.torn_lines = 0
        self.fenced_lines = 0

    # -- slot lifecycle -------------------------------------------------
    def spawn_slot(self) -> int:
        if self._closed:
            raise ExecutionError("tcp backend already shut down")
        if self._spawn_workers:
            process = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "exec", "shard-worker",
                    "--connect", self.address,
                ],
                stdin=subprocess.DEVNULL,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                env=_worker_env(),
            )
            self._unclaimed.append((process, _StderrTail(process.stderr)))
        try:
            conn, _addr = self._listener.accept()
        except (TimeoutError, OSError) as exc:
            raise ExecutionError(
                f"no worker dialed in on {self.address} within "
                f"{self._accept_timeout_s:.0f}s: {exc}"
            ) from None
        conn.settimeout(_IO_TIMEOUT_S)
        process = tail = None
        if self._unclaimed:
            # Best-effort association for diagnostics: a reconnecting
            # worker may claim a newer process's tail, which only ever
            # mislabels stderr, never lease accounting.
            process, tail = self._unclaimed.pop(0)
        slot = _TcpSlot(self._next_id, self._generation, conn, process, tail)
        if (
            self._net_chaos is not None
            and slot.id in self._net_chaos.duplicate_slots
        ):
            slot.dup_rng = self._net_chaos.rng_for(slot.id)
        self._next_id += 1
        self._generation += 1
        self._slots[slot.id] = slot
        self._selector.register(conn, selectors.EVENT_READ, slot)
        hello = {**self._hello_base, "generation": slot.generation}
        slot.write(json.dumps(hello, sort_keys=True).encode("utf-8") + b"\n")
        return slot.id

    def live_slots(self) -> list[int]:
        return list(self._slots)

    def dispatch(self, slot: int, lease: dict) -> None:
        target = self._slots[slot]
        stamped = {**lease, "generation": target.generation}
        target.write(
            json.dumps(stamped, sort_keys=True).encode("utf-8") + b"\n"
        )

    # -- receive path ---------------------------------------------------
    def _drop(self, slot: _TcpSlot, events: list[BackendEvent]) -> None:
        try:
            self._selector.unregister(slot.conn)
        except (KeyError, ValueError):
            pass
        slot.close_conn()
        stderr = (
            slot.stderr_tail.text() if slot.stderr_tail is not None else None
        )
        exitcode = slot.process.poll() if slot.process is not None else None
        if slot.process is not None:
            self._retired.append((slot.process, slot.stderr_tail))
        del self._slots[slot.id]
        events.append(
            BackendEvent("exit", slot.id, exitcode=exitcode, stderr=stderr)
        )

    def _partition(self, events: list[BackendEvent]) -> None:
        self._partitioned = True
        for slot in list(self._slots.values()):
            self._drop(slot, events)
        if self._net_chaos.partition_interrupt:
            raise CampaignInterrupted(
                "net chaos: full partition severed every worker connection"
            )

    def _parse(self, slot: _TcpSlot, events: list[BackendEvent]) -> None:
        chaos = self._net_chaos
        while slot.id in self._slots:
            newline = slot.buffer.find(b"\n")
            if newline < 0:
                return
            line = bytes(slot.buffer[:newline])
            del slot.buffer[: newline + 1]
            if not line.strip():
                continue
            index = slot.lines_seen
            slot.lines_seen += 1
            self._lines_total += 1
            copies = 1
            if chaos is not None:
                if chaos.tear_lines.get(slot.id) == index:
                    line = line[: max(1, len(line) // 2)]
                if (
                    slot.dup_rng is not None
                    and slot.dup_rng.random() < chaos.duplicate_rate
                ):
                    copies = 2
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                self.torn_lines += 1
                note_torn_line(slot.id, "supervisor")
            else:
                if isinstance(message, dict):
                    if message.get("generation") != slot.generation:
                        # The fence: traffic stamped for another
                        # connection never reaches the supervisor.
                        self.fenced_lines += 1
                        note_fenced_line(slot.id, message.get("generation"))
                    else:
                        for _ in range(copies):
                            events.append(
                                BackendEvent(
                                    "message", slot.id, message=message
                                )
                            )
            if chaos is not None:
                drop_at = chaos.drop_after.get(slot.id)
                if drop_at is not None and slot.lines_seen >= drop_at:
                    self._drop(slot, events)
                    return
                if (
                    chaos.partition_after is not None
                    and not self._partitioned
                    and self._lines_total >= chaos.partition_after
                ):
                    self._partition(events)
                    return

    def poll(self, timeout: float) -> list[BackendEvent]:
        events: list[BackendEvent] = []
        for slot in self._slots.values():
            if slot.stderr_tail is not None:
                slot.stderr_tail.drain()
        if not self._slots:
            time.sleep(timeout)
            return events
        for key, _mask in self._selector.select(timeout):
            slot: _TcpSlot = key.data
            if slot.id not in self._slots:
                continue
            chaos = self._net_chaos
            if (
                chaos is not None
                and slot.release_at is None
                and slot.id in chaos.delay_slots
            ):
                slot.release_at = time.monotonic() + chaos.delay_slots[slot.id]
            try:
                chunk = slot.conn.recv(_READ_CHUNK)
            except (BlockingIOError, InterruptedError, TimeoutError):
                continue  # no data after all; never a death signal
            except OSError:
                chunk = b""
            if not chunk:
                self._drop(slot, events)
                continue
            slot.buffer.extend(chunk)
            if (
                slot.release_at is not None
                and time.monotonic() < slot.release_at
            ):
                continue  # chaos: the wire is slow today
            self._parse(slot, events)
        if self._net_chaos is not None:
            # Release delay-gated buffers whose deadline passed without
            # fresh bytes arriving to trigger the parse above.
            now = time.monotonic()
            for slot in list(self._slots.values()):
                if (
                    slot.release_at is not None
                    and now >= slot.release_at
                    and slot.buffer
                ):
                    self._parse(slot, events)
        return events

    # -- teardown -------------------------------------------------------
    def kill(self, slot: int) -> None:
        victim = self._slots.pop(slot, None)
        if victim is None:
            return
        try:
            self._selector.unregister(victim.conn)
        except (KeyError, ValueError):
            pass
        victim.close_conn()
        if victim.process is not None:
            if victim.process.poll() is None:
                victim.process.kill()
            try:
                victim.process.wait(_JOIN_GRACE_S)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
        if victim.stderr_tail is not None:
            victim.stderr_tail.close()

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        shutdown_line = b'{"type": "shutdown"}\n'
        for slot in self._slots.values():
            slot.write(shutdown_line)
        for slot in list(self._slots.values()):
            try:
                self._selector.unregister(slot.conn)
            except (KeyError, ValueError):
                pass
            slot.close_conn()
            if slot.process is not None:
                self._retired.append((slot.process, slot.stderr_tail))
        self._slots.clear()
        deadline = time.monotonic() + _JOIN_GRACE_S
        for process, tail in self._retired + self._unclaimed:
            try:
                process.wait(max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                process.kill()
                try:
                    process.wait(_JOIN_GRACE_S)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            if tail is not None:
                tail.close()
        self._retired.clear()
        self._unclaimed.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        self._selector.close()


# ----------------------------------------------------------------------
# The worker side: python -m repro exec shard-worker --connect HOST:PORT
# ----------------------------------------------------------------------
def tcp_worker_main(
    address: str,
    reconnect: int = 0,
    retry_delay_s: float = 0.5,
    connect_timeout_s: float = 10.0,
) -> int:
    """Dial a supervisor and serve leases; optionally dial again.

    Each successful connection runs one full
    :func:`~repro.exec.transport.shard_worker_main` session over the
    socket — a fresh hello, a fresh generation, a fresh slot id on the
    supervisor side.  ``reconnect`` bounds how many times the worker
    re-dials after a session ends (dropped connection, shutdown, or a
    failed connect); a lost connection mid-lease is *not* an error
    here — the supervisor already reclaimed the lease, so the worker
    just starts over as a new slot.

    Exit codes: 0 after a served session, 2 on a bad hello, 3 when the
    supervisor could never be reached.
    """
    host, port = _parse_hostport(address, "--connect")
    attempts_left = max(0, int(reconnect))
    code = 3
    while True:
        try:
            sock = socket.create_connection(
                (host, port), timeout=connect_timeout_s
            )
        except OSError:
            if attempts_left <= 0:
                return code if code != 3 else 3
            attempts_left -= 1
            time.sleep(retry_delay_s)
            continue
        sock.settimeout(None)
        reader = writer = None
        try:
            reader = sock.makefile("r", encoding="utf-8")
            writer = sock.makefile("w", encoding="utf-8")
            code = shard_worker_main(stdin=reader, stdout=writer)
        except (OSError, ValueError):
            code = 0  # connection died mid-session; the supervisor's
            #           lease machinery reclaims the work
        finally:
            for stream in (reader, writer):
                try:
                    if stream is not None:
                        stream.close()
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:
                pass
        if attempts_left <= 0:
            return code
        attempts_left -= 1
        time.sleep(retry_delay_s)
