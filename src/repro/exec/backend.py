"""Pluggable execution backends for sharded campaigns.

:mod:`repro.exec.shards` plans a campaign as block-aligned shard
*leases*; this module defines what actually runs them.  A backend is a
set of numbered worker **slots** behind a uniform message interface:

* the supervisor ``dispatch()``-es a lease message to a slot and
  ``poll()``-s for :class:`BackendEvent` s — streamed partial
  aggregates (one per RNG block, doubling as heartbeats), explicit
  heartbeats, lease completion, errors, and slot death;
* slots can be ``kill()``-ed (straggler re-dispatch, chaos) and
  ``spawn_slot()``-ed back; a SIGKILLed slot surfaces as an ``exit``
  event, never a hang (the private-pipe argument of
  :mod:`repro.exec.runner` applies transport-wide).

Two transports ship:

* :class:`ForkPoolBackend` — the in-process fork pool (the PR 3 pool's
  transport primitive, :class:`PipeWorker`, reused at lease
  granularity).  Tasks are closures; nothing needs to be picklable or
  serializable.
* :class:`~repro.exec.transport.SubprocessBackend` — "remote-like"
  isolated ``python -m repro exec shard-worker`` processes speaking
  NDJSON over stdin/stdout pipes.  It is the test double for future
  SSH/container transports: everything crossing it must be
  JSON-serializable, so a campaign that runs on it is proven ready to
  leave the machine.

Out-of-process transports rebuild the batch task from a **task spec**:
``{"entry": "repro.some.module:factory", "params": {...}}``.
:func:`build_task` imports the entry point (``repro.``-namespaced only)
and calls ``factory(params)`` — the factory must return a
``task(start, size, seed)`` that is a pure function of its arguments,
exactly like :func:`repro.exec.runner.run_supervised` tasks.

Leases are served in fixed :data:`LEASE_BLOCK_TRIALS`-trial blocks so
any partial progress is reusable by a re-dispatch: a lease that dies
after ``k`` blocks has banked ``k`` checkpointable partial aggregates,
and — because blocks align with the vector kernel's RNG blocks — every
partial is bit-identical to the same range of a serial run.
"""

from __future__ import annotations

import abc
import importlib
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ExecutionError
from repro.exec.batching import derive_seed

#: Trials per lease block.  Matches the vector kernel's fixed RNG block
#: (:data:`repro.faultsim.kernel.DEFAULT_BLOCK_SIZE`) so a partial
#: aggregate never splits an RNG block: any shard assignment, re-dispatch
#: or partial completion yields ranges the kernel simulates identically.
LEASE_BLOCK_TRIALS = 256

_JOIN_GRACE_S = 1.0


def block_ranges(
    start: int, size: int, block: int = LEASE_BLOCK_TRIALS
) -> list[tuple[int, int]]:
    """Split ``[start, start+size)`` at absolute ``block`` boundaries.

    Boundaries are *absolute* trial indices (multiples of ``block``),
    not offsets into the range, so the pieces of any two overlapping
    leases line up exactly — the alignment the checkpoint-merge logic
    and the vector kernel's block reuse both rely on.
    """
    if block < 1:
        raise ExecutionError(f"block must be >= 1, got {block}")
    if size < 1:
        raise ExecutionError(f"range size must be >= 1, got {size}")
    out = []
    position = start
    stop = start + size
    while position < stop:
        boundary = ((position // block) + 1) * block
        nxt = min(boundary, stop)
        out.append((position, nxt - position))
        position = nxt
    return out


# ----------------------------------------------------------------------
# Task specs: how out-of-process workers rebuild the batch task
# ----------------------------------------------------------------------
def build_task(spec: dict) -> Callable[[int, int, int], Any]:
    """Rebuild a batch task from its JSON-serializable spec.

    ``spec["entry"]`` names a ``module:factory`` inside the ``repro``
    package; the factory receives ``spec["params"]`` and returns the
    task callable.  Restricting entries to ``repro.`` keeps a hostile
    spec file from importing arbitrary code paths.
    """
    entry = spec.get("entry") if isinstance(spec, dict) else None
    if not isinstance(entry, str) or ":" not in entry:
        raise ExecutionError(
            f"task spec needs an 'entry' of the form 'module:factory', "
            f"got {entry!r}"
        )
    module_name, _, attr = entry.partition(":")
    if not (module_name == "repro" or module_name.startswith("repro.")):
        raise ExecutionError(
            f"task spec entry must live in the repro package, got {entry!r}"
        )
    try:
        module = importlib.import_module(module_name)
        factory = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise ExecutionError(f"cannot resolve task spec {entry!r}: {exc}") from exc
    return factory(spec.get("params") or {})


def selftest_task(params: dict) -> Callable[[int, int, int], dict]:
    """A pure, dependency-free task for transport/chaos self-tests.

    Returns ``{"values": [...]}`` with one deterministic value per
    trial — cheap, serializable, and trivially comparable against a
    serial oracle.
    """
    modulus = int(params.get("modulus", 997))
    delay_s = float(params.get("delay_s", 0.0))
    stderr_probe = params.get("stderr_probe")

    def task(start: int, size: int, seed: int) -> dict:
        if stderr_probe:
            # Exercised by the stderr-tail tests: a worker that talks on
            # stderr must leave those words in the supervisor's tail.
            import sys

            print(
                f"{stderr_probe} [{start},{start + size})",
                file=sys.stderr, flush=True,
            )
        if delay_s:
            time.sleep(delay_s * size)
        return {
            "values": [
                derive_seed(seed, t) % modulus
                for t in range(start, start + size)
            ]
        }

    return task


def selftest_spec(
    modulus: int = 997,
    delay_s: float = 0.0,
    stderr_probe: str | None = None,
) -> dict:
    """The task spec matching :func:`selftest_task`."""
    params: dict = {"modulus": modulus, "delay_s": delay_s}
    if stderr_probe is not None:
        params["stderr_probe"] = stderr_probe
    return {
        "entry": "repro.exec.backend:selftest_task",
        "params": params,
    }


def combine_selftest(a: dict, b: dict) -> dict:
    """Merge two adjacent :func:`selftest_task` payloads (trial order)."""
    return {"values": a["values"] + b["values"]}


# ----------------------------------------------------------------------
# The lease-serving worker loop (shared by every transport)
# ----------------------------------------------------------------------
def serve_lease(
    task: Callable[[int, int, int], Any],
    seed: int,
    lease: dict,
    emit: Callable[[dict], None],
    chaos=None,
    block: int = LEASE_BLOCK_TRIALS,
    telemetry: dict | None = None,
) -> None:
    """Run one lease inside a worker slot, streaming block partials.

    Emits, per block of the lease range: a ``heartbeat`` before
    computing and a ``partial`` (the block's aggregate payload) after —
    so supervisor-side liveness has block granularity and a dead slot
    loses at most the block in flight.  ``chaos`` (a
    :class:`~repro.exec.chaos.ShardChaos`) may SIGKILL or stall the
    slot at controlled points; see the chaos module.

    ``telemetry``, when set, is the supervisor-minted trace context
    (see :func:`repro.obs.telemetry.make_context`): the slot runs a
    local recorder and interleaves ``telemetry`` event batches with the
    partial stream — worker spans per block, flushed incrementally so a
    killed slot has already shipped all but the block in flight.
    Telemetry never touches payloads or seeds: results are bit-identical
    with it on or off.
    """
    lease_id = lease["id"]
    shard = lease.get("shard", -1)
    attempt = lease.get("attempt", 1)
    telem = None
    if telemetry is not None:
        from repro.obs.telemetry import LeaseTelemetry

        telem = LeaseTelemetry(telemetry, lease, emit)
    pieces = block_ranges(lease["start"], lease["size"], block)
    for index, (bstart, bsize) in enumerate(pieces):
        if chaos is not None:
            chaos.maybe_inject(shard, attempt, index, len(pieces))
        emit({"type": "heartbeat", "lease": lease_id, "blocks_done": index})
        span = (
            telem.block_span(index, bstart, bsize)
            if telem is not None
            else None
        )
        try:
            payload = task(bstart, bsize, seed)
        except Exception:
            detail = traceback.format_exc()[-800:]
            if telem is not None:
                span.__exit__(None, None, None)
                telem.error(bstart, bsize, detail)
                telem.finish("error")
            emit({
                "type": "error",
                "lease": lease_id,
                "start": bstart,
                "size": bsize,
                "detail": detail,
            })
            return
        if telem is not None:
            span.__exit__(None, None, None)
            telem.block_done(bsize)
        emit({
            "type": "partial",
            "lease": lease_id,
            "start": bstart,
            "size": bsize,
            "payload": payload,
        })
        if telem is not None:
            telem.flush()
    if telem is not None:
        telem.finish("done")
    emit({"type": "done", "lease": lease_id})


# ----------------------------------------------------------------------
# Backend events and the abstract backend
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendEvent:
    """One thing a backend observed about a slot.

    ``kind`` is ``"message"`` (``message`` holds a worker dict —
    heartbeat/partial/done/error) or ``"exit"`` (the slot process died;
    ``exitcode`` as reported by the transport, ``None`` if unknown).
    ``stderr`` carries the slot's bounded stderr tail on ``exit`` events
    when the transport captured one — a crashed worker's last words.
    """

    kind: str
    slot: int
    message: dict | None = None
    exitcode: int | None = None
    stderr: str | None = None


def note_torn_line(slot: int, side: str) -> None:
    """Record one torn/undecodable protocol line instead of losing it.

    ``side`` says who failed to decode: ``"supervisor"`` (a worker line
    arrived torn) or ``"worker"`` (the worker reported a torn supervisor
    line).  Feeds the ``protocol_torn_lines`` counter and a
    ``protocol_torn`` decision so silent frame corruption shows up in
    ``repro exec digest`` rather than vanishing in a ``continue``.
    """
    from repro.obs import current

    rec = current()
    if rec.enabled:
        rec.counter("protocol_torn_lines").inc(side=side)
    rec.decision(
        "exec", "protocol_torn", subject=f"slot {slot}",
        reason="undecodable protocol line dropped",
        slot=slot, side=side,
    )


def note_fenced_line(slot: int, generation: object) -> None:
    """Record one stale-generation message fenced off by the transport."""
    from repro.obs import current

    rec = current()
    if rec.enabled:
        rec.counter("protocol_fenced_lines").inc()
    rec.decision(
        "exec", "generation_fenced", subject=f"slot {slot}",
        reason="message carried a stale connection generation; dropped",
        slot=slot, generation=generation,
    )


class ExecBackend(abc.ABC):
    """A set of worker slots that serve shard leases.

    The supervisor owns every policy decision (lease grants, deadlines,
    re-dispatch, escalation); a backend only moves messages and
    processes.  Implementations must guarantee that slot death is
    *observable* — a crashed or killed slot must produce an ``exit``
    event on a later ``poll()``, never silently hang the supervisor.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def spawn_slot(self) -> int:
        """Start one worker slot; returns its id."""

    @abc.abstractmethod
    def live_slots(self) -> list[int]:
        """Ids of slots currently believed alive."""

    @abc.abstractmethod
    def dispatch(self, slot: int, lease: dict) -> None:
        """Send a lease message to a slot (best effort; death surfaces
        as an ``exit`` event, not an exception)."""

    @abc.abstractmethod
    def poll(self, timeout: float) -> list[BackendEvent]:
        """Collect pending events, waiting up to ``timeout`` seconds."""

    @abc.abstractmethod
    def kill(self, slot: int) -> None:
        """Hard-kill a slot (straggler replacement, chaos injection)."""

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Stop every slot and release transport resources."""

    def __enter__(self) -> "ExecBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# The fork transport primitive (shared with the PR 3 batch pool)
# ----------------------------------------------------------------------
class PipeWorker:
    """One forked worker process plus its private pipe pair.

    The pipes are created immediately before the fork and the child's
    ends are closed in the supervisor immediately after, so the worker
    holds the only write end of its result pipe: its death — however
    abrupt — reliably reads as ``EOFError`` on the supervisor side.
    (This is the shared-queue deadlock fix of PR 3, packaged as the
    primitive both the batch pool and the fork shard backend build on.)
    """

    def __init__(self, worker_id: int, ctx, main, args: tuple, name: str) -> None:
        self.id = worker_id
        task_recv, self.task_send = ctx.Pipe(duplex=False)
        self.result_recv, result_send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=main,
            args=args + (task_recv, result_send),
            daemon=True,
            name=name,
        )
        self.process.start()
        task_recv.close()
        result_send.close()

    def send(self, item) -> None:
        try:
            self.task_send.send(item)
        except (OSError, ValueError):
            pass  # worker already dead; its exit event reclaims the work

    def stop(self) -> None:
        self.send(None)

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(_JOIN_GRACE_S)
        self.close()

    def close(self) -> None:
        for conn in (self.task_send, self.result_recv):
            try:
                conn.close()
            except OSError:
                pass


def _quiet_worker_recorder() -> None:
    """Point a forked worker at the no-op recorder.

    Workers inherit the parent's recorder via fork; their records could
    never flow back, so recording there is pure overhead.
    """
    from repro.obs import recorder as _recorder_module

    _recorder_module._current = _recorder_module.NULL_RECORDER


def _fork_slot_main(task, seed, chaos, block, telemetry, task_recv, result_send):
    _quiet_worker_recorder()
    while True:
        try:
            lease = task_recv.recv()
        except (EOFError, OSError):
            return  # supervisor went away
        if lease is None:
            return

        def emit(message: dict) -> None:
            try:
                result_send.send(message)
            except (OSError, ValueError):
                raise SystemExit(0) from None

        try:
            serve_lease(
                task, seed, lease, emit,
                chaos=chaos, block=block, telemetry=telemetry,
            )
        except SystemExit:
            return


class ForkPoolBackend(ExecBackend):
    """Shard backend #1: forked slots in this process's address space.

    The task is a closure captured at fork time, so campaign payloads
    (graphs, compiled kernels) need not be serializable — the same
    property the PR 3 batch pool relies on.
    """

    name = "local"

    def __init__(
        self,
        task: Callable[[int, int, int], Any],
        seed: int,
        chaos=None,
        block: int = LEASE_BLOCK_TRIALS,
        telemetry: dict | None = None,
    ) -> None:
        import multiprocessing

        self._task = task
        self._seed = seed
        self._chaos = chaos
        self._block = block
        self._telemetry = telemetry
        self._ctx = multiprocessing.get_context("fork")
        self._slots: dict[int, PipeWorker] = {}
        self._next_id = 0

    def spawn_slot(self) -> int:
        worker = PipeWorker(
            self._next_id,
            self._ctx,
            _fork_slot_main,
            (self._task, self._seed, self._chaos, self._block,
             self._telemetry),
            name=f"repro-shard-{self._next_id}",
        )
        self._slots[worker.id] = worker
        self._next_id += 1
        return worker.id

    def live_slots(self) -> list[int]:
        return list(self._slots)

    def dispatch(self, slot: int, lease: dict) -> None:
        self._slots[slot].send(lease)

    def poll(self, timeout: float) -> list[BackendEvent]:
        from multiprocessing import connection as mp_connection

        events: list[BackendEvent] = []
        by_conn = {w.result_recv: w for w in self._slots.values()}
        if not by_conn:
            time.sleep(timeout)
            return events
        for conn in mp_connection.wait(list(by_conn), timeout=timeout):
            worker = by_conn[conn]
            if worker.id not in self._slots:
                continue
            try:
                message = worker.result_recv.recv()
            except (EOFError, OSError):
                worker.process.join(_JOIN_GRACE_S)
                exitcode = worker.process.exitcode
                worker.close()
                del self._slots[worker.id]
                events.append(
                    BackendEvent("exit", worker.id, exitcode=exitcode)
                )
                continue
            events.append(BackendEvent("message", worker.id, message=message))
        return events

    def kill(self, slot: int) -> None:
        worker = self._slots.pop(slot, None)
        if worker is not None:
            worker.kill()

    def shutdown(self) -> None:
        for worker in self._slots.values():
            worker.stop()
        deadline = time.monotonic() + _JOIN_GRACE_S
        for worker in list(self._slots.values()):
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.kill()
            else:
                worker.close()
        self._slots.clear()


BACKEND_NAMES = ("local", "subprocess", "tcp")


def make_backend(
    name: str,
    *,
    task: Callable[[int, int, int], Any] | None = None,
    task_spec: dict | None = None,
    seed: int = 0,
    chaos=None,
    block: int = LEASE_BLOCK_TRIALS,
    telemetry: dict | None = None,
    listen: str | None = None,
) -> ExecBackend:
    """Instantiate a backend by name.

    ``local`` needs a ``task`` closure; ``subprocess`` and ``tcp`` need
    a JSON-serializable ``task_spec`` (see :func:`build_task`).  A
    caller holding only a spec can run it locally too — the spec is
    built for exactly that symmetry.  ``telemetry`` is the optional
    trace context shipped to every slot
    (:func:`repro.obs.telemetry.make_context`).  ``listen`` applies to
    ``tcp`` only: a ``HOST:PORT`` to bind the lease listener on, which
    also switches the backend to waiting for hand-started remote
    workers instead of spawning loopback ones.
    """
    if name != "tcp" and listen is not None:
        raise ExecutionError(
            f"--listen only applies to the tcp backend, not {name!r}"
        )
    if name == "local":
        if task is None and task_spec is not None:
            task = build_task(task_spec)
        if task is None:
            raise ExecutionError("the local backend needs a task or task_spec")
        return ForkPoolBackend(
            task, seed, chaos=chaos, block=block, telemetry=telemetry
        )
    if name == "subprocess":
        from repro.exec.transport import SubprocessBackend

        if task_spec is None:
            raise ExecutionError(
                "the subprocess backend needs a JSON-serializable task_spec "
                "(its workers run in fresh interpreters)"
            )
        return SubprocessBackend(
            task_spec, seed, chaos=chaos, block=block, telemetry=telemetry
        )
    if name == "tcp":
        from repro.exec.tcp import TcpBackend

        if task_spec is None:
            raise ExecutionError(
                "the tcp backend needs a JSON-serializable task_spec "
                "(its workers run in fresh interpreters)"
            )
        return TcpBackend(
            task_spec, seed, chaos=chaos, block=block, telemetry=telemetry,
            listen=listen,
        )
    raise ExecutionError(
        f"unknown exec backend {name!r} (expected one of {BACKEND_NAMES})"
    )
