"""The subprocess shard transport: isolated workers over NDJSON pipes.

:class:`SubprocessBackend` launches each slot as a fresh
``python -m repro exec shard-worker`` interpreter and speaks a
line-oriented JSON protocol over its stdin/stdout:

* supervisor -> worker: one ``hello`` line (task spec, campaign seed,
  serialized chaos plan, block size, optional telemetry trace context),
  then ``lease`` lines, then an optional ``shutdown``;
* worker -> supervisor: ``ready`` after the hello, then the
  :func:`repro.exec.backend.serve_lease` stream — ``heartbeat`` /
  ``partial`` / ``done`` / ``error`` lines, interleaved with
  ``telemetry`` event batches when the hello carried a trace context.

Nothing crosses the boundary except JSON, so a campaign that completes
on this backend is proven serializable end to end — the contract a
future SSH or container transport inherits unchanged.  The supervisor
reads worker stdout with raw nonblocking ``os.read`` under a
``selectors`` loop (never the buffered reader — buffered bytes are
invisible to the selector) and treats EOF as slot death, mirroring the
fork transport's private-pipe crash signal.

:func:`shard_worker_main` is the worker side, mounted at
``python -m repro exec shard-worker``; it rebuilds the task from the
spec (:func:`repro.exec.backend.build_task`) and serves leases until
EOF or ``shutdown``.
"""

from __future__ import annotations

import json
import os
import selectors
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import ExecutionError
from repro.exec.backend import (
    LEASE_BLOCK_TRIALS,
    BackendEvent,
    ExecBackend,
    build_task,
    note_torn_line,
    serve_lease,
)

_JOIN_GRACE_S = 1.0
_READ_CHUNK = 65536
_STDERR_TAIL_BYTES = 4096


def _worker_env() -> dict[str, str]:
    """Child env with the repro package importable.

    The tests (and any source checkout) rely on ``PYTHONPATH=src``; an
    installed package needs nothing.  Prepending this package's parent
    directory covers both without caring which applies.
    """
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class _StderrTail:
    """Bounded, non-blocking capture of one worker's stderr.

    Drained every supervisor poll so the pipe can never fill up and
    block the worker; only the last :data:`_STDERR_TAIL_BYTES` survive,
    which is exactly what a crash post-mortem wants — the last words,
    not the life story.
    """

    def __init__(self, pipe, limit: int = _STDERR_TAIL_BYTES) -> None:
        self._pipe = pipe
        self._limit = limit
        self._buffer = bytearray()
        os.set_blocking(pipe.fileno(), False)

    def drain(self) -> None:
        while True:
            try:
                chunk = os.read(self._pipe.fileno(), _READ_CHUNK)
            except (BlockingIOError, InterruptedError):
                return
            except (OSError, ValueError):
                return  # pipe closed; keep whatever was captured
            if not chunk:
                return
            self._buffer.extend(chunk)
            if len(self._buffer) > self._limit:
                del self._buffer[: len(self._buffer) - self._limit]

    def text(self) -> str | None:
        self.drain()
        if not self._buffer:
            return None
        return self._buffer.decode("utf-8", "replace")

    def close(self) -> None:
        try:
            self._pipe.close()
        except OSError:
            pass


class _Slot:
    """One worker subprocess plus its stdout line buffer."""

    def __init__(self, slot_id: int, hello: bytes) -> None:
        self.id = slot_id
        self.buffer = bytearray()
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "exec", "shard-worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=_worker_env(),
        )
        os.set_blocking(self.process.stdout.fileno(), False)
        self.stderr_tail = _StderrTail(self.process.stderr)
        self.write(hello)

    def write(self, line: bytes) -> None:
        try:
            self.process.stdin.write(line)
            self.process.stdin.flush()
        except (OSError, ValueError, BrokenPipeError):
            pass  # slot died; its EOF event reclaims the work

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
        try:
            self.process.wait(_JOIN_GRACE_S)
        except subprocess.TimeoutExpired:  # pragma: no cover - kill is final
            pass
        self.close()

    def close(self) -> None:
        self.stderr_tail.close()
        for stream in (self.process.stdin, self.process.stdout):
            try:
                if stream is not None:
                    stream.close()
            except OSError:
                pass


class SubprocessBackend(ExecBackend):
    """Shard backend #2: isolated ``repro exec shard-worker`` processes."""

    name = "subprocess"

    def __init__(
        self,
        task_spec: dict,
        seed: int,
        chaos=None,
        block: int = LEASE_BLOCK_TRIALS,
        telemetry: dict | None = None,
    ) -> None:
        try:
            chaos_dict = chaos.to_dict() if chaos is not None else None
            self._hello = (
                json.dumps(
                    {
                        "type": "hello",
                        "spec": task_spec,
                        "seed": seed,
                        "chaos": chaos_dict,
                        "block": block,
                        "telemetry": telemetry,
                    },
                    sort_keys=True,
                ).encode("utf-8")
                + b"\n"
            )
        except (TypeError, ValueError) as exc:
            raise ExecutionError(
                f"task spec is not JSON-serializable: {exc}"
            ) from exc
        self._slots: dict[int, _Slot] = {}
        self._next_id = 0
        self._selector = selectors.DefaultSelector()
        #: Undecodable worker lines seen by this supervisor (satellite
        #: of the lease supervisor's ``protocol_torn_lines`` report).
        self.torn_lines = 0

    def spawn_slot(self) -> int:
        slot = _Slot(self._next_id, self._hello)
        self._slots[slot.id] = slot
        self._selector.register(
            slot.process.stdout, selectors.EVENT_READ, slot
        )
        self._next_id += 1
        return slot.id

    def live_slots(self) -> list[int]:
        return list(self._slots)

    def dispatch(self, slot: int, lease: dict) -> None:
        self._slots[slot].write(
            json.dumps(lease, sort_keys=True).encode("utf-8") + b"\n"
        )

    def _drop(self, slot: _Slot, events: list[BackendEvent]) -> None:
        try:
            self._selector.unregister(slot.process.stdout)
        except (KeyError, ValueError):
            pass
        exitcode = slot.process.poll()
        stderr = slot.stderr_tail.text()
        slot.close()
        del self._slots[slot.id]
        events.append(
            BackendEvent("exit", slot.id, exitcode=exitcode, stderr=stderr)
        )

    def poll(self, timeout: float) -> list[BackendEvent]:
        events: list[BackendEvent] = []
        if not self._slots:
            time.sleep(timeout)
            return events
        for live in self._slots.values():
            live.stderr_tail.drain()
        for key, _mask in self._selector.select(timeout):
            slot: _Slot = key.data
            if slot.id not in self._slots:
                continue
            try:
                chunk = os.read(slot.process.stdout.fileno(), _READ_CHUNK)
            except (OSError, ValueError):
                chunk = b""
            except BlockingIOError:  # pragma: no cover - select said ready
                continue
            if not chunk:
                self._drop(slot, events)
                continue
            slot.buffer.extend(chunk)
            while True:
                newline = slot.buffer.find(b"\n")
                if newline < 0:
                    break
                line = bytes(slot.buffer[:newline])
                del slot.buffer[: newline + 1]
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                except json.JSONDecodeError:
                    # A torn line can only be the slot's last words —
                    # but count it rather than lose the evidence.
                    self.torn_lines += 1
                    note_torn_line(slot.id, "supervisor")
                    continue
                if isinstance(message, dict):
                    events.append(
                        BackendEvent("message", slot.id, message=message)
                    )
        return events

    def kill(self, slot: int) -> None:
        victim = self._slots.pop(slot, None)
        if victim is not None:
            try:
                self._selector.unregister(victim.process.stdout)
            except (KeyError, ValueError):
                pass
            victim.kill()

    def shutdown(self) -> None:
        shutdown_line = b'{"type": "shutdown"}\n'
        for slot in self._slots.values():
            slot.write(shutdown_line)
        deadline = time.monotonic() + _JOIN_GRACE_S
        for slot in list(self._slots.values()):
            try:
                slot.process.wait(max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                slot.process.kill()
            try:
                self._selector.unregister(slot.process.stdout)
            except (KeyError, ValueError):
                pass
            slot.close()
        self._slots.clear()
        self._selector.close()


# ----------------------------------------------------------------------
# The worker side: python -m repro exec shard-worker
# ----------------------------------------------------------------------
def shard_worker_main(stdin=None, stdout=None) -> int:
    """Serve shard leases over stdin/stdout until EOF or ``shutdown``.

    Exit codes: 0 on clean shutdown/EOF, 2 on a malformed hello (the
    spec could not be rebuilt — a config error, not a trial failure).
    Trial errors never exit; they flow back as ``error`` messages so
    the supervisor can retry or escalate.

    When the hello carries a ``generation`` (the TCP transport's
    per-connection token), every emitted message echoes it and any
    incoming lease stamped with a *different* generation is skipped —
    both halves of the fence that keeps a zombie connection's traffic
    out of a fresh registration.  A torn supervisor line is reported
    back as a ``protocol_torn`` message instead of vanishing.
    """
    from repro.exec.chaos import ShardChaos

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    generation: int | None = None

    def emit(message: dict) -> None:
        if generation is not None:
            message = {**message, "generation": generation}
        stdout.write(json.dumps(message, sort_keys=True) + "\n")
        stdout.flush()

    hello_line = stdin.readline()
    if not hello_line:
        return 0
    try:
        hello = json.loads(hello_line)
        if hello.get("type") != "hello":
            raise ValueError(f"expected hello, got {hello.get('type')!r}")
        task = build_task(hello["spec"])
        seed = int(hello["seed"])
        block = int(hello.get("block") or LEASE_BLOCK_TRIALS)
        chaos = (
            ShardChaos.from_dict(hello["chaos"])
            if hello.get("chaos")
            else None
        )
        telemetry = hello.get("telemetry") or None
        generation = hello.get("generation")
    except Exception as exc:
        emit({"type": "error", "lease": None, "detail": f"bad hello: {exc}"})
        return 2
    emit({"type": "ready"})
    for line in stdin:
        if not line.strip():
            continue
        try:
            message = json.loads(line)
        except json.JSONDecodeError:
            # A torn supervisor line; nothing to serve, but say so.
            emit({"type": "protocol_torn", "lease": None})
            continue
        if message.get("type") == "shutdown":
            return 0
        if message.get("type") != "lease":
            continue
        if (
            generation is not None
            and message.get("generation") not in (None, generation)
        ):
            continue  # a stale supervisor line meant for an old connection
        serve_lease(
            task, seed, message, emit,
            chaos=chaos, block=block, telemetry=telemetry,
        )
    return 0
