"""Crash-safe campaign checkpoints: streamed NDJSON + atomic manifest.

A checkpoint file is NDJSON, one object per line, flushed (+fsync'd)
after every completed batch so a crash loses at most the batch in
flight.  A *fresh* checkpoint truncates any existing file at its path
(stale batches from an earlier campaign must never survive into a later
resume); only resume appends:

* line 1 — ``{"type": "meta", "format": "repro-exec-checkpoint",
  "version": 1, "fingerprint": ..., "trials": ..., "seed": ...}``;
* then one ``{"type": "batch", "start": S, "size": N, "payload": {...}}``
  per completed batch, in completion (not trial) order.

The **fingerprint** hashes the campaign's identity (kind, seed, trials,
campaign parameters); resume refuses a checkpoint whose fingerprint does
not match, so results from a different campaign can never be merged in.

A crash can leave a torn final line (or, on hostile filesystems, torn
middle lines).  :func:`load_checkpoint` treats any undecodable or
schema-invalid line as *corrupt*: it is counted, reported to the caller
(who surfaces it as an obs decision), and its batch simply recomputed —
corruption degrades to lost work, never to a crash or a wrong result.

On successful completion the runner writes ``<path>.manifest``, a single
JSON document, via write-temp-then-:func:`os.replace` — its existence is
an atomic signal that the checkpoint covers the whole campaign.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CheckpointError

CHECKPOINT_FORMAT = "repro-exec-checkpoint"
CHECKPOINT_VERSION = 1


def _ends_without_newline(path: str) -> bool:
    """True if ``path`` exists, is non-empty, and lacks a final newline."""
    try:
        with open(path, "rb") as probe:
            probe.seek(0, os.SEEK_END)
            if probe.tell() == 0:
                return False
            probe.seek(-1, os.SEEK_END)
            return probe.read(1) != b"\n"
    except OSError:
        return False


def campaign_fingerprint(kind: str, seed: int, trials: int, params: dict) -> str:
    """A short stable digest identifying one campaign configuration.

    ``params`` must be JSON-serializable; key order does not matter.
    """
    payload = json.dumps(
        {"kind": kind, "seed": seed, "trials": trials, "params": params},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class CheckpointData:
    """Everything recovered from an existing checkpoint file."""

    fingerprint: str | None = None
    trials: int | None = None
    seed: int | None = None
    entries: dict[tuple[int, int], Any] = field(default_factory=dict)
    corrupt_lines: int = 0
    corrupt_detail: list[str] = field(default_factory=list)

    def covered_trials(self) -> int:
        return sum(size for _, size in self.entries)


def load_checkpoint(path: str) -> CheckpointData:
    """Recover completed batches from ``path``, tolerating torn lines."""
    data = CheckpointData()
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            data.corrupt_lines += 1
            data.corrupt_detail.append(f"line {number}: undecodable ({exc.msg})")
            continue
        if not isinstance(record, dict):
            data.corrupt_lines += 1
            data.corrupt_detail.append(f"line {number}: not an object")
            continue
        kind = record.get("type")
        if kind == "meta":
            if record.get("format") != CHECKPOINT_FORMAT:
                raise CheckpointError(
                    f"{path!r} is not a campaign checkpoint "
                    f"(format {record.get('format')!r})"
                )
            if record.get("version", 1) > CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint version {record.get('version')} is newer "
                    f"than supported {CHECKPOINT_VERSION}"
                )
            data.fingerprint = record.get("fingerprint")
            data.trials = record.get("trials")
            data.seed = record.get("seed")
        elif kind == "batch":
            start, size, payload = (
                record.get("start"),
                record.get("size"),
                record.get("payload"),
            )
            if (
                isinstance(start, int)
                and isinstance(size, int)
                and size >= 1
                and start >= 0
                and payload is not None
            ):
                data.entries[(start, size)] = payload
            else:
                data.corrupt_lines += 1
                data.corrupt_detail.append(f"line {number}: malformed batch record")
        else:
            data.corrupt_lines += 1
            data.corrupt_detail.append(f"line {number}: unknown type {kind!r}")
    return data


class CheckpointWriter:
    """Append-only NDJSON checkpoint writer (one flush+fsync per batch)."""

    def __init__(
        self,
        path: str,
        fingerprint: str,
        trials: int,
        seed: int,
        fresh: bool,
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.trials = trials
        self.seed = seed
        self.batches_written = 0
        # A fresh checkpoint must truncate: appending a new meta line to a
        # stale file would let a later --resume merge batches computed
        # under different campaign parameters (the last meta line wins the
        # fingerprint check while every old batch line survives).
        torn_tail = False if fresh else _ends_without_newline(path)
        try:
            self._handle = open(path, "w" if fresh else "a", encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(
                f"cannot open checkpoint {path!r}: {exc}"
            ) from exc
        if fresh:
            self._write_line(
                {
                    "type": "meta",
                    "format": CHECKPOINT_FORMAT,
                    "version": CHECKPOINT_VERSION,
                    "fingerprint": fingerprint,
                    "trials": trials,
                    "seed": seed,
                }
            )
        elif torn_tail:
            # Seal a torn trailing line so the next record starts on its
            # own line instead of extending the undecodable partial one.
            self._handle.write("\n")
            self._handle.flush()

    def record(self, start: int, size: int, payload: Any) -> None:
        self._write_line(
            {"type": "batch", "start": start, "size": size, "payload": payload}
        )
        self.batches_written += 1

    def _write_line(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def write_manifest(
        self, extra: dict | None = None, complete: bool = True
    ) -> str:
        """Atomically publish ``<path>.manifest``.

        ``complete=True`` marks the checkpoint as covering the whole
        campaign; ``complete=False`` seals an *interrupted* run — the
        manifest records how far it got while leaving the completion
        signal unset, so resume tooling and humans can tell a graceful
        interrupt from a finished campaign.
        """
        manifest_path = self.path + ".manifest"
        document = {
            "format": CHECKPOINT_FORMAT + "-manifest",
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "trials": self.trials,
            "seed": self.seed,
            "complete": complete,
            "batches_written": self.batches_written,
        }
        if extra:
            document.update(extra)
        tmp_path = manifest_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, manifest_path)
        return manifest_path


# ----------------------------------------------------------------------
# Structural validation (scripts/check_ndjson.py, CI)
# ----------------------------------------------------------------------
def coverage_gaps(
    entries: dict[tuple[int, int], Any] | list[tuple[int, int]],
    trials: int,
) -> list[tuple[int, int]]:
    """Sub-ranges of ``[0, trials)`` no entry covers (overlaps allowed)."""
    intervals = sorted((start, start + size) for start, size in entries)
    gaps: list[tuple[int, int]] = []
    position = 0
    for start, stop in intervals:
        if start > position:
            gaps.append((position, start))
        position = max(position, stop)
    if position < trials:
        gaps.append((position, trials))
    return gaps


def validate_checkpoint(path: str) -> tuple[list[str], str]:
    """Structural validation of a checkpoint file and its manifest.

    Returns ``(problems, label)``; an empty problem list means the file
    is a well-formed exec checkpoint.  Torn/corrupt lines are *not*
    problems — the format tolerates them by design (they degrade to
    recomputed batches) — but they are surfaced in the label.  A
    manifest claiming ``complete`` over a checkpoint with coverage gaps
    IS a problem: that combination could silently truncate a campaign.
    """
    problems: list[str] = []
    try:
        data = load_checkpoint(path)
    except CheckpointError as exc:
        return [str(exc)], "?"
    label = f"{CHECKPOINT_FORMAT} v{CHECKPOINT_VERSION}"
    if data.corrupt_lines:
        label += f" ({data.corrupt_lines} corrupt line(s) tolerated)"
    if data.fingerprint is None:
        problems.append("no meta line: fingerprint/trials/seed unknown")
    if data.trials is not None:
        for start, size in data.entries:
            if start + size > data.trials:
                problems.append(
                    f"batch [{start},{start + size}) exceeds "
                    f"trials={data.trials}"
                )
    manifest_path = path + ".manifest"
    if not os.path.exists(manifest_path):
        return problems, label
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        problems.append(f"manifest unreadable: {exc}")
        return problems, label
    if not isinstance(manifest, dict):
        problems.append("manifest is not a JSON object")
        return problems, label
    if manifest.get("format") != CHECKPOINT_FORMAT + "-manifest":
        problems.append(
            f"manifest format {manifest.get('format')!r} is not "
            f"{CHECKPOINT_FORMAT + '-manifest'!r}"
        )
    for key in ("fingerprint", "trials", "seed"):
        checkpoint_value = getattr(data, key)
        manifest_value = manifest.get(key)
        if checkpoint_value is not None and manifest_value != checkpoint_value:
            problems.append(
                f"manifest {key} {manifest_value!r} does not match "
                f"checkpoint {checkpoint_value!r}"
            )
    if manifest.get("complete") and data.trials:
        gaps = coverage_gaps(data.entries, data.trials)
        if gaps:
            problems.append(
                f"manifest claims completion but {len(gaps)} trial "
                f"range(s) are uncovered (first: {gaps[0]})"
            )
    return problems, label
