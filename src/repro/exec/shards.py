"""Shard-tolerant campaign execution: block-aligned leases over backends.

Where :func:`repro.exec.runner.run_supervised` survives the loss of
single *workers*, this module survives the loss of entire *shards* —
the grid-style step the ROADMAP's "shard campaigns across hosts" item
asks for.  A campaign is split into :class:`Shard` s whose boundaries
fall on :data:`~repro.exec.backend.LEASE_BLOCK_TRIALS`-trial RNG
blocks, so **any** shard assignment, re-dispatch, partial completion or
resume yields aggregates bit-identical to a serial run (the kernel
simulates covering blocks whole; the scalar engine is per-trial seeded
— neither can see the schedule).

The supervisor (:func:`run_sharded`) grants each shard's uncovered
range as a **lease** to a backend slot and tracks liveness by
heartbeat: workers stream one partial aggregate per block (each partial
doubles as a heartbeat), and a lease whose slot goes silent past
``ExecPolicy.heartbeat_timeout`` is *expired* — the slot is killed and
the lease's **uncovered remainder** re-dispatched through the PR 3
retry/backoff plumbing.  Completed blocks are never re-run: every
partial is banked in the standard NDJSON checkpoint
(:mod:`repro.exec.checkpoint`, same fingerprint as the batch runner),
so a supervisor crash mid-campaign resumes without repeating finished
shards, and a checkpoint written by the sharded path resumes under the
batch runner (and vice versa).

Escalation mirrors the supervised runner's ladder: per-lease attempts
exhaust into in-process serial rescue of the remaining blocks, and a
backend exceeding the pool failure budget is abandoned wholesale — the
campaign still completes serially.  Every step is a typed ``exec``
decision event (``lease_grant`` / ``lease_expired`` / ``redispatch`` /
``shard_crash`` / ``backend_abandoned``) on the ambient recorder.
"""

from __future__ import annotations

import heapq
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ExecutionError
from repro.exec.backend import (
    LEASE_BLOCK_TRIALS,
    ExecBackend,
    block_ranges,
    build_task,
    make_backend,
    note_torn_line,
)
from repro.exec.batching import Batch, available_cpus, derive_seed
from repro.exec.checkpoint import CheckpointWriter, campaign_fingerprint
from repro.exec.runner import (
    ExecPolicy,
    InterruptGuard,
    _assemble,
    _covered,
    _load_resume,
)
from repro.obs import current
from repro.obs.telemetry import (
    HealthBoard,
    TelemetryMerger,
    make_context,
    mint_run_id,
)

_POLL_S = 0.02


@dataclass(frozen=True)
class Shard:
    """A contiguous, block-aligned slice of a campaign's trials."""

    id: int
    start: int
    size: int

    @property
    def stop(self) -> int:
        return self.start + self.size


def plan_shards(
    trials: int, shards: int, block: int = LEASE_BLOCK_TRIALS
) -> tuple[Shard, ...]:
    """Split ``trials`` into at most ``shards`` block-aligned shards.

    Shard boundaries are multiples of ``block`` (the final shard may end
    short at ``trials``), and blocks are distributed as evenly as the
    block count allows; a campaign smaller than ``shards`` blocks gets
    one shard per block.  The plan is a pure function of its arguments —
    resume re-derives the identical plan.
    """
    if trials < 1:
        raise ExecutionError(f"trials must be >= 1, got {trials}")
    if shards < 1:
        raise ExecutionError(f"shards must be >= 1, got {shards}")
    if block < 1:
        raise ExecutionError(f"block must be >= 1, got {block}")
    n_blocks = (trials + block - 1) // block
    shards = min(shards, n_blocks)
    base, extra = divmod(n_blocks, shards)
    plan: list[Shard] = []
    position = 0
    for index in range(shards):
        blocks = base + (1 if index < extra else 0)
        start = position * block
        stop = min((position + blocks) * block, trials)
        plan.append(Shard(index, start, stop - start))
        position += blocks
    return tuple(plan)


def uncovered_ranges(
    start: int,
    size: int,
    done: dict,
    combine: Callable | None,
    block: int = LEASE_BLOCK_TRIALS,
) -> list[tuple[int, int]]:
    """Block-aligned sub-ranges of ``[start, start+size)`` not in ``done``.

    Consecutive uncovered blocks merge into one contiguous range (one
    lease can serve them in a single pass).  Coverage is judged per
    block via the runner's chain search, so checkpoint entries written
    at any batch size count as long as they tile whole blocks.
    """
    missing: list[tuple[int, int]] = []
    for bstart, bsize in block_ranges(start, size, block):
        if _covered(Batch(bstart, bsize), done, combine):
            continue
        if missing and missing[-1][0] + missing[-1][1] == bstart:
            last_start, last_size = missing[-1]
            missing[-1] = (last_start, last_size + bsize)
        else:
            missing.append((bstart, bsize))
    return missing


@dataclass
class ShardReport:
    """What the shard supervisor did to complete one campaign."""

    trials: int
    shards: int
    block: int
    slots: int
    backend: str
    leases_granted: int = 0
    redispatches: int = 0
    lease_expiries: int = 0
    shard_crashes: int = 0
    serial_rescue_blocks: int = 0
    partials: int = 0
    partials_from_checkpoint: int = 0
    heartbeats: int = 0
    backend_abandoned: bool = False
    corrupt_checkpoint_lines: int = 0
    protocol_torn_lines: int = 0
    generation_fenced_lines: int = 0
    checkpoint_path: str | None = None
    manifest_path: str | None = None
    elapsed_s: float = 0.0
    run_id: str | None = None
    telemetry_batches: int = 0
    worker_spans: int = 0
    status_file: str | None = None
    telemetry_stream_path: str | None = None

    @property
    def workers(self) -> int:
        """Slot count, under the name the CLI report plumbing expects."""
        return self.slots


@dataclass
class _Lease:
    id: int
    shard: int
    start: int
    size: int
    attempt: int
    slot: int
    last_beat: float = field(default_factory=time.monotonic)
    heartbeats: int = 0

    def message(self) -> dict:
        return {
            "type": "lease",
            "id": self.id,
            "shard": self.shard,
            "start": self.start,
            "size": self.size,
            "attempt": self.attempt,
        }


def run_sharded(
    task: Callable[[int, int, int], Any] | None = None,
    *,
    trials: int,
    seed: int,
    kind: str,
    params: dict | None = None,
    policy: ExecPolicy | None = None,
    shards: int = 0,
    backend: str | ExecBackend = "local",
    task_spec: dict | None = None,
    combine: Callable[[Any, Any], Any] | None = None,
    checkpoint: str | None = None,
    resume: str | None = None,
    chaos=None,
    block: int = LEASE_BLOCK_TRIALS,
    status_file: str | None = None,
    telemetry_stream: str | None = None,
    run_id: str | None = None,
    listen: str | None = None,
    profile: float | None = None,
) -> tuple[list[Any], ShardReport]:
    """Run a campaign as shard leases over an execution backend.

    ``task``/``task_spec`` follow :func:`~repro.exec.backend.make_backend`;
    ``combine`` is required (partial aggregates arrive per block and must
    merge).  Returns ``(payloads, report)`` with one payload per planned
    shard, in trial order — the same shape ``run_supervised`` returns
    for its batch plan, so campaign aggregation code is shared.

    When the ambient recorder is enabled (or ``telemetry_stream`` is
    set), the supervisor mints a run id, ships trace context to every
    slot, and merges the worker telemetry streamed back into its own
    trace (clock-normalized; see :mod:`repro.obs.telemetry`) — the
    merged file reads as one distributed tree.  ``status_file`` names a
    JSON the supervisor atomically rewrites with live per-shard health
    (``repro exec watch`` tails it).  All of this is result-transparent:
    payloads, seeds, and checkpoint fingerprints are byte-identical with
    telemetry on or off.
    """
    if combine is None:
        raise ExecutionError("run_sharded requires a combine function")
    policy = policy or ExecPolicy()
    if shards < 0:
        raise ExecutionError(f"shards must be >= 0, got {shards}")
    n_blocks = (trials + block - 1) // block
    shards = shards or min(max(2, available_cpus()), n_blocks)
    plan = plan_shards(trials, shards, block)
    slots = min(policy.workers or min(len(plan), available_cpus()), len(plan))
    slots = max(1, slots)
    local_task = task if task is not None else build_task(task_spec or {})
    fingerprint = campaign_fingerprint(kind, seed, trials, params or {})
    rec = current()
    report = ShardReport(
        trials=trials,
        shards=len(plan),
        block=block,
        slots=slots,
        backend=backend if isinstance(backend, str) else backend.name,
    )
    telemetry_on = (
        rec.enabled or telemetry_stream is not None or profile is not None
    )
    run_id = run_id or (mint_run_id() if telemetry_on else None)
    telemetry = make_context(run_id) if telemetry_on else None
    if telemetry is not None and profile:
        # Workers read the sampling rate out of the trace context, so
        # profiling crosses every transport without protocol changes.
        telemetry["profile"] = float(profile)
    report.run_id = run_id
    report.status_file = status_file
    board = HealthBoard(
        plan, block,
        run_id=run_id or "-",
        kind=kind,
        trials=trials,
        backend=report.backend,
        status_file=status_file,
    )

    done: dict[tuple[int, int], Any] = {}
    writer: CheckpointWriter | None = None
    t0 = time.perf_counter()
    with rec.span(
        "exec.shards",
        kind=kind,
        trials=trials,
        shards=len(plan),
        slots=slots,
        backend=report.backend,
        fingerprint=fingerprint,
        run_id=run_id,
    ) as shards_span, InterruptGuard() as guard:
        merger = (
            TelemetryMerger(
                rec, run_id,
                parent_sid=shards_span.sid,
                parent_depth=shards_span.depth,
            )
            if telemetry_on
            else None
        )
        board.maybe_write(force=True)
        if resume is not None:
            _load_resume(resume, fingerprint, done, report, rec)
            report.partials_from_checkpoint = len(done)
        checkpoint_path = checkpoint or resume
        if checkpoint_path is not None:
            fresh = not (
                resume is not None
                and os.path.exists(resume)
                and checkpoint_path == resume
            )
            writer = CheckpointWriter(
                checkpoint_path, fingerprint, trials, seed, fresh=fresh
            )
            report.checkpoint_path = checkpoint_path

        def bank(start: int, size: int, payload: Any, source: str) -> None:
            if (start, size) in done:
                return  # a raced re-dispatch finished the same block
            done[(start, size)] = payload
            report.partials += 1
            board.block_done(start, size, source)
            if rec.enabled:
                rec.counter("exec_partials_total").inc(source=source)
            if writer is not None:
                writer.record(start, size, payload)
                if (
                    chaos is not None
                    and getattr(chaos, "interrupt_after_partials", None)
                    is not None
                    and writer.batches_written >= chaos.interrupt_after_partials
                ):
                    from repro.errors import CampaignInterrupted

                    rec.decision(
                        "exec", "interrupted", subject=kind,
                        reason="chaos: interrupt_after_partials reached",
                        partials_written=writer.batches_written,
                    )
                    raise CampaignInterrupted(
                        f"chaos interrupt after {writer.batches_written} "
                        f"checkpointed partials"
                    )
            guard.check(rec, kind)

        rec.decision(
            "exec", "shard_plan", subject=kind,
            reason="campaign split into block-aligned shard leases",
            shards=len(plan), block=block, slots=slots,
            backend=report.backend,
        )
        try:
            _supervise(
                plan, policy, backend, task, task_spec, local_task, seed,
                chaos, block, combine, done, bank, report, rec, guard,
                telemetry, merger, board, listen,
            )
            # Every shard must now assemble from banked ranges.
            payloads = [
                _assemble(Batch(s.start, s.size), done, combine) for s in plan
            ]
            if writer is not None:
                report.manifest_path = writer.write_manifest(
                    {
                        "kind": kind,
                        "shards": len(plan),
                        "backend": report.backend,
                    }
                )
            rec.decision(
                "exec", "complete", subject=kind,
                reason="all shards accounted for",
                shards=len(plan),
                redispatches=report.redispatches,
                from_checkpoint=report.partials_from_checkpoint,
            )
            board.maybe_write(complete=True, force=True)
        except BaseException:
            if writer is not None:
                report.manifest_path = writer.write_manifest(
                    {
                        "kind": kind,
                        "shards": len(plan),
                        "backend": report.backend,
                        "interrupted": True,
                    },
                    complete=False,
                )
            board.maybe_write(force=True)
            raise
        finally:
            if writer is not None:
                writer.close()
            if merger is not None:
                report.telemetry_batches = merger.batches
                report.worker_spans = merger.worker_spans
                if telemetry_stream is not None:
                    merger.write_stream(telemetry_stream)
                    report.telemetry_stream_path = telemetry_stream
            report.elapsed_s = time.perf_counter() - t0
    return payloads, report


def _supervise(
    plan, policy, backend, task, task_spec, local_task, seed, chaos, block,
    combine, done, bank, report, rec, guard,
    telemetry=None, merger=None, board=None, listen=None,
) -> None:
    """The lease event loop (see module docstring for the policy)."""
    jitter_rng = random.Random(derive_seed(seed, 0, purpose="lease-jitter"))
    failure_budget = policy.resolved_failure_budget()
    heartbeat_timeout = policy.heartbeat_timeout

    def rescue(start: int, size: int, reason: str, shard: int = -1) -> None:
        """Run a range serially in-process, banking per-block partials."""
        rec.decision(
            "exec", "serial_fallback", subject=f"[{start},{start + size})",
            reason=reason, shard=shard,
        )
        if board is not None:
            board.rescuing(shard)
        for bstart, bsize in uncovered_ranges(start, size, done, combine, block):
            for pstart, psize in block_ranges(bstart, bsize, block):
                try:
                    payload = local_task(pstart, psize, seed)
                except Exception as exc:
                    raise ExecutionError(
                        f"block [{pstart},{pstart + psize}) failed even in "
                        f"serial rescue: {exc}"
                    ) from exc
                report.serial_rescue_blocks += 1
                bank(pstart, psize, payload, "serial")

    # Work queue: (shard_id, start, size, attempt); pop() -> plan order.
    pending: list[tuple[int, int, int, int]] = []
    for shard in reversed(plan):
        for start, size in reversed(
            uncovered_ranges(shard.start, shard.size, done, combine, block)
        ):
            pending.append((shard.id, start, size, 1))
    retry_heap: list[tuple[float, int, int, int, int, int]] = []
    retry_tiebreak = 0
    failures = 0
    next_lease_id = 0
    inflight: dict[int, _Lease] = {}  # lease id -> lease
    slot_lease: dict[int, int] = {}  # slot id -> lease id

    if not pending:
        return  # checkpoint already covers the campaign

    exec_backend = (
        backend
        if isinstance(backend, ExecBackend)
        else make_backend(
            backend,
            task=task,
            task_spec=task_spec,
            seed=seed,
            chaos=chaos,
            block=block,
            telemetry=telemetry,
            listen=listen,
        )
    )

    def fail_lease(lease: _Lease, cause: str) -> None:
        nonlocal retry_tiebreak
        slot_lease.pop(lease.slot, None)
        inflight.pop(lease.id, None)
        if merger is not None:
            merger.settle(lease.id)
        remainder = uncovered_ranges(
            lease.start, lease.size, done, combine, block
        )
        if not remainder:
            return  # every block landed before the lease died
        if lease.attempt >= policy.max_attempts:
            for start, size in remainder:
                rescue(
                    start, size,
                    f"{cause}; lease attempts exhausted, running in-process",
                    lease.shard,
                )
            return
        delay = min(
            policy.backoff_max,
            policy.backoff_base * (2 ** (lease.attempt - 1)),
        )
        delay *= 1.0 + policy.backoff_jitter * jitter_rng.random()
        report.redispatches += len(remainder)
        if rec.enabled:
            rec.counter("exec_redispatch_total").inc(len(remainder))
        if board is not None:
            for _ in remainder:
                board.redispatch(lease.shard)
        for start, size in remainder:
            rec.decision(
                "exec", "redispatch", subject=f"[{start},{start + size})",
                reason=f"{cause}; re-dispatching uncovered remainder "
                "with backoff",
                shard=lease.shard, attempt=lease.attempt + 1,
                delay_s=round(delay, 4),
            )
            retry_tiebreak += 1
            heapq.heappush(
                retry_heap,
                (
                    time.monotonic() + delay, retry_tiebreak,
                    lease.shard, start, size, lease.attempt + 1,
                ),
            )

    try:
        abandoned = False
        while pending or retry_heap or inflight:
            guard.check(rec, "shards")
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, _, shard_id, start, size, attempt = heapq.heappop(retry_heap)
                pending.append((shard_id, start, size, attempt))

            if not abandoned and failures >= failure_budget:
                abandoned = True
                report.backend_abandoned = True
                rec.decision(
                    "exec", "backend_abandoned",
                    reason=f"{failures} slot failures >= budget "
                    f"{failure_budget}; finishing serially",
                    backend=report.backend,
                )
                exec_backend.shutdown()
                for lease in list(inflight.values()):
                    pending.append(
                        (lease.shard, lease.start, lease.size, lease.attempt)
                    )
                inflight.clear()
                slot_lease.clear()
                while retry_heap:
                    _, _, shard_id, start, size, attempt = heapq.heappop(
                        retry_heap
                    )
                    pending.append((shard_id, start, size, attempt))

            if abandoned:
                while pending:
                    shard_id, start, size, _ = pending.pop()
                    rescue(start, size, "backend abandoned", shard_id)
                break

            # Keep enough live slots for the work still queued.
            want = min(
                report.slots, len(inflight) + len(pending) + len(retry_heap)
            )
            while len(exec_backend.live_slots()) < want:
                exec_backend.spawn_slot()
            idle = [
                s for s in exec_backend.live_slots() if s not in slot_lease
            ]
            for slot in idle:
                if not pending:
                    break
                shard_id, start, size, attempt = pending.pop()
                remainder = uncovered_ranges(start, size, done, combine, block)
                for rstart, rsize in remainder[1:]:
                    pending.append((shard_id, rstart, rsize, attempt))
                if not remainder:
                    continue  # a raced completion covered it meanwhile
                start, size = remainder[0]
                lease = _Lease(
                    id=next_lease_id, shard=shard_id, start=start,
                    size=size, attempt=attempt, slot=slot,
                )
                next_lease_id += 1
                inflight[lease.id] = lease
                slot_lease[slot] = lease.id
                report.leases_granted += 1
                rec.decision(
                    "exec", "lease_grant", subject=f"[{start},{start + size})",
                    reason="shard lease granted to backend slot",
                    shard=shard_id, slot=slot, attempt=attempt,
                    lease=lease.id,
                )
                if rec.enabled:
                    rec.counter("exec_leases_total").inc()
                if board is not None:
                    board.lease_granted(shard_id)
                exec_backend.dispatch(slot, lease.message())

            for event in exec_backend.poll(_POLL_S):
                if event.kind == "exit":
                    lease_id = slot_lease.pop(event.slot, None)
                    if lease_id is None:
                        continue  # an idle slot died; replaced next pass
                    lease = inflight[lease_id]
                    failures += 1
                    report.shard_crashes += 1
                    crash_attrs = {}
                    if event.stderr:
                        # The dead worker's last words, bounded by the
                        # transport's tail capture.
                        crash_attrs["stderr_tail"] = event.stderr[-400:]
                    rec.decision(
                        "exec", "shard_crash",
                        subject=f"[{lease.start},{lease.start + lease.size})",
                        reason=f"slot {event.slot} exited "
                        f"(code {event.exitcode}) mid-lease",
                        shard=lease.shard, lease=lease.id,
                        heartbeats=lease.heartbeats,
                        **crash_attrs,
                    )
                    if rec.enabled:
                        rec.counter("exec_shard_crashes_total").inc()
                    if board is not None:
                        board.crashed(lease.shard)
                    fail_lease(lease, "shard slot crashed")
                    continue
                message = event.message or {}
                mtype = message.get("type")
                if mtype == "ready":
                    continue
                if mtype == "protocol_torn":
                    # The worker could not decode one of *our* lines.
                    report.protocol_torn_lines += 1
                    note_torn_line(event.slot, "worker")
                    continue
                if mtype == "telemetry":
                    # Routed before the inflight check: a straggler's
                    # telemetry is still worth merging after its lease
                    # was expired or superseded.
                    if merger is not None:
                        merger.add(message, event.slot)
                    continue
                if mtype == "profile":
                    # Same routing as telemetry: profile batches share
                    # the per-lease sequence and the merge machinery.
                    if merger is not None:
                        merger.add(message, event.slot)
                    if board is not None and message.get("resources"):
                        board.resources(
                            message.get("shard", -1),
                            message["resources"],
                        )
                    continue
                lease = inflight.get(message.get("lease"))
                if lease is None:
                    continue  # late message from a superseded lease
                lease.last_beat = time.monotonic()
                if mtype == "heartbeat":
                    report.heartbeats += 1
                    lease.heartbeats += 1
                    if board is not None:
                        board.heartbeat(lease.shard)
                elif mtype == "partial":
                    bank(
                        message["start"], message["size"],
                        message["payload"], "lease",
                    )
                elif mtype == "done":
                    inflight.pop(lease.id, None)
                    slot_lease.pop(lease.slot, None)
                    rec.decision(
                        "exec", "lease_done",
                        subject=f"[{lease.start},{lease.start + lease.size})",
                        reason="lease served to completion",
                        shard=lease.shard, lease=lease.id, slot=lease.slot,
                        heartbeats=lease.heartbeats,
                    )
                    if merger is not None:
                        merger.settle(lease.id)
                elif mtype == "error":
                    failures += 1
                    rec.decision(
                        "exec", "lease_error",
                        subject=f"[{lease.start},{lease.start + lease.size})",
                        reason="worker raised inside the lease",
                        detail=str(message.get("detail", ""))[-400:],
                        shard=lease.shard, lease=lease.id,
                        heartbeats=lease.heartbeats,
                    )
                    exec_backend.kill(lease.slot)
                    fail_lease(lease, "lease error")

            if heartbeat_timeout is not None:
                now = time.monotonic()
                for lease in list(inflight.values()):
                    if now - lease.last_beat <= heartbeat_timeout:
                        continue
                    failures += 1
                    report.lease_expiries += 1
                    rec.decision(
                        "exec", "lease_expired",
                        subject=f"[{lease.start},{lease.start + lease.size})",
                        reason=f"no heartbeat for {heartbeat_timeout:.3f}s; "
                        f"killing slot {lease.slot} and re-dispatching",
                        shard=lease.shard, lease=lease.id, slot=lease.slot,
                        heartbeats=lease.heartbeats,
                    )
                    if rec.enabled:
                        rec.counter("exec_lease_expiries_total").inc()
                    if board is not None:
                        board.expired(lease.shard)
                    exec_backend.kill(lease.slot)
                    fail_lease(lease, "lease heartbeat expired")
    finally:
        # Fold in lines the transport itself discarded (supervisor-side
        # torn frames, generation-fenced zombie traffic).
        report.protocol_torn_lines += getattr(exec_backend, "torn_lines", 0)
        report.generation_fenced_lines += getattr(
            exec_backend, "fenced_lines", 0
        )
        exec_backend.shutdown()
        if merger is not None:
            merger.settle_all()
