"""Chaos harness for the campaign runner itself.

The resilience and faultsim subsystems inject faults into the *modeled*
system; this module injects faults into the *runner* — the application-
level fault-tolerance argument (De Florio) applied to our own tooling.
A :class:`ChaosPlan` rides into the worker pool and, keyed by trial
index, makes workers misbehave in controlled ways:

* ``kill_trials`` — the worker SIGKILLs itself before computing any
  batch containing one of these trials, on **every** pool attempt.  The
  supervisor must retry, split, and finally degrade that range to serial
  in-process execution (where chaos does not apply) to complete.
* ``kill_once_trials`` — SIGKILL only on the first attempt; a plain
  retry-with-backoff must recover.
* ``slow_trials`` — sleep before computing, to trip per-batch timeouts.
* ``interrupt_after_batches`` — the *supervisor* raises
  :class:`~repro.errors.CampaignInterrupted` after this many batches
  have been checkpointed, simulating a mid-campaign crash for
  checkpoint/resume tests without real process murder.

Keying on trial indices (not batch indices) keeps injections stable
under batch splitting: the poisoned range follows the trial wherever
the degradation ladder moves it.

:func:`truncate_file` tears bytes off a checkpoint to fake a crash
mid-write; :func:`run_chaos_selftest` wires it all into an end-to-end
self-test used by ``repro exec chaos`` and the test suite.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ChaosPlan:
    """Faults to inject into the runner (see module docstring)."""

    kill_trials: frozenset[int] = frozenset()
    kill_once_trials: frozenset[int] = frozenset()
    slow_trials: tuple[tuple[int, float], ...] = ()
    interrupt_after_batches: int | None = None

    def maybe_inject(self, start: int, size: int, attempt: int) -> None:
        """Run inside a pool worker just before computing a batch."""
        covered = range(start, start + size)
        delay = sum(
            seconds for trial, seconds in self.slow_trials if trial in covered
        )
        if delay > 0.0:
            time.sleep(delay)
        kill = any(trial in self.kill_trials for trial in covered) or (
            attempt == 1
            and any(trial in self.kill_once_trials for trial in covered)
        )
        if kill:
            os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class ShardChaos:
    """Shard-level faults for the lease supervisor (`run_sharded`).

    Where :class:`ChaosPlan` poisons trial ranges inside one pool,
    ``ShardChaos`` murders or stalls *whole shard workers* — the
    failure modes a distributed campaign actually meets:

    * ``kill_shards`` — a first-attempt lease for one of these shards
      SIGKILLs its slot **mid-lease**: after the first block's partial
      has streamed out when the lease spans several blocks (proving
      completed blocks are banked, not recomputed), else before any.
    * ``stall_shards`` — a first-attempt lease for one of these shards
      sleeps ``stall_s`` before its first heartbeat, so the supervisor
      must detect the silence via ``ExecPolicy.heartbeat_timeout``,
      expire the lease, and re-dispatch.
    * ``interrupt_after_partials`` — supervisor-side: raise
      :class:`~repro.errors.CampaignInterrupted` once this many
      partials are checkpointed (mid-campaign crash without murder).

    Injection keys on ``attempt == 1`` only, so re-dispatch always
    recovers.  The plan is JSON round-trippable (``to_dict`` /
    ``from_dict``) because it must cross the subprocess transport's
    hello line.
    """

    kill_shards: frozenset[int] = frozenset()
    stall_shards: frozenset[int] = frozenset()
    stall_s: float = 30.0
    interrupt_after_partials: int | None = None

    def maybe_inject(
        self, shard: int, attempt: int, block_index: int, total_blocks: int
    ) -> None:
        """Run inside a shard slot just before serving one block."""
        if attempt != 1:
            return
        if shard in self.stall_shards and block_index == 0:
            time.sleep(self.stall_s)
        if shard in self.kill_shards:
            kill_at = 1 if total_blocks > 1 else 0
            if block_index == kill_at:
                os.kill(os.getpid(), signal.SIGKILL)

    def to_dict(self) -> dict:
        return {
            "kill_shards": sorted(self.kill_shards),
            "stall_shards": sorted(self.stall_shards),
            "stall_s": self.stall_s,
            "interrupt_after_partials": self.interrupt_after_partials,
        }

    @classmethod
    def from_dict(cls, data: dict) -> ShardChaos:
        return cls(
            kill_shards=frozenset(data.get("kill_shards") or ()),
            stall_shards=frozenset(data.get("stall_shards") or ()),
            stall_s=float(data.get("stall_s", 30.0)),
            interrupt_after_partials=data.get("interrupt_after_partials"),
        )


@dataclass(frozen=True)
class NetChaos:
    """Deterministic network faults for the TCP shard transport.

    Where :class:`ShardChaos` rides into the worker and murders it from
    the inside, ``NetChaos`` sits *in the supervisor's receive path*
    (:class:`repro.exec.tcp.TcpBackend`) and corrupts the network
    between intact processes — the failures a real wire delivers:

    * ``drop_after`` — ``{slot: n}``: hard-close the slot's connection
      after ``n`` complete lines have been received from it.  The
      worker sees EOF mid-lease; the supervisor sees slot death.
    * ``delay_slots`` — ``{slot: seconds}``: receive the slot's bytes
      but withhold them from parsing for ``seconds`` — long enough and
      the heartbeat deadline expires a perfectly healthy lease.
    * ``tear_lines`` — ``{slot: index}``: truncate the slot's
      ``index``-th received line mid-frame so it no longer decodes.
    * ``duplicate_slots`` + ``duplicate_rate`` — deliver each of these
      slots' lines twice with per-line probability ``duplicate_rate``,
      drawn from a stream seeded by ``derive_seed(seed, slot,
      purpose="net-chaos")`` so every schedule is reproducible.
    * ``partition_after`` — after this many lines *total* (all slots),
      close every connection at once: a full partition.  The backend
      keeps listening, so reconnecting workers heal it — unless
      ``partition_interrupt`` also raises
      :class:`~repro.errors.CampaignInterrupted`, simulating a
      supervisor that dies partitioned (its ``complete:false`` manifest
      must then resume cleanly).

    Supervisor-side only, so it never crosses the hello line and needs
    no serialization.
    """

    seed: int = 0
    drop_after: dict[int, int] = field(default_factory=dict)
    delay_slots: dict[int, float] = field(default_factory=dict)
    tear_lines: dict[int, int] = field(default_factory=dict)
    duplicate_slots: frozenset[int] = frozenset()
    duplicate_rate: float = 1.0
    partition_after: int | None = None
    partition_interrupt: bool = False

    def rng_for(self, slot: int):
        """The slot's private duplicate-decision stream."""
        import random

        from repro.exec.batching import derive_seed

        return random.Random(derive_seed(self.seed, slot, purpose="net-chaos"))


def truncate_file(path: str, chop_bytes: int) -> int:
    """Remove the last ``chop_bytes`` bytes of ``path`` (torn-write fake).

    Returns the resulting file size.
    """
    size = os.path.getsize(path)
    new_size = max(0, size - chop_bytes)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size


@dataclass
class ChaosSelfTestResult:
    """Outcome of :func:`run_chaos_selftest`."""

    passed: bool
    checks: list[str] = field(default_factory=list)
    failures: list[str] = field(default_factory=list)

    def describe(self) -> list[str]:
        lines = [f"[ok] {check}" for check in self.checks]
        lines.extend(f"[FAIL] {failure}" for failure in self.failures)
        return lines


def run_chaos_selftest(
    workdir: str,
    trials: int = 32,
    workers: int = 2,
    seed: int = 7,
) -> ChaosSelfTestResult:
    """Prove the supervision logic end-to-end on a real worker pool.

    Runs a faultsim campaign three ways — serial baseline, chaos-ridden
    pool (SIGKILLed workers + one permanently-failing trial range), and
    an interrupted-then-resumed run over a checkpoint with a torn
    trailing line — and checks that every variant reproduces the serial
    baseline bit-for-bit while the decision trail shows the supervisor
    actually retried, degraded, and recovered.
    """
    from repro.errors import CampaignInterrupted
    from repro.exec.runner import ExecPolicy
    from repro.faultsim.campaign import run_campaign
    from repro.obs import Recorder, use
    from repro.workloads import paper_influence_graph

    os.makedirs(workdir, exist_ok=True)
    graph = paper_influence_graph()
    partition = [[name] for name in graph.fcm_names()]
    result = ChaosSelfTestResult(passed=True)

    def check(condition: bool, label: str) -> None:
        if condition:
            result.checks.append(label)
        else:
            result.passed = False
            result.failures.append(label)

    baseline = run_campaign(graph, partition, trials=trials, seed=seed)

    # --- chaos pool: transient kills + one permanently-failing range ---
    chaos = ChaosPlan(
        kill_trials=frozenset({3}),
        kill_once_trials=frozenset({trials // 2}),
    )
    policy = ExecPolicy(
        workers=workers,
        batch_size=max(2, trials // 8),
        max_attempts=2,
        backoff_base=0.01,
        backoff_max=0.05,
    )
    recorder = Recorder()
    with use(recorder):
        chaotic = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=policy, chaos=chaos,
        )
    actions = {d.action for d in recorder.decisions if d.category == "exec"}
    check(chaotic == baseline, "chaos pool result identical to serial baseline")
    check("worker_crash" in actions, "worker SIGKILLs detected as crashes")
    check("retry" in actions, "crashed batches retried with backoff")
    check("serial_fallback" in actions,
          "permanently-failing range degraded to serial execution")

    # --- interrupt + torn checkpoint + resume ---
    checkpoint = os.path.join(workdir, "chaos-selftest.ndjson")
    if os.path.exists(checkpoint):
        os.remove(checkpoint)
    interrupted = False
    try:
        run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=ExecPolicy(workers=0, batch_size=max(2, trials // 8)),
            checkpoint=checkpoint,
            chaos=ChaosPlan(interrupt_after_batches=3),
        )
    except CampaignInterrupted:
        interrupted = True
    check(interrupted, "interrupt chaos aborts the campaign mid-run")
    truncate_file(checkpoint, 10)
    recorder = Recorder()
    with use(recorder):
        resumed = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=ExecPolicy(workers=0, batch_size=max(2, trials // 8)),
            resume=checkpoint,
        )
    actions = {d.action for d in recorder.decisions if d.category == "exec"}
    check(resumed == baseline, "resumed result identical to serial baseline")
    check("checkpoint_corrupt" in actions,
          "torn trailing checkpoint line detected and reported")
    check("resume" in actions, "resume skipped completed batches")
    check(os.path.exists(checkpoint + ".manifest"),
          "completion manifest atomically published")
    return result


def run_shard_chaos_selftest(
    workdir: str,
    trials: int = 1024,
    shards: int = 2,
    workers: int = 2,
    seed: int = 7,
    backend: str = "local",
) -> ChaosSelfTestResult:
    """Prove shard-lease supervision end-to-end against three failures.

    Runs the same faultsim campaign serially (baseline) and then three
    chaos-ridden sharded ways — a SIGKILLed shard worker mid-lease, a
    shard stalled past the heartbeat deadline, and an interrupted run
    resumed over a torn shard checkpoint — checking every variant
    reproduces the baseline bit-for-bit while the decision trail shows
    the supervisor actually expired, re-dispatched, and recovered.

    The kill run executes under a live recorder with a telemetry
    stream **and the sampling profiler enabled**, so it also proves
    distributed observability under chaos: surviving workers' spans and
    profile events (sampled stacks, resource summaries) must graft into
    one valid merged trace even though a shard died mid-lease, and
    ``repro profile report`` must surface the survivors' per-shard
    resource figures.  The chaos checkpoint, the merged trace
    (``shard-trace.ndjson``) and the raw telemetry stream
    (``shard-telemetry.ndjson``) are left in ``workdir`` so CI can
    validate their structure with ``scripts/check_ndjson.py``.
    """
    from repro.errors import CampaignInterrupted, ObservabilityError
    from repro.exec.runner import ExecPolicy
    from repro.faultsim.campaign import run_campaign
    from repro.obs import Recorder, dump_ndjson, load_ndjson, use, validate_trace
    from repro.obs.telemetry import validate_telemetry_stream
    from repro.workloads import paper_influence_graph

    os.makedirs(workdir, exist_ok=True)
    graph = paper_influence_graph()
    partition = [[name] for name in graph.fcm_names()]
    result = ChaosSelfTestResult(passed=True)

    def check(condition: bool, label: str) -> None:
        if condition:
            result.checks.append(label)
        else:
            result.passed = False
            result.failures.append(label)

    def actions_of(recorder) -> set[str]:
        return {d.action for d in recorder.decisions if d.category == "exec"}

    baseline = run_campaign(graph, partition, trials=trials, seed=seed)

    # --- proof 1: SIGKILL a whole shard worker mid-lease ---------------
    # Traced with a telemetry stream and the profiler: chaos must not
    # break the merge, and surviving shards' profile events must land.
    trace_path = os.path.join(workdir, "shard-trace.ndjson")
    telemetry_path = os.path.join(workdir, "shard-telemetry.ndjson")
    recorder = Recorder()
    with use(recorder):
        killed = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=ExecPolicy(
                workers=workers, backoff_base=0.01, backoff_max=0.05,
            ),
            shards=shards, backend=backend,
            chaos=ShardChaos(kill_shards=frozenset({shards - 1})),
            telemetry_stream=telemetry_path,
            profile=211.0,
        )
    actions = actions_of(recorder)
    check(killed == baseline,
          "kill-a-shard result identical to serial baseline")
    check("shard_crash" in actions,
          "SIGKILLed shard worker detected as a crash")
    check("redispatch" in actions,
          "dead shard's uncovered remainder re-dispatched")
    merged = recorder.events()
    dump_ndjson(merged, trace_path)
    check(not validate_trace(merged),
          "merged trace valid despite a shard dying mid-lease")
    worker_spans = [
        e for e in merged
        if e.get("type") == "span" and (e.get("attrs") or {}).get("remote")
    ]
    check(any(e["name"] == "worker.lease" for e in worker_spans),
          "worker lease spans grafted into the supervisor trace")
    check(any(e["name"] == "worker.block" for e in worker_spans),
          "worker block spans grafted into the supervisor trace")
    try:
        stream = load_ndjson(telemetry_path)
        stream_problems = validate_telemetry_stream(stream)
    except (OSError, ObservabilityError) as exc:
        stream_problems = [str(exc)]
    check(not stream_problems,
          "raw worker-telemetry stream written and structurally valid")
    profile_events = [e for e in merged if e.get("type") == "profile"]
    summaries = [
        e for e in profile_events
        if e.get("kind") == "resource_summary" and e.get("shard") is not None
    ]
    check(bool(summaries),
          "surviving shards' profile resource summaries merged into trace")
    check(all(e.get("rss_peak_bytes", 0) > 0 for e in summaries),
          "merged per-shard resource summaries carry nonzero peak RSS")
    from repro.obs.profile import render_profile_report
    report_text = render_profile_report(merged)
    check("Per-shard process resources" in report_text,
          "profile report shows per-shard peak RSS/CPU for survivors")

    # --- proof 2: shard stalls past the heartbeat deadline -------------
    recorder = Recorder()
    with use(recorder):
        stalled = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=ExecPolicy(
                workers=workers, backoff_base=0.01, backoff_max=0.05,
                heartbeat_timeout=0.75,
            ),
            shards=shards, backend=backend,
            chaos=ShardChaos(stall_shards=frozenset({0}), stall_s=30.0),
        )
    actions = actions_of(recorder)
    check(stalled == baseline,
          "stalled-shard result identical to serial baseline")
    check("lease_expired" in actions,
          "silent shard expired by heartbeat deadline")

    # --- proof 3: interrupt, corrupt the shard checkpoint, resume ------
    checkpoint = os.path.join(workdir, "shard-chaos.ndjson")
    if os.path.exists(checkpoint):
        os.remove(checkpoint)
    interrupted = False
    try:
        run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=ExecPolicy(workers=workers),
            shards=shards, backend=backend, checkpoint=checkpoint,
            chaos=ShardChaos(interrupt_after_partials=2),
        )
    except CampaignInterrupted:
        interrupted = True
    check(interrupted, "interrupt chaos aborts the sharded campaign mid-run")
    truncate_file(checkpoint, 7)
    recorder = Recorder()
    with use(recorder):
        resumed = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=ExecPolicy(workers=workers),
            shards=shards, backend=backend, resume=checkpoint,
        )
    actions = actions_of(recorder)
    check(resumed == baseline,
          "resumed sharded result identical to serial baseline")
    check("checkpoint_corrupt" in actions,
          "torn shard partial detected and reported")
    check(os.path.exists(checkpoint + ".manifest"),
          "shard completion manifest atomically published")

    # --- TCP-only proofs: deterministic network faults -----------------
    if backend == "tcp":
        _tcp_net_chaos_proofs(
            workdir, graph, partition, trials, shards, workers, seed,
            baseline, check, actions_of,
        )
    return result


def _tcp_net_chaos_proofs(
    workdir, graph, partition, trials, shards, workers, seed,
    baseline, check, actions_of,
) -> None:
    """NetChaos invariants the TCP transport must hold (see NetChaos).

    Every schedule must leave the campaign bit-identical to serial:
    dropped connections mid-lease, frames delayed past the heartbeat
    deadline, torn frames plus every line duplicated, a full partition
    healed by fresh connections, and a full partition that kills the
    supervisor — whose ``complete:false`` manifest must then resume
    cleanly with waiting workers.
    """
    import json

    from repro.errors import CampaignInterrupted, ObservabilityError
    from repro.exec.runner import ExecPolicy
    from repro.exec.tcp import TcpBackend
    from repro.faultsim.campaign import campaign_task_spec, run_campaign
    from repro.faultsim.engine import resolve_engine
    from repro.obs import Recorder, load_ndjson, use
    from repro.obs.telemetry import validate_telemetry_stream

    spec = campaign_task_spec(graph, partition, resolve_engine("auto").engine)
    policy = ExecPolicy(workers=workers, backoff_base=0.01, backoff_max=0.05)

    # -- proof 4: connection hard-dropped mid-lease ---------------------
    net = NetChaos(drop_after={1: 2})
    recorder = Recorder()
    with use(recorder), TcpBackend(spec, seed, net_chaos=net) as tcp:
        dropped = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=policy, shards=shards, backend=tcp,
        )
    actions = actions_of(recorder)
    check(dropped == baseline,
          "dropped-connection result identical to serial baseline")
    check("shard_crash" in actions,
          "severed TCP connection detected as slot death")
    check("redispatch" in actions,
          "dropped slot's uncovered remainder re-dispatched")

    # -- proof 5: frames delayed past the heartbeat deadline ------------
    net = NetChaos(delay_slots={0: 5.0})
    recorder = Recorder()
    with use(recorder), TcpBackend(spec, seed, net_chaos=net) as tcp:
        delayed = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=ExecPolicy(
                workers=workers, backoff_base=0.01, backoff_max=0.05,
                heartbeat_timeout=0.75,
            ),
            shards=shards, backend=tcp,
        )
    actions = actions_of(recorder)
    check(delayed == baseline,
          "delayed-frames result identical to serial baseline")
    check("lease_expired" in actions,
          "frames delayed past the deadline expired the lease")

    # -- proof 6: torn frame + every line delivered twice ---------------
    tcp_telemetry = os.path.join(workdir, "tcp-telemetry.ndjson")
    net = NetChaos(
        seed=seed, tear_lines={0: 1},
        duplicate_slots=frozenset(range(workers)), duplicate_rate=1.0,
    )
    recorder = Recorder()
    with use(recorder), TcpBackend(spec, seed, net_chaos=net) as tcp:
        noisy = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=policy, shards=shards, backend=tcp,
            telemetry_stream=tcp_telemetry,
        )
    check(noisy == baseline,
          "torn+duplicated-lines result identical to serial baseline "
          "(done/partial idempotent)")
    check(noisy.exec_report.protocol_torn_lines >= 1,
          "torn TCP frame counted as a protocol_torn line")
    try:
        stream_problems = validate_telemetry_stream(load_ndjson(tcp_telemetry))
    except (OSError, ObservabilityError) as exc:
        stream_problems = [str(exc)]
    check(not stream_problems,
          "telemetry stream valid despite duplicated batch delivery")

    # -- proof 7: full partition, healed by fresh connections -----------
    # Severed at 5 delivered lines: with two slots that is at most one
    # banked partial, so at least one in-flight lease still has an
    # uncovered remainder and a re-dispatch is guaranteed.
    net = NetChaos(partition_after=5)
    recorder = Recorder()
    with use(recorder), TcpBackend(spec, seed, net_chaos=net) as tcp:
        healed = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=policy, shards=shards, backend=tcp,
        )
    actions = actions_of(recorder)
    check(healed == baseline,
          "partition-then-heal result identical to serial baseline")
    check("shard_crash" in actions,
          "full partition observed as slot deaths")
    check("redispatch" in actions,
          "partitioned leases re-dispatched to fresh connections")

    # -- proof 8: partition kills the run; complete:false must resume ---
    checkpoint = os.path.join(workdir, "tcp-partition.ndjson")
    if os.path.exists(checkpoint):
        os.remove(checkpoint)
    interrupted = False
    net = NetChaos(partition_after=7, partition_interrupt=True)
    try:
        with TcpBackend(spec, seed, net_chaos=net) as tcp:
            run_campaign(
                graph, partition, trials=trials, seed=seed,
                policy=policy, shards=shards, backend=tcp,
                checkpoint=checkpoint,
            )
    except CampaignInterrupted:
        interrupted = True
    check(interrupted,
          "full partition with partition_interrupt aborts the campaign")
    manifest_path = checkpoint + ".manifest"
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        manifest = {}
    check(manifest.get("complete") is False,
          "interrupted run sealed a complete:false manifest")
    recorder = Recorder()
    with use(recorder), TcpBackend(spec, seed) as tcp:
        resumed = run_campaign(
            graph, partition, trials=trials, seed=seed,
            policy=policy, shards=shards, backend=tcp,
            resume=checkpoint,
        )
    check(resumed == baseline,
          "post-partition resume identical to serial baseline")
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError):
        manifest = {}
    check(manifest.get("complete") is True,
          "resumed run republished a complete manifest")
