"""repro.exec — crash-safe supervised execution for Monte Carlo campaigns.

The dependability analyses are only as trustworthy as the tooling that
runs them; this package applies the paper's own fault-tolerance thinking
to the campaign runner (De Florio's application-level fault tolerance):

* :mod:`repro.exec.batching` — deterministic batch plans and SHA-256
  per-trial seed derivation (bit-identical results for any batch size,
  worker count, or retry history);
* :mod:`repro.exec.runner` — the supervised multiprocessing pool:
  timeouts, crashed-worker respawn, retry with exponential backoff and
  jitter, graceful degradation (split, then serial fallback), and
  signal-safe interruption (:class:`~repro.exec.runner.InterruptGuard`);
* :mod:`repro.exec.checkpoint` — streamed NDJSON checkpoints with an
  atomic-rename completion manifest, tolerant of torn trailing lines,
  plus structural validation for CI;
* :mod:`repro.exec.backend` — the pluggable execution-backend contract:
  block-aligned lease serving, the forked-slot pool, and task specs a
  remote worker can rebuild from JSON;
* :mod:`repro.exec.transport` — backend #2: isolated
  ``python -m repro exec shard-worker`` subprocesses over NDJSON pipes
  (one concrete carrier of the shard protocol);
* :mod:`repro.exec.tcp` — backend #3: the same protocol over real TCP
  connections (``--backend tcp`` / ``--listen`` / ``--connect``), with
  reconnecting workers, per-connection generation fencing, and the
  deterministic :class:`~repro.exec.chaos.NetChaos` fault layer;
* :mod:`repro.exec.shards` — the shard-lease supervisor: block-aligned
  shard planning, heartbeat-based straggler expiry, and re-dispatch with
  bit-identical aggregates;
* :mod:`repro.exec.chaos` — fault injection into the runner itself
  (worker-level :class:`ChaosPlan`, shard-level :class:`ShardChaos`),
  backing the ``repro exec chaos`` self-tests.

See ``docs/EXECUTION.md`` for the determinism contract, the checkpoint
schema, the supervision state machine, and the shard-lease lifecycle.
"""

from repro.exec.backend import (
    LEASE_BLOCK_TRIALS,
    BackendEvent,
    ExecBackend,
    ForkPoolBackend,
    PipeWorker,
    block_ranges,
    build_task,
    make_backend,
    note_torn_line,
    selftest_spec,
    serve_lease,
)
from repro.exec.batching import (
    Batch,
    available_cpus,
    default_batch_size,
    derive_seed,
    plan_batches,
    resolve_workers,
)
from repro.exec.chaos import (
    ChaosPlan,
    ChaosSelfTestResult,
    NetChaos,
    ShardChaos,
    run_chaos_selftest,
    run_shard_chaos_selftest,
    truncate_file,
)
from repro.exec.checkpoint import (
    CheckpointData,
    CheckpointWriter,
    campaign_fingerprint,
    coverage_gaps,
    load_checkpoint,
    validate_checkpoint,
)
from repro.exec.runner import (
    ExecPolicy,
    ExecReport,
    InterruptGuard,
    run_supervised,
)
from repro.exec.shards import (
    Shard,
    ShardReport,
    plan_shards,
    run_sharded,
    uncovered_ranges,
)
from repro.exec.tcp import TcpBackend, tcp_worker_main

__all__ = [
    "Batch",
    "BackendEvent",
    "ChaosPlan",
    "ChaosSelfTestResult",
    "CheckpointData",
    "CheckpointWriter",
    "ExecBackend",
    "ExecPolicy",
    "ExecReport",
    "ForkPoolBackend",
    "InterruptGuard",
    "LEASE_BLOCK_TRIALS",
    "NetChaos",
    "PipeWorker",
    "Shard",
    "ShardChaos",
    "ShardReport",
    "TcpBackend",
    "available_cpus",
    "block_ranges",
    "build_task",
    "campaign_fingerprint",
    "coverage_gaps",
    "default_batch_size",
    "derive_seed",
    "load_checkpoint",
    "make_backend",
    "note_torn_line",
    "plan_batches",
    "plan_shards",
    "resolve_workers",
    "run_chaos_selftest",
    "run_shard_chaos_selftest",
    "run_sharded",
    "run_supervised",
    "selftest_spec",
    "serve_lease",
    "tcp_worker_main",
    "truncate_file",
    "uncovered_ranges",
    "validate_checkpoint",
]
