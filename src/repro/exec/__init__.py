"""repro.exec — crash-safe supervised execution for Monte Carlo campaigns.

The dependability analyses are only as trustworthy as the tooling that
runs them; this package applies the paper's own fault-tolerance thinking
to the campaign runner (De Florio's application-level fault tolerance):

* :mod:`repro.exec.batching` — deterministic batch plans and SHA-256
  per-trial seed derivation (bit-identical results for any batch size,
  worker count, or retry history);
* :mod:`repro.exec.runner` — the supervised multiprocessing pool:
  timeouts, crashed-worker respawn, retry with exponential backoff and
  jitter, and graceful degradation (split, then serial fallback);
* :mod:`repro.exec.checkpoint` — streamed NDJSON checkpoints with an
  atomic-rename completion manifest, tolerant of torn trailing lines;
* :mod:`repro.exec.chaos` — fault injection into the runner itself,
  backing the ``repro exec chaos`` self-test.

See ``docs/EXECUTION.md`` for the determinism contract, the checkpoint
schema, and the supervision state machine.
"""

from repro.exec.batching import (
    Batch,
    available_cpus,
    default_batch_size,
    derive_seed,
    plan_batches,
    resolve_workers,
)
from repro.exec.chaos import (
    ChaosPlan,
    ChaosSelfTestResult,
    run_chaos_selftest,
    truncate_file,
)
from repro.exec.checkpoint import (
    CheckpointData,
    CheckpointWriter,
    campaign_fingerprint,
    load_checkpoint,
)
from repro.exec.runner import ExecPolicy, ExecReport, run_supervised

__all__ = [
    "Batch",
    "ChaosPlan",
    "available_cpus",
    "resolve_workers",
    "ChaosSelfTestResult",
    "CheckpointData",
    "CheckpointWriter",
    "ExecPolicy",
    "ExecReport",
    "campaign_fingerprint",
    "default_batch_size",
    "derive_seed",
    "load_checkpoint",
    "plan_batches",
    "run_chaos_selftest",
    "run_supervised",
    "truncate_file",
]
