"""Deterministic batch planning and seed derivation for campaigns.

The determinism contract (docs/EXECUTION.md) rests on two rules:

* **per-trial seeds** — trial ``t`` of a campaign with seed ``S`` always
  runs on ``random.Random(derive_seed(S, t))``, regardless of which
  batch, worker, or retry attempt executes it.  Seeds are derived with
  SHA-256, so they are stable across platforms, Python versions and
  ``PYTHONHASHSEED``.
* **batches are pure trial ranges** — a :class:`Batch` carries no state
  beyond ``(start, size)``; splitting a batch (graceful degradation) or
  resuming from a checkpoint covering different ranges cannot change any
  trial's outcome.

Campaign aggregates are merged in trial order (see the campaign modules),
so the final result is bit-identical for any batch size, worker count,
retry history, or interrupt/resume schedule.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.errors import ExecutionError

_SEED_DOMAIN = "repro-exec"


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_workers(requested: int | str) -> int:
    """Resolve a worker-count request, including ``"auto"``.

    ``"auto"`` sizes the pool to the CPUs actually available — a pool
    larger than the machine is a *pessimization* (the workers time-slice
    one another and the fork/dispatch overhead buys nothing), which is
    exactly how the ``parallel-campaign-200`` bench once reported a
    0.884x "speedup" from 4 workers on a single-CPU container.  On one
    CPU this resolves to 1, i.e. the supervised serial path.
    """
    if requested == "auto":
        return available_cpus()
    try:
        workers = int(requested)
    except (TypeError, ValueError):
        raise ExecutionError(
            f"workers must be an integer or 'auto', got {requested!r}"
        ) from None
    if workers < 0:
        raise ExecutionError("workers must be >= 0")
    return workers


def derive_seed(campaign_seed: int, index: int, purpose: str = "trial") -> int:
    """A stable 63-bit seed for unit ``index`` of a seeded campaign.

    ``purpose`` separates independent seed streams (trial RNGs vs. the
    supervisor's backoff jitter) drawn from one campaign seed.
    """
    text = f"{_SEED_DOMAIN}:{purpose}:{campaign_seed}:{index}"
    digest = hashlib.sha256(text.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class Batch:
    """A contiguous range of campaign trials: ``[start, start + size)``."""

    start: int
    size: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ExecutionError(f"batch start must be >= 0, got {self.start}")
        if self.size < 1:
            raise ExecutionError(f"batch size must be >= 1, got {self.size}")

    @property
    def stop(self) -> int:
        return self.start + self.size

    def trials(self) -> range:
        return range(self.start, self.stop)

    def split(self) -> tuple["Batch", "Batch"]:
        """Two halves covering the same trials (degradation ladder).

        A single-trial batch cannot be split.
        """
        if self.size < 2:
            raise ExecutionError("cannot split a single-trial batch")
        left = self.size // 2
        return (
            Batch(self.start, left),
            Batch(self.start + left, self.size - left),
        )


def plan_batches(trials: int, batch_size: int) -> tuple[Batch, ...]:
    """Split ``trials`` into consecutive batches of ``batch_size``.

    The last batch may be short.  The plan is a pure function of its
    arguments — resuming a campaign re-derives the identical plan.
    """
    if trials < 1:
        raise ExecutionError(f"trials must be >= 1, got {trials}")
    if batch_size < 1:
        raise ExecutionError(f"batch_size must be >= 1, got {batch_size}")
    return tuple(
        Batch(start, min(batch_size, trials - start))
        for start in range(0, trials, batch_size)
    )


def default_batch_size(trials: int, workers: int) -> int:
    """A batch size giving each worker ~4 batches (bounded to [1, trials]).

    Small enough that a lost batch wastes little work and stragglers
    balance out; large enough that dispatch overhead stays negligible.
    """
    if workers <= 1:
        # Serial runs still batch (checkpoint granularity), sized so a
        # resumable campaign checkpoints at least every ~1/16 of the run.
        return max(1, min(trials, (trials + 15) // 16))
    return max(1, (trials + workers * 4 - 1) // (workers * 4))
