"""The supervised campaign runner: pool, retries, degradation, resume.

``run_supervised`` executes a campaign's batch task over a deterministic
batch plan (:mod:`repro.exec.batching`), optionally across a pool of
forked worker processes, and survives the runner's own faults:

* **crashed workers** (SIGKILL, OOM, segfault) are detected by exit
  code, their batch retried on a respawned worker;
* **hung batches** trip a per-batch timeout (``trial_timeout x size``),
  the worker is killed and the batch retried;
* retries use **exponential backoff with deterministic jitter** (jitter
  affects scheduling only, never results);
* a batch that exhausts its pool attempts is **split** in half (binary
  isolation of the poisoned trial range) and, at single-trial size,
  **degraded to serial in-process execution**;
* when the pool as a whole keeps failing, it is **abandoned** and the
  remaining batches run serially — the campaign still completes.

Every such decision is emitted as a typed ``exec`` decision event on the
ambient :mod:`repro.obs` recorder, so a trace shows exactly how a run
survived.  Completed batches stream to an NDJSON checkpoint
(:mod:`repro.exec.checkpoint`); ``resume=`` skips work already done.

The supervisor is single-threaded; each worker owns a private pair of
unidirectional pipes (tasks in, results out) with exactly one writer
per pipe.  A shared ``multiprocessing.Queue`` would be unsafe here: its
producers serialize on a cross-process write lock held by a background
feeder thread, and a worker SIGKILLed mid-write orphans that lock,
deadlocking every sibling's results forever.  With private pipes a torn
write is confined to the dead worker's own channel and surfaces as
``EOFError`` on the supervisor's next read — a crash signal, not a
hang.  Worker processes are forked, so campaign payloads (graphs,
integration outcomes) need not be picklable on the way in.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import random
import signal
import threading
import time
import traceback
from multiprocessing import connection as _mp_connection
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import (
    CampaignInterrupted,
    CheckpointError,
    ExecutionError,
)
from repro.exec.backend import PipeWorker, _quiet_worker_recorder
from repro.exec.batching import (
    Batch,
    default_batch_size,
    derive_seed,
    plan_batches,
)
from repro.exec.chaos import ChaosPlan
from repro.exec.checkpoint import (
    CheckpointWriter,
    campaign_fingerprint,
    load_checkpoint,
)
from repro.obs import current

BatchTask = Callable[[int, int, int], Any]
Combine = Callable[[Any, Any], Any]

_POLL_S = 0.02
_JOIN_GRACE_S = 1.0


@dataclass(frozen=True)
class ExecPolicy:
    """Knobs of the supervised runner.

    Attributes:
        workers: Pool size; 0 or 1 runs serially in-process (batching
            and checkpointing still apply).
        batch_size: Trials per batch; 0 derives a default from the
            trial count and worker count.
        trial_timeout: Seconds allowed per trial; a batch's deadline is
            ``trial_timeout * size``.  ``None`` disables timeouts.
        max_attempts: Pool attempts per batch before the degradation
            ladder (split, then serial) takes over.
        backoff_base: First retry delay (seconds); doubles per attempt.
        backoff_max: Upper bound on one retry delay.
        backoff_jitter: Max fractional jitter added to each delay (drawn
            from a seed-derived RNG, so scheduling is reproducible).
        pool_failure_budget: Crashes + timeouts tolerated before the
            pool is abandoned for serial execution; 0 derives
            ``max(6, 3 * workers)``.
        target_batch_s: Pooled runs with ``batch_size=0`` start with a
            short serial probe and size batches to roughly this much
            wall time each, so per-batch dispatch overhead amortizes for
            slow trials without starving fast ones of parallelism.
            0 disables calibration (the static default size is used).
        heartbeat_timeout: Sharded runs only
            (:func:`repro.exec.shards.run_sharded`): a lease whose slot
            sends no heartbeat/partial for this many seconds is expired
            and its uncovered remainder re-dispatched.  ``None``
            disables straggler detection.  Must comfortably exceed the
            wall time of one :data:`~repro.exec.backend.LEASE_BLOCK_TRIALS`
            block, since partials are the heartbeat carrier.
    """

    workers: int = 0
    batch_size: int = 0
    trial_timeout: float | None = None
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    backoff_jitter: float = 0.25
    pool_failure_budget: int = 0
    target_batch_s: float = 0.25
    heartbeat_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ExecutionError("workers must be >= 0")
        if self.batch_size < 0:
            raise ExecutionError("batch_size must be >= 0")
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ExecutionError("trial_timeout must be > 0")
        if self.max_attempts < 1:
            raise ExecutionError("max_attempts must be >= 1")
        if self.target_batch_s < 0:
            raise ExecutionError("target_batch_s must be >= 0")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ExecutionError("heartbeat_timeout must be > 0")

    def resolved_batch_size(self, trials: int) -> int:
        if self.batch_size:
            return min(self.batch_size, trials)
        return default_batch_size(trials, self.workers)

    def resolved_failure_budget(self) -> int:
        if self.pool_failure_budget:
            return self.pool_failure_budget
        return max(6, 3 * self.workers)


@dataclass
class ExecReport:
    """What the supervisor did to complete one campaign."""

    trials: int
    batch_size: int
    workers: int
    batches_total: int = 0
    batches_run: int = 0
    batches_from_checkpoint: int = 0
    retries: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    splits: int = 0
    serial_fallbacks: int = 0
    pool_abandoned: bool = False
    corrupt_checkpoint_lines: int = 0
    checkpoint_path: str | None = None
    manifest_path: str | None = None
    calibrated_batch_size: int | None = None
    elapsed_s: float = 0.0


class InterruptGuard:
    """Cooperative SIGINT/SIGTERM handling for campaign supervisors.

    Installed (main thread only) for the duration of a supervised or
    sharded run: the first signal sets a flag that :meth:`check`
    converts — at the next safe point, *between* checkpoint writes —
    into :class:`~repro.errors.CampaignInterrupted`, so the runner's
    cleanup path flushes the checkpoint, seals an ``interrupted``
    manifest, and terminates its workers, leaving a resumable state.  A
    second signal escalates to an immediate ``KeyboardInterrupt`` for
    users who really mean it.
    """

    def __init__(self) -> None:
        self.signaled: str | None = None
        self._previous: dict[int, Any] = {}

    def __enter__(self) -> "InterruptGuard":
        if threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[sig] = signal.signal(sig, self._handle)
                except (ValueError, OSError):  # pragma: no cover - no signals
                    pass
        return self

    def __exit__(self, *exc) -> None:
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _handle(self, signum, frame) -> None:
        if self.signaled is not None:
            raise KeyboardInterrupt
        self.signaled = signal.Signals(signum).name

    def check(self, rec, subject: str) -> None:
        """Raise ``CampaignInterrupted`` if a signal arrived (safe point)."""
        if self.signaled is None:
            return
        rec.decision(
            "exec", "interrupted", subject=subject,
            reason=f"{self.signaled} received; checkpoint flushed and "
            "manifest sealed for resume",
        )
        raise CampaignInterrupted(
            f"{self.signaled}: campaign interrupted at a batch boundary; "
            "resume from the checkpoint to continue"
        )


class _Worker(PipeWorker):
    """One batch-pool worker: a :class:`PipeWorker` plus its assignment."""

    def __init__(
        self,
        worker_id: int,
        ctx,
        task: BatchTask,
        seed: int,
        chaos: ChaosPlan | None,
    ) -> None:
        self.assignment: tuple[Batch, int] | None = None
        self.deadline: float | None = None
        super().__init__(
            worker_id,
            ctx,
            _worker_main,
            (task, seed, chaos),
            name=f"repro-exec-{worker_id}",
        )

    @property
    def idle(self) -> bool:
        return self.assignment is None

    def dispatch(self, batch: Batch, attempt: int, deadline: float | None) -> None:
        self.assignment = (batch, attempt)
        self.deadline = deadline
        self.send((batch.start, batch.size, attempt))

    def clear(self) -> None:
        self.assignment = None
        self.deadline = None


def _worker_main(task, seed, chaos, task_recv, result_send):
    _quiet_worker_recorder()
    while True:
        try:
            item = task_recv.recv()
        except (EOFError, OSError):
            return  # supervisor went away
        if item is None:
            return
        start, size, attempt = item
        if chaos is not None:
            chaos.maybe_inject(start, size, attempt)
        try:
            payload = task(start, size, seed)
        except Exception:
            message = ("error", start, size, traceback.format_exc())
        else:
            message = ("ok", start, size, payload)
        try:
            result_send.send(message)
        except (OSError, ValueError):
            return


def run_supervised(
    task: BatchTask,
    *,
    trials: int,
    seed: int,
    kind: str,
    params: dict | None = None,
    policy: ExecPolicy | None = None,
    combine: Combine | None = None,
    checkpoint: str | None = None,
    resume: str | None = None,
    chaos: ChaosPlan | None = None,
) -> tuple[list[Any], ExecReport]:
    """Run ``task`` over every batch of a campaign, supervised.

    ``task(start, size, seed)`` must be a pure function of its arguments
    (per-trial RNGs via :func:`~repro.exec.batching.derive_seed`)
    returning a JSON-serializable payload; ``combine`` merges the
    payloads of two *adjacent* trial ranges and is required to reuse
    checkpoint entries whose ranges subdivide a planned batch.

    Returns ``(payloads, report)`` with payloads in trial order — one
    per planned batch (sub-batch payloads are combined back).
    """
    policy = policy or ExecPolicy()
    batch_size = policy.resolved_batch_size(trials)
    plan = plan_batches(trials, batch_size)
    fingerprint = campaign_fingerprint(kind, seed, trials, params or {})
    rec = current()
    report = ExecReport(
        trials=trials, batch_size=batch_size, workers=policy.workers,
        batches_total=len(plan),
    )

    done: dict[tuple[int, int], Any] = {}
    writer: CheckpointWriter | None = None
    t0 = time.perf_counter()
    with rec.span(
        "exec.supervise",
        kind=kind,
        trials=trials,
        batch_size=batch_size,
        workers=policy.workers,
        fingerprint=fingerprint,
    ), InterruptGuard() as guard:
        if resume is not None:
            _load_resume(resume, fingerprint, done, report, rec)
        checkpoint_path = checkpoint or resume
        if checkpoint_path is not None:
            fresh = not (
                resume is not None
                and os.path.exists(resume)
                and checkpoint_path == resume
            )
            writer = CheckpointWriter(
                checkpoint_path, fingerprint, trials, seed, fresh=fresh
            )
            report.checkpoint_path = checkpoint_path
        try:
            def complete(batch: Batch, payload: Any, source: str) -> None:
                if (batch.start, batch.size) in done:
                    return  # late duplicate (result raced a timeout retry)
                done[(batch.start, batch.size)] = payload
                report.batches_run += 1
                if rec.enabled:
                    rec.counter("exec_batches_total").inc(source=source)
                if writer is not None:
                    writer.record(batch.start, batch.size, payload)
                    if (
                        chaos is not None
                        and chaos.interrupt_after_batches is not None
                        and writer.batches_written
                        >= chaos.interrupt_after_batches
                    ):
                        rec.decision(
                            "exec", "interrupted", subject=kind,
                            reason="chaos: interrupt_after_batches reached",
                            batches_written=writer.batches_written,
                        )
                        raise CampaignInterrupted(
                            f"chaos interrupt after "
                            f"{writer.batches_written} checkpointed batches"
                        )
                guard.check(rec, kind)

            probe_batches = 0
            if (
                policy.workers >= 2
                and policy.batch_size == 0
                and policy.target_batch_s > 0
            ):
                calibrated = _calibrated_plan(
                    task, trials, seed, policy, done, combine, complete,
                    report, rec,
                )
                if calibrated is not None:
                    plan = calibrated
                    report.batches_total = len(plan)
                    probe_batches = 1

            todo = [b for b in plan if not _covered(b, done, combine)]
            report.batches_from_checkpoint = (
                len(plan) - len(todo) - probe_batches
            )
            if report.batches_from_checkpoint and rec.enabled:
                rec.counter("exec_batches_total").inc(
                    report.batches_from_checkpoint, source="checkpoint"
                )

            if todo:
                if policy.workers >= 2:
                    _run_pool(
                        task, seed, todo, policy, chaos, complete, done,
                        report, rec, guard,
                    )
                else:
                    for batch in todo:
                        guard.check(rec, kind)
                        complete(batch, task(batch.start, batch.size, seed),
                                 "serial")
            if writer is not None:
                report.manifest_path = writer.write_manifest(
                    {"kind": kind, "batches": len(plan)}
                )
            rec.decision(
                "exec", "complete", subject=kind,
                reason="all batches accounted for",
                batches=len(plan), retries=report.retries,
                from_checkpoint=report.batches_from_checkpoint,
            )
        except CampaignInterrupted:
            # Seal a resumable state: the checkpoint is already flushed
            # per batch; the manifest records the interruption (its
            # ``complete`` flag stays false so nothing mistakes a partial
            # run for a finished one).
            if writer is not None:
                report.manifest_path = writer.write_manifest(
                    {"kind": kind, "batches": len(plan), "interrupted": True},
                    complete=False,
                )
            raise
        finally:
            if writer is not None:
                writer.close()
            report.elapsed_s = time.perf_counter() - t0

    return [_assemble(b, done, combine) for b in plan], report


# ----------------------------------------------------------------------
# Resume plumbing
# ----------------------------------------------------------------------
def _load_resume(resume, fingerprint, done, report, rec) -> None:
    if not os.path.exists(resume):
        rec.decision(
            "exec", "resume", subject=resume,
            reason="checkpoint missing; starting fresh", entries=0,
        )
        return
    data = load_checkpoint(resume)
    if data.fingerprint is not None and data.fingerprint != fingerprint:
        raise CheckpointError(
            f"checkpoint {resume!r} belongs to a different campaign "
            f"(fingerprint {data.fingerprint} != {fingerprint})"
        )
    if data.corrupt_lines:
        report.corrupt_checkpoint_lines = data.corrupt_lines
        rec.decision(
            "exec", "checkpoint_corrupt", subject=resume,
            reason="corrupt checkpoint lines skipped; their batches will "
            "be recomputed",
            lines=data.corrupt_lines, detail=data.corrupt_detail[:5],
        )
    done.update(data.entries)
    rec.decision(
        "exec", "resume", subject=resume,
        reason="completed batches loaded from checkpoint",
        entries=len(data.entries), corrupt_lines=data.corrupt_lines,
    )


def _find_chain(
    batch: Batch, done: dict
) -> list[tuple[int, int]] | None:
    """Adjacent ``done`` ranges tiling ``batch`` exactly, or None.

    ``done`` can hold overlapping decompositions of the same range —
    e.g. a resumed checkpoint's ``(0, 3)`` alongside split-produced
    ``(0, 2)``/``(2, 2)`` for a planned batch ``[0, 4)`` — so a greedy
    walk can dead-end on a valid cover.  Search all decompositions,
    visiting each reachable position once (coverage from a position is
    independent of how it was reached).
    """
    stack: list[tuple[int, list[tuple[int, int]]]] = [(batch.start, [])]
    seen = {batch.start}
    while stack:
        position, chain = stack.pop()
        if position == batch.stop:
            return chain
        for start, size in done:
            if start != position or position + size > batch.stop:
                continue
            nxt = position + size
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, chain + [(start, size)]))
    return None


def _covered(batch: Batch, done: dict, combine: Combine | None) -> bool:
    if (batch.start, batch.size) in done:
        return True
    if combine is None:
        return False
    return _find_chain(batch, done) is not None


def _assemble(batch: Batch, done: dict, combine: Combine | None) -> Any:
    if (batch.start, batch.size) in done:
        return done[(batch.start, batch.size)]
    chain = _find_chain(batch, done) if combine is not None else None
    if chain is None:
        raise ExecutionError(
            f"cannot assemble batch [{batch.start},{batch.stop}) from "
            f"completed ranges {sorted(done)}"
        )
    payload = None
    for key in chain:
        piece = done[key]
        payload = piece if payload is None else combine(payload, piece)
    return payload


# ----------------------------------------------------------------------
# Batch-size calibration
# ----------------------------------------------------------------------
_CALIBRATION_PROBE = 32


def _calibrated_plan(
    task, trials, seed, policy, done, combine, complete, report, rec
) -> tuple[Batch, ...] | None:
    """Size pooled batches from a short serial probe, or None to skip.

    Runs the first ``min(trials, 32)`` trials in-process, times them, and
    sizes the remaining batches to roughly ``policy.target_batch_s`` of
    wall time each (clamped so every worker still gets at least one
    batch).  The probe's payload is kept via ``complete`` — calibration
    costs no redundant trials.  Skipped (returns ``None``) when the run
    is too small to parallelise or a resumed checkpoint already covers
    the probe range (timing checkpointed work would measure nothing).
    """
    probe = min(trials, _CALIBRATION_PROBE)
    if trials - probe <= 0:
        return None
    probe_batch = Batch(0, probe)
    if _covered(probe_batch, done, combine):
        rec.decision(
            "exec", "calibrate", subject="batch_size",
            reason="probe range already covered by checkpoint; "
            "using static default batch size",
            probe_trials=probe,
        )
        return None
    t0 = time.perf_counter()
    payload = task(probe_batch.start, probe_batch.size, seed)
    elapsed = time.perf_counter() - t0
    complete(probe_batch, payload, "calibration")
    per_trial = max(elapsed / probe, 1e-9)
    remaining = trials - probe
    per_worker = (remaining + policy.workers - 1) // policy.workers
    size = max(1, min(int(policy.target_batch_s / per_trial), per_worker))
    report.calibrated_batch_size = size
    report.batch_size = size
    rec.decision(
        "exec", "calibrate", subject="batch_size",
        reason="batch size derived from serial probe timing",
        probe_trials=probe,
        probe_s=round(elapsed, 6),
        per_trial_s=round(per_trial, 9),
        batch_size=size,
    )
    return (probe_batch,) + tuple(
        Batch(start, min(size, trials - start))
        for start in range(probe, trials, size)
    )


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------
def _run_pool(
    task, seed, todo, policy, chaos, complete, done, report, rec, guard=None
) -> None:
    """Dispatch ``todo`` over a supervised pool (see module docstring)."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        rec.decision(
            "exec", "pool_abandoned", reason="fork start method unavailable",
        )
        report.pool_abandoned = True
        for batch in todo:
            complete(batch, task(batch.start, batch.size, seed), "serial")
        return

    jitter_rng = random.Random(derive_seed(seed, 0, purpose="jitter"))
    failure_budget = policy.resolved_failure_budget()
    workers: dict[int, _Worker] = {}
    next_worker_id = 0
    pending: list[tuple[Batch, int]] = [(batch, 1) for batch in todo]
    pending.reverse()  # pop() from the end -> dispatch in plan order
    retry_heap: list[tuple[float, int, Batch, int]] = []
    retry_tiebreak = 0
    failures = 0
    abandoned = False

    def spawn() -> _Worker:
        nonlocal next_worker_id
        worker = _Worker(next_worker_id, ctx, task, seed, chaos)
        workers[worker.id] = worker
        next_worker_id += 1
        return worker

    def serial_fallback(batch: Batch) -> None:
        report.serial_fallbacks += 1
        rec.decision(
            "exec", "serial_fallback", subject=f"[{batch.start},{batch.stop})",
            reason="pool attempts exhausted; running batch in-process",
        )
        try:
            payload = task(batch.start, batch.size, seed)
        except Exception as exc:
            raise ExecutionError(
                f"batch [{batch.start},{batch.stop}) failed even in serial "
                f"fallback: {exc}"
            ) from exc
        complete(batch, payload, "serial")

    def handle_failure(batch: Batch, attempt: int, cause: str) -> None:
        nonlocal retry_tiebreak
        if attempt >= policy.max_attempts:
            if batch.size > 1:
                left, right = batch.split()
                report.splits += 1
                rec.decision(
                    "exec", "split",
                    subject=f"[{batch.start},{batch.stop})",
                    reason=f"{cause}; attempts exhausted, shrinking batch",
                    left=left.size, right=right.size,
                )
                pending.append((right, 1))
                pending.append((left, 1))
            else:
                serial_fallback(batch)
            return
        report.retries += 1
        delay = min(
            policy.backoff_max,
            policy.backoff_base * (2 ** (attempt - 1)),
        )
        delay *= 1.0 + policy.backoff_jitter * jitter_rng.random()
        rec.decision(
            "exec", "retry", subject=f"[{batch.start},{batch.stop})",
            reason=f"{cause}; retrying with backoff",
            attempt=attempt + 1, delay_s=round(delay, 4),
        )
        if rec.enabled:
            rec.counter("exec_retries_total").inc()
        retry_tiebreak += 1
        heapq.heappush(
            retry_heap,
            (time.monotonic() + delay, retry_tiebreak, batch, attempt + 1),
        )

    def fail_worker(worker: _Worker, cause: str) -> None:
        nonlocal failures
        failures += 1
        assignment = worker.assignment
        worker.clear()
        worker.kill()
        del workers[worker.id]
        if assignment is not None:
            batch, attempt = assignment
            handle_failure(batch, attempt, cause)

    def crash(worker: _Worker) -> None:
        worker.process.join(_JOIN_GRACE_S)
        report.worker_crashes += 1
        if worker.assignment is not None:
            batch, _ = worker.assignment
            subject = f"[{batch.start},{batch.stop})"
            detail = "mid-batch"
        else:
            subject = f"worker-{worker.id}"
            detail = "while idle"
        rec.decision(
            "exec", "worker_crash", subject=subject,
            reason=f"worker {worker.id} exited "
            f"(code {worker.process.exitcode}) {detail}",
        )
        if rec.enabled:
            rec.counter("exec_worker_crashes_total").inc()
        fail_worker(worker, "worker crash")

    try:
        for _ in range(min(policy.workers, len(pending))):
            spawn()
        while pending or retry_heap or any(
            not w.idle for w in workers.values()
        ):
            if guard is not None:
                guard.check(rec, "pool")
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, _, batch, attempt = heapq.heappop(retry_heap)
                pending.append((batch, attempt))

            if not abandoned and failures >= failure_budget:
                abandoned = True
                report.pool_abandoned = True
                rec.decision(
                    "exec", "pool_abandoned",
                    reason=f"{failures} worker failures >= budget "
                    f"{failure_budget}; finishing serially",
                )
                # Reclaim every in-flight and scheduled batch: a broken
                # pool must not hold the campaign hostage.
                for worker in list(workers.values()):
                    if worker.assignment is not None:
                        pending.append(worker.assignment)
                        worker.clear()
                    worker.kill()
                    del workers[worker.id]
                while retry_heap:
                    _, _, batch, attempt = heapq.heappop(retry_heap)
                    pending.append((batch, attempt))

            if abandoned:
                while pending:
                    batch, _ = pending.pop()
                    serial_fallback(batch)
                break

            while len(workers) < policy.workers and pending:
                spawn()
            for worker in list(workers.values()):
                if not pending:
                    break
                if worker.idle and worker.process.is_alive():
                    batch, attempt = pending.pop()
                    if (batch.start, batch.size) in done:
                        continue  # completed by a raced late result
                    deadline = (
                        now + policy.trial_timeout * batch.size
                        if policy.trial_timeout is not None
                        else None
                    )
                    worker.dispatch(batch, attempt, deadline)

            if workers:
                by_conn = {w.result_recv: w for w in workers.values()}
                ready = _mp_connection.wait(
                    list(by_conn), timeout=_POLL_S
                )
            else:
                time.sleep(_POLL_S)
                ready = []
            for conn in ready:
                worker = by_conn[conn]
                if worker.id not in workers:
                    continue  # removed earlier in this same pass
                try:
                    message = worker.result_recv.recv()
                except (EOFError, OSError):
                    # The worker died, possibly SIGKILLed mid-send; the
                    # torn write is confined to its own pipe.
                    crash(worker)
                    continue
                status, start, size, payload = message
                attempt = 1
                if worker.assignment is not None:
                    attempt = worker.assignment[1]
                worker.clear()
                batch = Batch(start, size)
                if status == "ok":
                    complete(batch, payload, "pool")
                else:
                    rec.decision(
                        "exec", "batch_error",
                        subject=f"[{start},{start + size})",
                        reason="worker raised", detail=str(payload)[-400:],
                    )
                    handle_failure(batch, attempt, "error")

            now = time.monotonic()
            for worker in list(workers.values()):
                if worker.assignment is None:
                    continue
                if not worker.process.is_alive():
                    crash(worker)
                elif worker.deadline is not None and now > worker.deadline:
                    batch, _ = worker.assignment
                    report.timeouts += 1
                    rec.decision(
                        "exec", "batch_timeout",
                        subject=f"[{batch.start},{batch.stop})",
                        reason=f"batch exceeded "
                        f"{policy.trial_timeout * batch.size:.3f}s deadline; "
                        f"killing worker {worker.id}",
                    )
                    if rec.enabled:
                        rec.counter("exec_timeouts_total").inc()
                    fail_worker(worker, "batch timeout")
    finally:
        for worker in list(workers.values()):
            worker.stop()
        deadline = time.monotonic() + _JOIN_GRACE_S
        for worker in list(workers.values()):
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.kill()
            else:
                worker.close()
