"""Graphviz DOT export of influence graphs and mappings.

The paper's figures are node-link diagrams; DOT output lets a user render
the reconstructed figures with standard tooling::

    python -c "from repro.io.dot import influence_to_dot; \\
               from repro.workloads import paper_influence_graph; \\
               print(influence_to_dot(paper_influence_graph()))" | dot -Tsvg

Replica links render as dashed, unlabelled, undirected-looking pairs
(the paper draws them as plain 0-weight links); influence edges carry
their weight as the edge label, matching Figs. 3-4.
"""

from __future__ import annotations

from repro.allocation.mapping import Mapping
from repro.influence.influence_graph import InfluenceGraph


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def influence_to_dot(
    graph: InfluenceGraph,
    title: str = "influence",
    rankdir: str = "LR",
) -> str:
    """DOT digraph of one influence graph."""
    lines = [
        f"digraph {_quote(title)} {{",
        f"  rankdir={rankdir};",
        "  node [shape=circle, fontsize=11];",
    ]
    for name in graph.fcm_names():
        attrs = graph.fcm(name).attributes
        peripheries = 2 if attrs.replicated else 1
        lines.append(
            f"  {_quote(name)} [peripheries={peripheries}];"
        )
    for src, dst, weight in graph.influence_edges():
        label = f"{weight:.2f}" if weight >= 0.005 else f"{weight:.1e}"
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)} [label={_quote(label)}];"
        )
    seen: set[frozenset[str]] = set()
    for group in graph.replica_groups():
        members = sorted(group)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                key = frozenset((a, b))
                if key in seen or not graph.is_replica_link(a, b):
                    continue
                seen.add(key)
                lines.append(
                    f"  {_quote(a)} -> {_quote(b)} "
                    "[dir=none, style=dashed, label=\"0\"];"
                )
    lines.append("}")
    return "\n".join(lines)


def mapping_to_dot(mapping: Mapping, title: str = "mapping") -> str:
    """DOT digraph of a mapping: one cluster subgraph per HW node.

    Clusters render as boxes (the paper's Figs. 6-8 style) containing
    their member SW nodes; inter-cluster influence edges connect the
    boxes through their members.
    """
    state = mapping.state
    lines = [
        f"digraph {_quote(title)} {{",
        "  rankdir=LR;",
        "  node [shape=circle, fontsize=11];",
        "  compound=true;",
    ]
    for index, cluster in enumerate(state.clusters):
        hw_name = mapping.assignment.get(index, "unassigned")
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(hw_name)};")
        lines.append("    style=rounded;")
        for member in cluster.members:
            lines.append(f"    {_quote(member)};")
        lines.append("  }")
    cluster_of = {
        member: index
        for index, cluster in enumerate(state.clusters)
        for member in cluster.members
    }
    for src, dst, weight in state.graph.influence_edges():
        if cluster_of[src] == cluster_of[dst]:
            continue  # internal influences are invisible (Fig. 2)
        label = f"{weight:.2f}"
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)
