"""Aggregated validation of serialized system documents.

:func:`repro.io.serialization.system_from_dict` historically failed on the
*first* malformed field it touched, with whatever exception the model
layer happened to raise.  For hand-written workload files that means an
edit-run-fail loop, one defect per round trip.  This module walks the
whole document up front and reports *every* problem at once, each tagged
with a JSON path (``fcms[3].attributes.criticality``) and, when the raw
file text is available, a best-effort line number.

The report is raised as :class:`ValidationFailure`, a subclass of
:class:`~repro.io.serialization.SerializationError` — so it inherits the
CLI's exit-code-2 handling and existing ``except SerializationError``
call sites keep working.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.influence.factors import FactorKind
from repro.io.serialization import SerializationError
from repro.model.attributes import SecurityLevel
from repro.model.fcm import Level


@dataclass(frozen=True)
class ValidationIssue:
    """One defect found in a serialized document.

    Attributes:
        path: JSON path of the offending value, e.g.
            ``fcms[2].attributes.security`` or ``links[0]``.
        message: What is wrong with the value.
        line: Best-effort 1-based line number in the source file, when the
            raw text was available and the value could be located.
    """

    path: str
    message: str
    line: int | None = None

    def describe(self) -> str:
        where = f" (line {self.line})" if self.line is not None else ""
        return f"{self.path}{where}: {self.message}"


class ValidationFailure(SerializationError):
    """A document failed validation; ``issues`` holds every defect found.

    Subclasses :class:`SerializationError`, so existing ``except`` sites
    keep working and the CLI's error path (exit code 2) applies.
    """

    def __init__(
        self, issues: list[ValidationIssue], source: str | None = None
    ) -> None:
        self.issues = tuple(issues)
        self.source = source
        label = source or "document"
        noun = "issue" if len(self.issues) == 1 else "issues"
        lines = [f"{label}: {len(self.issues)} validation {noun}"]
        lines += [f"  - {issue.describe()}" for issue in self.issues]
        super().__init__("\n".join(lines))


# ----------------------------------------------------------------------
# Line hints
# ----------------------------------------------------------------------
class _LineFinder:
    """Best-effort mapping from a JSON token to its line in the raw text.

    Exact positions would need a lossless parser; for error messages a
    first-occurrence scan of the quoted token is enough, and degrades to
    ``None`` (path-only context) when the text is unavailable or the
    token appears nowhere.
    """

    def __init__(self, text: str | None) -> None:
        self._lines = text.splitlines() if text else []

    def line_of(self, token: str | None) -> int | None:
        if token is None or not self._lines:
            return None
        needle = json.dumps(token)
        for number, line in enumerate(self._lines, start=1):
            if needle in line:
                return number
        return None


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


# ----------------------------------------------------------------------
# System documents
# ----------------------------------------------------------------------
def validate_system_dict(
    data: Any, text: str | None = None
) -> list[ValidationIssue]:
    """Every defect in a ``ddsi-system`` document, in document order.

    Checks the header, FCM entries (names, levels, attribute ranges),
    hierarchy links (endpoints, duplicate parents, cycles), and influence
    sections (levels, edge endpoints, probability ranges, factor kinds).
    Returns an empty list when the document is well-formed enough for
    :func:`~repro.io.serialization.system_from_dict` to succeed.
    """
    finder = _LineFinder(text)
    issues: list[ValidationIssue] = []

    def flag(path: str, message: str, token: str | None = None) -> None:
        issues.append(ValidationIssue(path, message, finder.line_of(token)))

    if not isinstance(data, dict):
        flag("$", "expected a JSON object")
        return issues

    _check_header_fields(data, flag, expected_format="ddsi-system")

    fcm_names = _check_fcms(data, flag)
    _check_links(data, flag, fcm_names)
    _check_influence(data, flag, fcm_names)
    return issues


def _check_header_fields(data: dict, flag, expected_format: str) -> None:
    fmt = data.get("format")
    if fmt != expected_format:
        flag(
            "format",
            f"expected format {expected_format!r}, got {fmt!r}",
            "format",
        )
    version = data.get("version", 1)
    if not isinstance(version, int) or isinstance(version, bool):
        flag("version", f"version must be an integer, got {version!r}", "version")
    elif version > 1:
        flag(
            "version",
            f"file version {version} is newer than supported 1",
            "version",
        )


def _check_fcms(data: dict, flag) -> dict[str, str]:
    """Validate ``fcms`` entries; returns name -> level-name for valid ones."""
    fcms = data.get("fcms", [])
    names: dict[str, str] = {}
    if not isinstance(fcms, list):
        flag("fcms", f"must be a list, got {type(fcms).__name__}", "fcms")
        return names
    valid_levels = {level.name for level in Level}
    for i, entry in enumerate(fcms):
        path = f"fcms[{i}]"
        if not isinstance(entry, dict):
            flag(path, "must be an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            flag(f"{path}.name", f"missing or empty FCM name (got {name!r})")
            name = None
        elif name in names:
            flag(f"{path}.name", f"duplicate FCM name {name!r}", name)
        level = entry.get("level")
        if level is None:
            flag(f"{path}.level", "missing level", name)
        elif level not in valid_levels:
            flag(
                f"{path}.level",
                f"unknown level {level!r} (expected one of "
                f"{sorted(valid_levels)})",
                level if isinstance(level, str) else name,
            )
            level = None
        if name is not None:
            names.setdefault(name, level if isinstance(level, str) else "")
        _check_attributes(entry.get("attributes"), f"{path}.attributes", flag, name)
        replica_of = entry.get("replica_of")
        if replica_of is not None and not isinstance(replica_of, str):
            flag(f"{path}.replica_of", f"must be a string, got {replica_of!r}", name)
    # replica_of endpoints need the full name set, so a second pass:
    for i, entry in enumerate(fcms):
        if not isinstance(entry, dict):
            continue
        replica_of = entry.get("replica_of")
        if isinstance(replica_of, str) and replica_of not in names:
            flag(
                f"fcms[{i}].replica_of",
                f"references unknown FCM {replica_of!r}",
                replica_of,
            )
    return names


def _check_attributes(attrs: Any, path: str, flag, token: str | None) -> None:
    if attrs is None:
        return
    if not isinstance(attrs, dict):
        flag(path, f"must be an object, got {type(attrs).__name__}", token)
        return
    for key in ("criticality", "throughput", "communication_rate"):
        if key in attrs:
            value = attrs[key]
            if not _is_number(value):
                flag(f"{path}.{key}", f"must be a number, got {value!r}", token)
            elif value < 0:
                flag(f"{path}.{key}", f"must be >= 0, got {value}", token)
    if "fault_tolerance" in attrs:
        ft = attrs["fault_tolerance"]
        if not isinstance(ft, int) or isinstance(ft, bool) or ft < 1:
            flag(
                f"{path}.fault_tolerance",
                f"must be an integer >= 1, got {ft!r}",
                token,
            )
    if "security" in attrs:
        security = attrs["security"]
        if security not in SecurityLevel.__members__:
            flag(
                f"{path}.security",
                f"unknown security level {security!r} (expected one of "
                f"{list(SecurityLevel.__members__)})",
                security if isinstance(security, str) else token,
            )
    timing = attrs.get("timing")
    if timing is not None:
        _check_timing(timing, f"{path}.timing", flag, token)


def _check_timing(timing: Any, path: str, flag, token: str | None) -> None:
    if not isinstance(timing, dict):
        flag(path, f"must be an object, got {type(timing).__name__}", token)
        return
    values: dict[str, float] = {}
    for key in ("earliest_start", "deadline", "computation_time"):
        if key not in timing:
            flag(f"{path}.{key}", "missing required timing field", token)
        elif not _is_number(timing[key]):
            flag(f"{path}.{key}", f"must be a number, got {timing[key]!r}", token)
        else:
            values[key] = float(timing[key])
    if len(values) != 3:
        return
    est, tcd, ct = (
        values["earliest_start"],
        values["deadline"],
        values["computation_time"],
    )
    if est < 0:
        flag(f"{path}.earliest_start", f"must be >= 0, got {est}", token)
    if ct < 0:
        flag(f"{path}.computation_time", f"must be >= 0, got {ct}", token)
    if tcd < est:
        flag(
            f"{path}.deadline",
            f"deadline {tcd} is before earliest_start {est}",
            token,
        )
    elif ct >= 0 and est >= 0 and ct > (tcd - est) + 1e-12:
        flag(
            path,
            f"degenerate window: {ct} units of work cannot fit in "
            f"[{est}, {tcd}]",
            token,
        )


def _check_links(data: dict, flag, fcm_names: dict[str, str]) -> None:
    links = data.get("links", [])
    if not isinstance(links, list):
        flag("links", f"must be a list, got {type(links).__name__}", "links")
        return
    parent_of: dict[str, str] = {}
    for i, link in enumerate(links):
        path = f"links[{i}]"
        if not isinstance(link, dict):
            flag(path, "must be an object")
            continue
        child = link.get("child")
        parent = link.get("parent")
        ok = True
        for role, value in (("child", child), ("parent", parent)):
            if not isinstance(value, str) or not value:
                flag(f"{path}.{role}", f"missing or invalid {role} (got {value!r})")
                ok = False
            elif fcm_names and value not in fcm_names:
                flag(
                    f"{path}.{role}",
                    f"references unknown FCM {value!r}",
                    value,
                )
                ok = False
        if not ok:
            continue
        if child == parent:
            flag(path, f"FCM {child!r} linked to itself", child)
            continue
        if child in parent_of:
            flag(
                path,
                f"FCM {child!r} already has parent {parent_of[child]!r}",
                child,
            )
            continue
        parent_of[child] = parent
    # Cycle detection over the parent map: follow each chain upward.
    cleared: set[str] = set()
    for start in parent_of:
        trail: list[str] = []
        seen: set[str] = set()
        node = start
        while node in parent_of and node not in cleared:
            if node in seen:
                cycle = trail[trail.index(node):] + [node]
                flag(
                    "links",
                    "cyclic hierarchy: " + " -> ".join(repr(n) for n in cycle),
                    node,
                )
                break
            seen.add(node)
            trail.append(node)
            node = parent_of[node]
        cleared.update(seen)


def _check_influence(data: dict, flag, fcm_names: dict[str, str]) -> None:
    influence = data.get("influence", {})
    if not isinstance(influence, dict):
        flag(
            "influence",
            f"must be an object, got {type(influence).__name__}",
            "influence",
        )
        return
    valid_levels = {level.name for level in Level}
    for level_name, section in influence.items():
        path = f"influence.{level_name}"
        if level_name not in valid_levels:
            flag(
                path,
                f"unknown level {level_name!r} (expected one of "
                f"{sorted(valid_levels)})",
                level_name,
            )
            continue
        if not isinstance(section, dict):
            flag(path, f"must be an object, got {type(section).__name__}")
            continue
        # FCMs whose own level failed validation (stored as "") act as
        # wildcards here, so one bad level doesn't cascade into spurious
        # "not at this level" reports for every edge touching the FCM.
        at_level = {
            name
            for name, lvl in fcm_names.items()
            if lvl == level_name or lvl == ""
        }
        _check_edges(section, path, flag, fcm_names, at_level, level_name)
        _check_replica_links(section, path, flag, fcm_names, at_level, level_name)


def _check_edges(
    section: dict,
    path: str,
    flag,
    fcm_names: dict[str, str],
    at_level: set[str],
    level_name: str,
) -> None:
    edges = section.get("edges", [])
    if not isinstance(edges, list):
        flag(f"{path}.edges", f"must be a list, got {type(edges).__name__}")
        return
    for i, edge in enumerate(edges):
        epath = f"{path}.edges[{i}]"
        if not isinstance(edge, dict):
            flag(epath, "must be an object")
            continue
        for role in ("source", "target"):
            value = edge.get(role)
            if not isinstance(value, str) or not value:
                flag(f"{epath}.{role}", f"missing or invalid {role} (got {value!r})")
            elif fcm_names and value not in fcm_names:
                flag(f"{epath}.{role}", f"references unknown FCM {value!r}", value)
            elif at_level and value not in at_level:
                flag(
                    f"{epath}.{role}",
                    f"FCM {value!r} is not at level {level_name}",
                    value,
                )
        has_value = "value" in edge
        has_factors = "factors" in edge
        if has_value == has_factors:
            flag(epath, "must carry exactly one of 'value' or 'factors'")
            continue
        if has_value:
            value = edge["value"]
            if not _is_number(value):
                flag(f"{epath}.value", f"must be a number, got {value!r}")
            elif not 0.0 <= value <= 1.0:
                flag(
                    f"{epath}.value",
                    f"influence probability must be in [0, 1], got {value}",
                )
        else:
            _check_factors(edge["factors"], f"{epath}.factors", flag)


def _check_factors(factors: Any, path: str, flag) -> None:
    if not isinstance(factors, list):
        flag(path, f"must be a list, got {type(factors).__name__}")
        return
    valid_kinds = {kind.value for kind in FactorKind}
    for i, factor in enumerate(factors):
        fpath = f"{path}[{i}]"
        if not isinstance(factor, dict):
            flag(fpath, "must be an object")
            continue
        kind = factor.get("kind")
        if kind not in valid_kinds:
            flag(
                f"{fpath}.kind",
                f"unknown factor kind {kind!r} (expected one of "
                f"{sorted(valid_kinds)})",
                kind if isinstance(kind, str) else None,
            )
        for key in ("p_occurrence", "p_transmission", "p_effect"):
            if key not in factor:
                flag(f"{fpath}.{key}", "missing factor probability")
            elif not _is_number(factor[key]):
                flag(f"{fpath}.{key}", f"must be a number, got {factor[key]!r}")
            elif not 0.0 <= factor[key] <= 1.0:
                flag(
                    f"{fpath}.{key}",
                    f"probability must be in [0, 1], got {factor[key]}",
                )


def _check_replica_links(
    section: dict,
    path: str,
    flag,
    fcm_names: dict[str, str],
    at_level: set[str],
    level_name: str,
) -> None:
    links = section.get("replica_links", [])
    if not isinstance(links, list):
        flag(
            f"{path}.replica_links",
            f"must be a list, got {type(links).__name__}",
        )
        return
    for i, pair in enumerate(links):
        lpath = f"{path}.replica_links[{i}]"
        if (
            not isinstance(pair, list)
            or len(pair) != 2
            or not all(isinstance(n, str) for n in pair)
        ):
            flag(lpath, f"must be a pair of FCM names, got {pair!r}")
            continue
        a, b = pair
        if a == b:
            flag(lpath, f"FCM {a!r} linked as a replica of itself", a)
        for name in pair:
            if fcm_names and name not in fcm_names:
                flag(lpath, f"references unknown FCM {name!r}", name)
            elif at_level and name not in at_level:
                flag(lpath, f"FCM {name!r} is not at level {level_name}", name)
