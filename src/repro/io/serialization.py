"""JSON serialization of systems, HW graphs, and outcomes.

A downstream user describes their system once (by hand or from tooling)
and feeds it to the framework — so the on-disk format must round-trip
everything the model holds: FCMs with full attribute sets, hierarchy
links, per-level influence graphs with factor decompositions and replica
links, and HW graphs with FCRs/resources/link costs.

The format is plain JSON with a ``format`` tag and explicit versioning.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import DDSIError
from repro.allocation.hw_model import HWGraph, HWNode
from repro.influence.factors import FactorKind, InfluenceFactor
from repro.influence.influence_graph import InfluenceGraph
from repro.model.attributes import AttributeSet, SecurityLevel, TimingConstraint
from repro.model.fcm import FCM, Level
from repro.model.system import SoftwareSystem

FORMAT_SYSTEM = "ddsi-system"
FORMAT_HW = "ddsi-hw"
VERSION = 1


class SerializationError(DDSIError):
    """Malformed or incompatible serialized data."""


# ----------------------------------------------------------------------
# Attributes
# ----------------------------------------------------------------------
def attributes_to_dict(attrs: AttributeSet) -> dict[str, Any]:
    out: dict[str, Any] = {
        "criticality": attrs.criticality,
        "fault_tolerance": attrs.fault_tolerance,
        "throughput": attrs.throughput,
        "security": attrs.security.name,
        "communication_rate": attrs.communication_rate,
    }
    if attrs.timing is not None:
        out["timing"] = {
            "earliest_start": attrs.timing.earliest_start,
            "deadline": attrs.timing.deadline,
            "computation_time": attrs.timing.computation_time,
        }
    return out


def attributes_from_dict(data: dict[str, Any]) -> AttributeSet:
    timing = None
    if "timing" in data and data["timing"] is not None:
        t = data["timing"]
        timing = TimingConstraint(
            t["earliest_start"], t["deadline"], t["computation_time"]
        )
    try:
        security = SecurityLevel[data.get("security", "UNCLASSIFIED")]
    except KeyError as exc:
        raise SerializationError(f"unknown security level {data['security']!r}") from exc
    return AttributeSet(
        criticality=data.get("criticality", 0.0),
        fault_tolerance=data.get("fault_tolerance", 1),
        timing=timing,
        throughput=data.get("throughput", 0.0),
        security=security,
        communication_rate=data.get("communication_rate", 0.0),
    )


# ----------------------------------------------------------------------
# Influence graphs
# ----------------------------------------------------------------------
def _edge_to_dict(graph: InfluenceGraph, src: str, dst: str, weight: float) -> dict[str, Any]:
    out: dict[str, Any] = {"source": src, "target": dst}
    factors = graph.factors(src, dst)
    if factors:
        out["factors"] = [
            {
                "kind": f.kind.value,
                "p_occurrence": f.p_occurrence,
                "p_transmission": f.p_transmission,
                "p_effect": f.p_effect,
            }
            for f in factors
        ]
    else:
        out["value"] = weight
    return out


def influence_to_dict(graph: InfluenceGraph) -> dict[str, Any]:
    replica_links = []
    seen: set[frozenset[str]] = set()
    for group in graph.replica_groups():
        members = sorted(group)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                key = frozenset((a, b))
                if graph.is_replica_link(a, b) and key not in seen:
                    seen.add(key)
                    replica_links.append([a, b])
    return {
        "edges": [
            _edge_to_dict(graph, src, dst, w)
            for src, dst, w in graph.influence_edges()
        ],
        "replica_links": replica_links,
    }


def _load_influence(
    graph: InfluenceGraph,
    data: dict[str, Any],
) -> None:
    for edge in data.get("edges", []):
        if "factors" in edge:
            factors = [
                InfluenceFactor(
                    FactorKind(f["kind"]),
                    f["p_occurrence"],
                    f["p_transmission"],
                    f["p_effect"],
                )
                for f in edge["factors"]
            ]
            graph.set_influence(edge["source"], edge["target"], factors=factors)
        else:
            graph.set_influence(edge["source"], edge["target"], edge["value"])
    for a, b in data.get("replica_links", []):
        graph.link_replicas(a, b)


FORMAT_GRAPH = "ddsi-influence-graph"


def graph_to_dict(graph: InfluenceGraph) -> dict[str, Any]:
    """Serialize a standalone influence graph, FCM nodes included.

    :func:`influence_to_dict` captures only edges (the system document
    stores FCMs separately); this captures the whole graph, so a worker
    process can rebuild it from JSON alone — the shard-campaign task
    spec crossing the subprocess transport depends on it.
    """
    document = {
        "format": FORMAT_GRAPH,
        "version": VERSION,
        "fcms": [
            {
                "name": fcm.name,
                "level": fcm.level.name,
                "attributes": attributes_to_dict(fcm.attributes),
                "stateless": fcm.stateless,
                "replica_of": fcm.replica_of,
            }
            for fcm in graph.fcms()
        ],
    }
    document.update(influence_to_dict(graph))
    return document


def graph_from_dict(data: dict[str, Any]) -> InfluenceGraph:
    """Rebuild a standalone influence graph from :func:`graph_to_dict`."""
    _check_header(data, FORMAT_GRAPH)
    graph = InfluenceGraph()
    for entry in data.get("fcms", []):
        try:
            level = Level[entry["level"]]
        except KeyError as exc:
            raise SerializationError(
                f"unknown level {entry.get('level')!r}"
            ) from exc
        graph.add_fcm(
            FCM(
                name=entry["name"],
                level=level,
                attributes=attributes_from_dict(entry.get("attributes", {})),
                stateless=entry.get("stateless", True),
                replica_of=entry.get("replica_of"),
            )
        )
    _load_influence(graph, data)
    return graph


# ----------------------------------------------------------------------
# Systems
# ----------------------------------------------------------------------
def system_to_dict(system: SoftwareSystem) -> dict[str, Any]:
    fcms = []
    links = []
    for fcm in system.hierarchy:
        entry: dict[str, Any] = {
            "name": fcm.name,
            "level": fcm.level.name,
            "attributes": attributes_to_dict(fcm.attributes),
        }
        if not fcm.stateless:
            entry["stateless"] = False
        if fcm.replica_of is not None:
            entry["replica_of"] = fcm.replica_of
        fcms.append(entry)
        parent = system.hierarchy.parent_of(fcm.name)
        if parent is not None:
            links.append({"child": fcm.name, "parent": parent.name})
    return {
        "format": FORMAT_SYSTEM,
        "version": VERSION,
        "name": system.name,
        "fcms": fcms,
        "links": links,
        "influence": {
            level.name: influence_to_dict(graph)
            for level, graph in system.influence.items()
        },
    }


def system_from_dict(
    data: dict[str, Any],
    source: str | None = None,
    text: str | None = None,
) -> SoftwareSystem:
    # Walk the whole document first so *every* defect is reported at
    # once, with JSON-path (and, given ``text``, line) context; the
    # legacy per-field raises below remain as a backstop.
    from repro.io.validation import ValidationFailure, validate_system_dict

    issues = validate_system_dict(data, text=text)
    if issues:
        raise ValidationFailure(issues, source=source)
    _check_header(data, FORMAT_SYSTEM)
    system = SoftwareSystem(name=data.get("name", "unnamed"))
    for entry in data.get("fcms", []):
        try:
            level = Level[entry["level"]]
        except KeyError as exc:
            raise SerializationError(
                f"unknown level {entry.get('level')!r}"
            ) from exc
        system.hierarchy.add(
            FCM(
                name=entry["name"],
                level=level,
                attributes=attributes_from_dict(entry.get("attributes", {})),
                stateless=entry.get("stateless", True),
                replica_of=entry.get("replica_of"),
            )
        )
    for link in data.get("links", []):
        system.hierarchy.attach(link["child"], link["parent"])
    for level_name, graph_data in data.get("influence", {}).items():
        try:
            level = Level[level_name]
        except KeyError as exc:
            raise SerializationError(f"unknown level {level_name!r}") from exc
        graph = system.influence_at(level)
        _load_influence(graph, graph_data)
    return system


def dump_system(system: SoftwareSystem, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(system_to_dict(system), handle, indent=2)


def load_system(path: str) -> SoftwareSystem:
    with open(path) as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        from repro.io.validation import ValidationFailure, ValidationIssue

        raise ValidationFailure(
            [ValidationIssue("$", f"invalid JSON: {exc.msg}", exc.lineno)],
            source=path,
        ) from exc
    return system_from_dict(data, source=path, text=text)


# ----------------------------------------------------------------------
# HW graphs
# ----------------------------------------------------------------------
def hw_to_dict(hw: HWGraph) -> dict[str, Any]:
    return {
        "format": FORMAT_HW,
        "version": VERSION,
        "nodes": [
            {
                "name": node.name,
                "fcr": node.fcr,
                "resources": sorted(node.resources),
                "memory": node.memory,
            }
            for node in hw.nodes()
        ],
        "links": [
            {"a": a, "b": b, "cost": cost} for a, b, cost in hw.all_links()
        ],
    }


def hw_from_dict(data: dict[str, Any]) -> HWGraph:
    _check_header(data, FORMAT_HW)
    hw = HWGraph()
    for entry in data.get("nodes", []):
        hw.add_node(
            HWNode(
                name=entry["name"],
                fcr=entry.get("fcr", "fcr0"),
                resources=frozenset(entry.get("resources", [])),
                memory=entry.get("memory", 0.0),
            )
        )
    for link in data.get("links", []):
        hw.add_link(link["a"], link["b"], link.get("cost", 1.0))
    return hw


def dump_hw(hw: HWGraph, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(hw_to_dict(hw), handle, indent=2)


def load_hw(path: str) -> HWGraph:
    with open(path) as handle:
        return hw_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# Integration outcomes
# ----------------------------------------------------------------------
def outcome_to_dict(outcome: "Any") -> dict[str, Any]:
    """Serialize an :class:`~repro.core.results.IntegrationOutcome`.

    One-way (reports are regenerated, not reloaded): records the cluster
    partition, the HW assignment, the goodness scores, audit findings and
    notes — everything a downstream deployment step needs.
    """
    state = outcome.condensation.state
    score = outcome.score
    return {
        "format": "ddsi-outcome",
        "version": VERSION,
        "system": outcome.system_name,
        "heuristic": outcome.condensation.heuristic,
        "feasible": outcome.feasible,
        "clusters": [
            {
                "label": cluster.label,
                "members": list(cluster.members),
                "hw_node": outcome.mapping.assignment.get(index),
            }
            for index, cluster in enumerate(state.clusters)
        ],
        "scores": {
            "cross_influence": score.partition.cross_influence,
            "max_node_criticality": score.partition.max_node_criticality,
            "critical_colocations": score.partition.critical_colocations,
            "communication_cost": score.communication_cost,
            "replica_separation_ok": score.replica_separation_ok,
            "complete": score.complete,
            "constraint_violations": list(score.partition.constraint_violations),
            "resource_violations": list(score.resource_violations),
        },
        "audit_findings": outcome.audit.describe(),
        "notes": list(outcome.notes),
    }


def dump_outcome(outcome: "Any", path: str) -> None:
    with open(path, "w") as handle:
        json.dump(outcome_to_dict(outcome), handle, indent=2)


def _check_header(data: dict[str, Any], expected_format: str) -> None:
    if not isinstance(data, dict):
        raise SerializationError("expected a JSON object")
    if data.get("format") != expected_format:
        raise SerializationError(
            f"expected format {expected_format!r}, got {data.get('format')!r}"
        )
    version = data.get("version", VERSION)
    if version > VERSION:
        raise SerializationError(
            f"file version {version} is newer than supported {VERSION}"
        )
