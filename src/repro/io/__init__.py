"""Serialization: JSON round-trip and Graphviz DOT export."""

from repro.io.dot import influence_to_dot, mapping_to_dot
from repro.io.serialization import (
    SerializationError,
    attributes_from_dict,
    attributes_to_dict,
    dump_hw,
    dump_outcome,
    dump_system,
    graph_from_dict,
    graph_to_dict,
    hw_from_dict,
    hw_to_dict,
    influence_to_dict,
    load_hw,
    load_system,
    outcome_to_dict,
    system_from_dict,
    system_to_dict,
)
from repro.io.validation import (
    ValidationFailure,
    ValidationIssue,
    validate_system_dict,
)

__all__ = [
    "SerializationError",
    "ValidationFailure",
    "ValidationIssue",
    "validate_system_dict",
    "attributes_from_dict",
    "attributes_to_dict",
    "dump_hw",
    "dump_outcome",
    "dump_system",
    "graph_from_dict",
    "graph_to_dict",
    "hw_from_dict",
    "hw_to_dict",
    "influence_to_dot",
    "influence_to_dict",
    "load_hw",
    "load_system",
    "mapping_to_dot",
    "outcome_to_dict",
    "system_from_dict",
    "system_to_dict",
]
