#!/usr/bin/env python
"""Validate repro trace NDJSON files; exit nonzero on any problem.

Used by CI after generating sample traces: every line must parse as
JSON, and span/decision records must carry the required keys with a
consistent parent structure (see :func:`repro.obs.ndjson.validate_trace`).

Usage::

    PYTHONPATH=src python scripts/check_ndjson.py trace.ndjson [more.ndjson ...]
"""

from __future__ import annotations

import sys

from repro.errors import ObservabilityError
from repro.obs import load_ndjson, trace_meta, validate_trace


def check_file(path: str) -> tuple[list[str], str]:
    """(problems, format label) for one NDJSON file (no problems = valid)."""
    try:
        events = load_ndjson(path)
    except ObservabilityError as exc:
        return [str(exc)], "?"
    except OSError as exc:
        return [f"cannot read {path}: {exc}"], "?"
    meta = trace_meta(events)
    label = (
        f"{meta.get('format', '?')} v{meta.get('version', '?')}"
        if meta is not None
        else "no meta line"
    )
    return validate_trace(events), label


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_ndjson.py FILE [FILE ...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        problems, label = check_file(path)
        if problems:
            failed = True
            print(f"{path}: INVALID ({label})")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: ok ({label})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
