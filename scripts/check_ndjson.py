#!/usr/bin/env python
"""Validate repro trace NDJSON files; exit nonzero on any problem.

Used by CI after generating sample traces: every line must parse as
JSON, and span/decision records must carry the required keys with a
consistent parent structure (see :func:`repro.obs.ndjson.validate_trace`).

Usage::

    PYTHONPATH=src python scripts/check_ndjson.py trace.ndjson [more.ndjson ...]
"""

from __future__ import annotations

import sys

from repro.errors import ObservabilityError
from repro.obs import load_ndjson, validate_trace


def check_file(path: str) -> list[str]:
    """Problems found in one NDJSON file (empty list means valid)."""
    try:
        events = load_ndjson(path)
    except ObservabilityError as exc:
        return [str(exc)]
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    return validate_trace(events)


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_ndjson.py FILE [FILE ...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        problems = check_file(path)
        if problems:
            failed = True
            print(f"{path}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
