#!/usr/bin/env python
"""Validate repro NDJSON files; exit nonzero on any problem.

Sniffs each file's first meta line and dispatches:

* ``repro-exec-checkpoint`` — structural checkpoint + manifest
  validation (:func:`repro.exec.validate_checkpoint`): batch ranges
  inside the campaign, manifest/checkpoint identity agreement, and no
  manifest claiming completion over coverage gaps.  Torn lines are
  tolerated (the format survives crashes by design) and surfaced in
  the label.
* ``repro-worker-telemetry`` — raw worker-telemetry batch streams as
  written by ``--telemetry-stream``: per-lease monotonic sequence
  numbers (``telemetry`` and ``profile`` batches share one sequence),
  epoch anchors, and well-formed inner span/decision/profile events
  (see :func:`repro.obs.telemetry.validate_telemetry_stream`).
* anything else — trace validation: every line must parse as JSON,
  and span/decision/profile records must carry the required keys with
  a consistent parent structure
  (see :func:`repro.obs.ndjson.validate_trace`).  Merged distributed
  traces validate here too: grafted worker spans must be closed
  (``remote`` spans with no ``t_end`` are flagged) and parented
  inside the supervisor's tree.  Records of *unknown* type are
  tolerated and counted in the label (forward compatibility with
  newer writers).

Usage::

    PYTHONPATH=src python scripts/check_ndjson.py trace.ndjson \
        checkpoint.ndjson [more.ndjson ...]
"""

from __future__ import annotations

import json
import sys

from repro.errors import ObservabilityError
from repro.exec import validate_checkpoint
from repro.exec.checkpoint import CHECKPOINT_FORMAT
from repro.obs import load_ndjson, trace_meta, validate_trace
from repro.obs.ndjson import unknown_kind_counts
from repro.obs.telemetry import TELEMETRY_FORMAT, validate_telemetry_stream


def _sniff_format(path: str) -> str | None:
    """The ``format`` tag of the file's first decodable line, if any."""
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    return None
                if isinstance(record, dict):
                    return record.get("format")
                return None
    except OSError:
        return None
    return None


def check_file(path: str) -> tuple[list[str], str]:
    """(problems, format label) for one NDJSON file (no problems = valid)."""
    if _sniff_format(path) == CHECKPOINT_FORMAT:
        return validate_checkpoint(path)
    try:
        events = load_ndjson(path)
    except ObservabilityError as exc:
        return [str(exc)], "?"
    except OSError as exc:
        return [f"cannot read {path}: {exc}"], "?"
    meta = trace_meta(events)
    label = (
        f"{meta.get('format', '?')} v{meta.get('version', '?')}"
        if meta is not None
        else "no meta line"
    )
    if meta is not None and meta.get("format") == TELEMETRY_FORMAT:
        return validate_telemetry_stream(events), label
    unknown = unknown_kind_counts(events)
    if unknown:
        label += f", {sum(unknown.values())} unknown-kind event(s)"
    return validate_trace(events), label


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_ndjson.py FILE [FILE ...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        problems, label = check_file(path)
        if problems:
            failed = True
            print(f"{path}: INVALID ({label})")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{path}: ok ({label})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
