#!/usr/bin/env python
"""Assert a trace's allocation stages actually ran on the vector engine.

CI smoke for the compiled allocation path: given an NDJSON trace from
``repro integrate --engine vector``, every engine-tagged pipeline stage
span (expand, condense, map, score) must carry ``engine: "vector"`` — a
silent fallback to scalar would otherwise pass every correctness test
(the engines are bit-identical) while quietly surrendering the speedup
the bench baseline gates.

Usage::

    PYTHONPATH=src python scripts/check_vector_stages.py TRACE.ndjson ...
"""

from __future__ import annotations

import json
import sys

ENGINE_TAGGED_STAGES = ("expand", "condense", "map", "score")


def check_trace(path: str) -> list[str]:
    """Return problem strings for one trace file (empty = passed)."""
    engines: dict[str, str | None] = {}
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("type") != "span":
                    continue
                name = event.get("name")
                if name in ENGINE_TAGGED_STAGES:
                    engines[name] = (event.get("attrs") or {}).get("engine")
    except OSError as exc:
        return [f"{path}: cannot read: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid NDJSON: {exc}"]

    problems = []
    for stage in ENGINE_TAGGED_STAGES:
        if stage not in engines:
            problems.append(f"{path}: no {stage!r} stage span in the trace")
        elif engines[stage] != "vector":
            problems.append(
                f"{path}: stage {stage!r} ran engine={engines[stage]!r}, "
                "not the vector path"
            )
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_vector_stages.py TRACE.ndjson ...", file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        problems = check_trace(path)
        if problems:
            failed = True
            for problem in problems:
                print(f"FAIL {problem}", file=sys.stderr)
        else:
            print(f"OK   {path}: allocation stages engaged the vector engine")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
