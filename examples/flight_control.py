"""Flight-control integration: the paper's motivating scenario.

"The integration for flight control SW involves display, sensor,
collision avoidance, and navigation SW onto a shared platform" — the
Boeing 777 AIMS-style system.  This example:

1. builds the mixed-criticality avionics system (TMR flight control,
   duplex collision avoidance, simplex support processes);
2. audits non-interference and level discipline;
3. integrates onto a 6-cabinet platform where the sensor bus and the
   display head are fixed resources;
4. validates fault containment by injection campaign;
5. reports a criticality-weighted dependability index.

Run:  python examples/flight_control.py
"""

from repro import FrameworkOptions, Heuristic, IntegrationFramework, MappingApproach
from repro.faultsim import run_campaign
from repro.metrics import (
    render_clusters,
    render_mapping,
    system_dependability_index,
)
from repro.model import Level
from repro.workloads import avionics_hw, avionics_resources, avionics_system


def main() -> None:
    system = avionics_system()
    hw = avionics_hw(6)
    resources = avionics_resources()

    print("FCM hierarchy (Fig. 1 instance):")
    print(system.hierarchy.render())
    print()

    options = FrameworkOptions(
        heuristic=Heuristic.CRITICALITY,
        mapping=MappingApproach.ATTRIBUTES,
        resources=resources,
    )
    framework = IntegrationFramework(system, options)

    audit = framework.audit()
    print(f"design audit passed: {audit.passed}")
    for line in audit.describe():
        print(f"  finding: {line}")
    print()

    outcome = framework.integrate(hw)
    print(render_clusters(outcome.condensation.state, title="Cabinet clusters"))
    print()
    print(render_mapping(outcome.mapping, title="Cabinet assignment"))
    print()

    state = outcome.condensation.state
    sensor_cab = outcome.mapping.node_of(state.cluster_of("sensor_io"))
    display_cab = outcome.mapping.node_of(state.cluster_of("display"))
    print(f"sensor_io pinned to {sensor_cab} (sensor_bus), display to "
          f"{display_cab} (display_head)")
    tmr_cabs = {
        outcome.mapping.node_of(state.cluster_of(f"flight_ctl{s}"))
        for s in "abc"
    }
    print(f"flight_ctl TMR replicas on distinct cabinets: {sorted(tmr_cabs)}")
    print()

    graph = state.graph
    campaign = run_campaign(graph, state.as_partition(), trials=2000, seed=0)
    print("fault-injection campaign (2000 faults):")
    print(f"  mean FCMs affected beyond source : {campaign.mean_affected_fcms:.3f}")
    print(f"  cross-cabinet escape rate        : {campaign.cross_cluster_rate:.3f}")
    print()

    rates = {name: 0.01 for name in graph.fcm_names()}
    index = system_dependability_index(graph, rates)
    print(f"criticality-weighted dependability index: {index:.4f}")


if __name__ == "__main__":
    main()
