"""From a concrete system description to a dependable integration.

The other examples start from abstract influence numbers; this one starts
where a real project starts — concrete artifacts — and derives everything:

1. procedures with classes (the OO footnote): verify information hiding,
   then condense the procedure graph to class granularity;
2. tasks with concrete *communication channels* (medium + volume + rate)
   and operational records: derive the task influence graph from the
   channels via the §4.2.1 estimation rules;
3. processes with both aperiodic windows and periodic control loops:
   integrate under the periodic RM constraint and a security-separation
   policy, then map onto hardware.

Run:  python examples/concrete_system.py
"""

from repro.allocation import (
    CombinationPolicy,
    PeriodicSchedulability,
    SecuritySeparation,
    fully_connected,
    initial_state,
    map_approach_a,
)
from repro.allocation.heuristics import condense_h1
from repro.extensions import ClassGroup, check_encapsulation, class_influence_graph
from repro.influence import (
    InfluenceFactor,
    FactorKind,
    InfluenceGraph,
    InjectionOutcome,
    Medium,
    UsageHistory,
)
from repro.metrics import render_clusters, render_influence_graph, render_mapping
from repro.model import AttributeSet, FCM, Level, SecurityLevel, TimingConstraint
from repro.model.communication import Channel, channels_to_influence
from repro.model.fcm import procedure, process, task
from repro.scheduling import PeriodicTask


def procedure_level() -> None:
    print("== Procedure level: classes and information hiding ==")
    g = InfluenceGraph()
    for name in ("buf_init", "buf_put", "buf_get", "crc", "log_write"):
        g.add_fcm(procedure(name))
    # The ring-buffer class keeps its state in module globals.
    g.set_influence(
        "buf_put", "buf_get",
        factors=[InfluenceFactor(FactorKind.GLOBAL_VARIABLE, 0.3, 0.8, 0.6)],
    )
    g.set_influence(
        "buf_init", "buf_put",
        factors=[InfluenceFactor(FactorKind.GLOBAL_VARIABLE, 0.2, 0.8, 0.6)],
    )
    # Clean calls elsewhere.
    g.set_influence(
        "buf_get", "crc",
        factors=[InfluenceFactor(FactorKind.PARAMETER_PASSING, 0.2, 0.3, 0.4)],
    )
    g.set_influence(
        "crc", "log_write",
        factors=[InfluenceFactor(FactorKind.PARAMETER_PASSING, 0.1, 0.3, 0.4)],
    )

    ring_buffer = ClassGroup("RingBuffer", ("buf_init", "buf_put", "buf_get"))
    report = check_encapsulation(g, [ring_buffer])
    print(f"information hiding holds: {report.passed}")
    class_graph = class_influence_graph(g, [ring_buffer])
    print(render_influence_graph(class_graph, title="class-level influence"))
    print()


def task_level() -> InfluenceGraph:
    print("== Task level: influence derived from concrete channels ==")
    g = InfluenceGraph()
    for name in ("sampler", "estimator", "commander"):
        g.add_fcm(task(name))
    channels = [
        Channel("sampler", "estimator", Medium.SHARED_MEMORY, volume=64, rate=100),
        Channel("estimator", "commander", Medium.MESSAGE, volume=16, rate=50),
        Channel("sampler", "commander", Medium.MESSAGE, volume=4, rate=10),
    ]
    histories = {
        "sampler": UsageHistory(executions=50_000, faults=25),
        "estimator": UsageHistory(executions=50_000, faults=10),
    }
    injections = {
        "estimator": InjectionOutcome(injections=500, target_faults=120),
        "commander": InjectionOutcome(injections=500, target_faults=60),
    }
    channels_to_influence(g, channels, histories, injections, mission_time=600.0)
    print(render_influence_graph(g, title="task influence from channels"))
    print()
    return g


def process_level() -> None:
    print("== Process level: periodic loops + security separation ==")
    g = InfluenceGraph()
    specs = [
        ("control", 90.0, SecurityLevel.RESTRICTED, (0.0, 20.0, 4.0)),
        ("telemetry", 40.0, SecurityLevel.RESTRICTED, (0.0, 30.0, 5.0)),
        ("payload", 30.0, SecurityLevel.UNCLASSIFIED, (5.0, 40.0, 6.0)),
        ("housekeeping", 10.0, SecurityLevel.UNCLASSIFIED, (10.0, 60.0, 5.0)),
    ]
    for name, crit, sec, (est, tcd, ct) in specs:
        g.add_fcm(
            FCM(
                name,
                Level.PROCESS,
                AttributeSet(
                    criticality=crit,
                    security=sec,
                    timing=TimingConstraint(est, tcd, ct),
                ),
            )
        )
    g.set_influence("control", "telemetry", 0.4)
    g.set_influence("telemetry", "control", 0.3)
    g.set_influence("payload", "housekeeping", 0.5)
    g.set_influence("telemetry", "payload", 0.2)

    policy = CombinationPolicy()
    policy.constraints.append(SecuritySeparation(max_span=0))
    policy.constraints.append(
        PeriodicSchedulability(
            tasks={
                "control": (PeriodicTask("ctl.loop", period=5, work=2),),
                "telemetry": (PeriodicTask("tlm.loop", period=10, work=4),),
                "payload": (PeriodicTask("pay.loop", period=20, work=6),),
            }
        )
    )
    state = initial_state(g, policy)
    result = condense_h1(state, 2)
    print(render_clusters(result.state, title="2-node integration"))
    mapping = map_approach_a(result.state, fully_connected(2))
    print(render_mapping(mapping))
    print()
    print("note: control+telemetry share a node (same security level, RM "
          "utilisation 0.4+0.4); payload joins housekeeping — the security "
          "wall keeps UNCLASSIFIED and RESTRICTED apart even though "
          "telemetry->payload influence would prefer them together.")


def main() -> None:
    procedure_level()
    task_level()
    process_level()


if __name__ == "__main__":
    main()
