"""HW/SW codesign and the integration-level trade-off.

Realises the paper's deferred analyses (§6 "Is there a limit to the level
of integration one should design for?" and §7 HW/SW trade-off under a
constrained platform menu):

1. sweep every feasible integration level of the example system and
   print the trade-off curve (containment vs criticality concentration
   vs timing slack);
2. pick the densest level that still meets an influence budget (the
   "knee");
3. run the codesign selector over a platform menu with prices and two
   different dependability-target strengths;
4. compare the H1 design against the provable optimum and an annealed
   refinement.

Run:  python examples/codesign_study.py
"""

from repro.analysis import (
    AnnealingOptions,
    DependabilityTargets,
    PlatformOption,
    anneal,
    choose_platform,
    optimal_condensation,
    sweep_integration_levels,
)
from repro.allocation import (
    condense_h1,
    expand_replication,
    fully_connected,
    initial_state,
)
from repro.metrics import format_table
from repro.workloads import HW_NODE_COUNT, paper_influence_graph


def tradeoff_phase(graph) -> None:
    curve = sweep_integration_levels(graph, campaign_trials=300, seed=0)
    rows = [
        (
            p.hw_nodes,
            f"{p.cross_influence:.2f}",
            f"{p.max_node_criticality:.0f}",
            f"{p.min_slack:.2f}",
            f"{p.fault_escape_rate:.2f}",
        )
        for p in curve.feasible_points()
    ]
    print(
        format_table(
            ["HW nodes", "cross-infl", "max crit", "min slack", "escape"],
            rows,
            title="Phase 1: integration-level trade-off",
        )
    )
    knee = curve.knee(influence_budget=5.0)
    print(f"-> densest level within influence budget 5.0: "
          f"{knee.hw_nodes} HW nodes (cross {knee.cross_influence:.2f})")
    print()


def codesign_phase(graph) -> None:
    menu = [
        PlatformOption("duplex-2", fully_connected(2, prefix="d"), cost=2.0),
        PlatformOption("quad-4", fully_connected(4, prefix="q"), cost=4.5),
        PlatformOption("hex-6", fully_connected(6, prefix="h"), cost=7.0),
        PlatformOption("full-12", fully_connected(12, prefix="f"), cost=15.0),
    ]
    for label, targets in (
        ("loose targets", DependabilityTargets()),
        (
            "cross-influence <= 5.0",
            DependabilityTargets(max_cross_influence=5.0),
        ),
    ):
        result = choose_platform(graph, menu, targets, seed=0)
        chosen = result.require_chosen()
        print(f"Phase 2 ({label}): chose {chosen.option.name} "
              f"at cost {chosen.option.cost} "
              f"(cross-influence {chosen.cross_influence:.2f})")
    print()


def optimality_phase(graph) -> None:
    optimal = optimal_condensation(graph, HW_NODE_COUNT)
    h1 = condense_h1(initial_state(graph.copy()), HW_NODE_COUNT)
    h1_cost = h1.state.total_cross_influence()
    annealed = condense_h1(initial_state(graph.copy()), HW_NODE_COUNT).state
    report = anneal(annealed, AnnealingOptions(iterations=4000, seed=3))
    print("Phase 3: how good is the greedy heuristic?")
    print(f"  exhaustive optimum ({optimal.partitions_examined} states): "
          f"{optimal.cross_influence:.3f}")
    print(f"  H1 greedy:            {h1_cost:.3f} "
          f"({h1_cost / optimal.cross_influence:.1%} of optimal)")
    print(f"  H1 + annealing:       {report.final_cost:.3f}")


def main() -> None:
    graph = expand_replication(paper_influence_graph())
    tradeoff_phase(graph)
    codesign_phase(graph)
    optimality_phase(graph)


if __name__ == "__main__":
    main()
