"""Quickstart: integrate the paper's 8-process example onto 6 processors.

Walks the whole DDSI method on the ICDCS'98 worked example:

1. build the Table 1 processes and the Fig. 3 influence graph;
2. expand replication (Fig. 4);
3. condense the SW graph with H1 (Approach A, Figs. 5-6);
4. map onto a strongly connected 6-node HW graph;
5. score the mapping and compare with Approach B (Fig. 7).

Run:  python examples/quickstart.py
"""

from repro import (
    FrameworkOptions,
    Heuristic,
    IntegrationFramework,
    MappingApproach,
    fully_connected,
    paper_system,
)
from repro.metrics import (
    render_clusters,
    render_influence_graph,
    render_mapping,
)
from repro.model import Level


def main() -> None:
    system = paper_system()
    hw = fully_connected(6)

    print("=" * 64)
    print("Input: Table 1 processes and the Fig. 3 influence graph")
    print("=" * 64)
    print(render_influence_graph(system.influence_at(Level.PROCESS)))
    print()

    print("=" * 64)
    print("Approach A: H1 condensation + importance mapping")
    print("=" * 64)
    outcome_a = IntegrationFramework(system).integrate(hw)
    print(render_clusters(outcome_a.condensation.state))
    print()
    print(render_mapping(outcome_a.mapping))
    print()
    print(outcome_a.summary())
    print()

    print("=" * 64)
    print("Approach B: criticality pairing + attribute mapping (Fig. 7)")
    print("=" * 64)
    options = FrameworkOptions(
        heuristic=Heuristic.CRITICALITY,
        mapping=MappingApproach.ATTRIBUTES,
    )
    outcome_b = IntegrationFramework(paper_system(), options).integrate(
        fully_connected(6)
    )
    print(render_clusters(outcome_b.condensation.state))
    print()
    print(outcome_b.summary())
    print()

    a_score = outcome_a.score.partition
    b_score = outcome_b.score.partition
    print("Comparison (lower is better for both):")
    print(
        f"  cross-node influence : A={a_score.cross_influence:.3f}  "
        f"B={b_score.cross_influence:.3f}"
    )
    print(
        f"  max node criticality : A={a_score.max_node_criticality:.1f}  "
        f"B={b_score.max_node_criticality:.1f}"
    )
    print(
        "A contains faults tighter; B spreads criticality thinner — the "
        "paper's trade-off, reproduced."
    )


if __name__ == "__main__":
    main()
