"""SW evolution under the composition rules — the R1-R5 workflow.

The framework must "support SW evolution and recertification" (§1.1).
This example evolves a three-level system through the paper's operations:

1. group procedures into tasks and tasks into processes (R1, R2);
2. hit the reuse wall: a utility procedure wanted by two tasks must be
   duplicated per caller (the R2 escape);
3. let two tasks in different processes need to communicate — their
   parents must be integrated (R4);
4. merge two sibling tasks with common functionality (R3), with Eq. (4)
   recombining their influence edges;
5. modify one procedure and show the R5 retest set: the module, its
   parent, and the sibling interfaces — nothing else.

Run:  python examples/evolution_recertification.py
"""

from repro.composition import (
    IntegrationLog,
    RetestTracker,
    duplicate_child_for,
    group,
    integrate_parents,
    merge,
)
from repro.influence import InfluenceGraph
from repro.model import AttributeSet, FCMHierarchy, Level
from repro.model.fcm import procedure, task


def main() -> None:
    hierarchy = FCMHierarchy()
    log = IntegrationLog()

    # --- Stage 1: bottom-up grouping (R1) ------------------------------
    for name, crit in (("read_adc", 3), ("scale", 2), ("checksum", 1),
                       ("route_calc", 5), ("waypoint", 4)):
        hierarchy.add(procedure(name, AttributeSet(criticality=crit)))
    group(hierarchy, ["read_adc", "scale"], "t_sensor", log=log)
    group(hierarchy, ["route_calc", "waypoint"], "t_nav", log=log)
    group(hierarchy, ["checksum"], "t_io", log=log)
    group(hierarchy, ["t_sensor", "t_io"], "p_acquisition", log=log)
    group(hierarchy, ["t_nav"], "p_navigation", log=log)
    print("After grouping (R1):")
    print(hierarchy.render())
    print()

    # --- Stage 2: reuse requires duplication (R2) ----------------------
    # t_nav also wants `scale`, but `scale` belongs to t_sensor.  Sharing
    # would violate R2, so the function is separately compiled per caller.
    clone = duplicate_child_for(hierarchy, "scale", "t_nav", log=log)
    print(f"R2 escape: duplicated 'scale' as '{clone.name}' under t_nav")
    print()

    # --- Stage 3: cross-process communication forces R4 ----------------
    # t_sensor (in p_acquisition) must now stream to t_nav (in
    # p_navigation): "all tasks of the two parent processes can be
    # combined into one parent FCM."
    merged_parent = integrate_parents(
        hierarchy, "t_sensor", "t_nav", "p_flight", log=log
    )
    print(f"R4: integrated parents into '{merged_parent.name}':")
    print(hierarchy.render())
    print()

    # --- Stage 4: horizontal merge of siblings (R3) ---------------------
    task_graph = InfluenceGraph()
    for fcm in hierarchy.at_level(Level.TASK):
        task_graph.add_fcm(fcm)
    task_graph.set_influence("t_sensor", "t_nav", 0.4)
    task_graph.set_influence("t_sensor", "t_io", 0.2)
    task_graph.set_influence("t_nav", "t_io", 0.3)
    merged = merge(
        hierarchy, ["t_sensor", "t_nav"], "t_guidance",
        influence_graph=task_graph, log=log,
    )
    print(f"R3: merged siblings into '{merged.name}' "
          f"(criticality {merged.attributes.criticality})")
    print(f"    Eq. (4) combined influence onto t_io: "
          f"{task_graph.influence('t_guidance', 't_io'):.2f} "
          f"(= 1 - (1-0.2)(1-0.3))")
    print()

    # --- Stage 5: modification and the R5 retest set --------------------
    tracker = RetestTracker(hierarchy=hierarchy)
    obligations = tracker.modified("read_adc")
    print("R5: after modifying 'read_adc', retest obligations are:")
    for obligation in obligations:
        print(f"  - {obligation.describe()}")
    print("  (the grandparent process requires NO retest — that is the "
          "point of the level hierarchy)")
    print()

    print(f"integration log: {len(log)} operations")
    for record in log.records:
        print(f"  #{record.sequence} {record.kind.value:<18} "
              f"{','.join(record.inputs)} -> {','.join(record.outputs)}")


if __name__ == "__main__":
    main()
