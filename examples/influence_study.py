"""Measuring and reducing influence — the §4.2 workflow.

"First, the values of influence need to be measured" (§4.2.1), then
"techniques used to reduce influence" are applied (§4.2.2-4.2.3).  This
example runs the full loop on the paper's example graph:

1. pretend the true influences are unknown: estimate every edge by
   fault-injection trials (the simulated field data) with Wilson
   confidence intervals;
2. compare estimated vs true values;
3. decompose one edge into explicit factors and rank which isolation
   technique (information hiding, recovery blocks, preemptive
   scheduling ...) buys the most influence reduction;
4. apply the winner and show the separation improvement (Eq. 3).

Run:  python examples/influence_study.py
"""

from repro.faultsim import estimate_all_influences
from repro.influence import (
    FactorKind,
    InfluenceFactor,
    InfluenceGraph,
    apply_technique,
    compute_separation,
    rank_techniques,
    total_influence,
)
from repro.metrics import format_table
from repro.model import AttributeSet, FCM, Level
from repro.workloads import paper_influence_graph


def estimation_phase() -> None:
    graph = paper_influence_graph()
    estimates = estimate_all_influences(graph, trials=3000, seed=1)
    rows = []
    for (src, dst), est in sorted(estimates.items()):
        true = graph.influence(src, dst)
        rows.append(
            (
                f"{src} -> {dst}",
                f"{true:.2f}",
                f"{est.estimate:.3f}",
                f"[{est.low:.3f}, {est.high:.3f}]",
                "yes" if est.covers(true) else "NO",
            )
        )
    print(
        format_table(
            ["edge", "true", "estimate", "95% interval", "covered"],
            rows,
            title="Phase 1: influence estimation from 3000 injections/edge",
        )
    )
    print()


def reduction_phase() -> None:
    # A task-level graph with factor decompositions (Eq. 1).
    graph = InfluenceGraph()
    for name in ("sensor", "filter", "logger"):
        graph.add_fcm(FCM(name, Level.TASK, AttributeSet()))
    graph.set_influence(
        "sensor",
        "filter",
        factors=[
            InfluenceFactor(FactorKind.SHARED_MEMORY, 0.3, 0.8, 0.7),
            InfluenceFactor(FactorKind.TIMING, 0.2, 0.9, 0.8),
        ],
    )
    graph.set_influence(
        "filter",
        "logger",
        factors=[InfluenceFactor(FactorKind.MESSAGE_PASSING, 0.2, 0.6, 0.5)],
    )

    print("Phase 2: ranking isolation techniques on a task-level graph")
    print(f"  total influence before: {total_influence(graph):.4f}")
    ranked = rank_techniques(graph)
    for technique, reduction in ranked[:4]:
        print(f"  {technique.value:<24} would reduce total by {reduction:.4f}")

    best = ranked[0][0]
    before = compute_separation(graph).separation("sensor", "logger")
    report = apply_technique(graph, best)
    after = compute_separation(graph).separation("sensor", "logger")
    print(f"  applied {best.value}: edges changed {report.edges_changed}, "
          f"total influence {report.total_influence_before:.4f} -> "
          f"{report.total_influence_after:.4f}")
    print(f"  separation(sensor, logger): {before:.4f} -> {after:.4f}")
    print()


def main() -> None:
    estimation_phase()
    reduction_phase()


if __name__ == "__main__":
    main()
