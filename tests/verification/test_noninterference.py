"""Non-interference battery."""

import pytest

from repro.influence import InfluenceGraph
from repro.model import AttributeSet, FCM, Level
from repro.verification import verify_noninterference

from tests.conftest import make_process


def graph_with(*edges) -> InfluenceGraph:
    g = InfluenceGraph()
    names = {n for e in edges for n in e[:2]}
    for name in sorted(names):
        g.add_fcm(make_process(name))
    for src, dst, w in edges:
        g.set_influence(src, dst, w)
    return g


class TestInfluenceBudget:
    def test_within_budget_passes(self):
        g = graph_with(("a", "b", 0.2))
        report = verify_noninterference(g, influence_budget=0.5)
        assert report.passed

    def test_over_budget_flagged(self):
        g = graph_with(("a", "b", 0.8))
        report = verify_noninterference(g, influence_budget=0.5)
        assert not report.passed
        assert report.over_budget == (("a", "b", 0.8),)
        assert any("budget" in line for line in report.describe())

    def test_default_budget_disables_check(self):
        g = graph_with(("a", "b", 1.0))
        assert verify_noninterference(g).passed


class TestSeparationFloor:
    def test_under_separated_pair_flagged(self):
        g = graph_with(("a", "b", 0.9))
        report = verify_noninterference(g, separation_floor=0.5)
        assert not report.passed
        assert ("a", "b", pytest.approx(0.1)) in [
            (s, t, v) for s, t, v in report.under_separated
        ]

    def test_transitive_paths_counted(self):
        g = graph_with(("a", "b", 0.9), ("b", "c", 0.9))
        report = verify_noninterference(g, separation_floor=0.5)
        pairs = {(s, t) for s, t, _v in report.under_separated}
        assert ("a", "c") in pairs  # 1 - 0.81 = 0.19 < 0.5

    def test_floor_zero_disables(self):
        g = graph_with(("a", "b", 1.0))
        assert verify_noninterference(g, separation_floor=0.0).passed


class TestReplicaIsolation:
    def build(self, leak: bool) -> InfluenceGraph:
        g = InfluenceGraph()
        base = FCM("p", Level.PROCESS, AttributeSet(fault_tolerance=2))
        g.add_fcm(base.replicate("a"))
        g.add_fcm(base.replicate("b"))
        g.link_replicas("pa", "pb")
        g.add_fcm(make_process("m"))
        if leak:
            g.set_influence("pa", "m", 0.5)
            g.set_influence("m", "pb", 0.5)
        return g

    def test_isolated_replicas_pass(self):
        report = verify_noninterference(self.build(leak=False))
        assert report.passed

    def test_influence_path_between_replicas_flagged(self):
        report = verify_noninterference(self.build(leak=True))
        assert not report.passed
        assert report.replica_paths == (("pa", "pb"),)
        assert any("not isolated" in line for line in report.describe())
