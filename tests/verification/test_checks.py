"""System audit battery."""

import pytest

from repro.influence import FactorKind, InfluenceFactor
from repro.model import Level, SoftwareSystem
from repro.model.fcm import procedure, process, task
from repro.verification import ALLOWED_FACTORS, audit_system


def build_system() -> SoftwareSystem:
    s = SoftwareSystem(name="audit-me")
    s.hierarchy.add(process("p1"))
    s.hierarchy.add(process("p2"))
    s.hierarchy.add(task("t1"), parent="p1")
    s.hierarchy.add(task("t2"), parent="p1")
    s.hierarchy.add(procedure("f1"), parent="t1")
    s.hierarchy.add(procedure("f2"), parent="t1")
    return s


class TestAllowedFactors:
    def test_procedure_mechanisms(self):
        assert FactorKind.PARAMETER_PASSING in ALLOWED_FACTORS[Level.PROCEDURE]
        assert FactorKind.SHARED_MEMORY not in ALLOWED_FACTORS[Level.PROCEDURE]

    def test_task_techniques_reach_process_level(self):
        for kind in (FactorKind.SHARED_MEMORY, FactorKind.TIMING):
            assert kind in ALLOWED_FACTORS[Level.TASK]
            assert kind in ALLOWED_FACTORS[Level.PROCESS]

    def test_resource_sharing_process_only(self):
        assert FactorKind.RESOURCE_SHARING in ALLOWED_FACTORS[Level.PROCESS]
        assert FactorKind.RESOURCE_SHARING not in ALLOWED_FACTORS[Level.TASK]


class TestAuditSystem:
    def test_clean_system_passes(self):
        system = build_system()
        graph = system.influence_at(Level.PROCESS)
        graph.set_influence(
            "p1",
            "p2",
            factors=[InfluenceFactor(FactorKind.SHARED_MEMORY, 0.1, 0.5, 0.5)],
        )
        report = audit_system(system)
        assert report.passed
        assert report.describe() == []

    def test_level_discipline_violation(self):
        system = build_system()
        graph = system.influence_at(Level.PROCESS)
        # Parameter passing between *processes* is a discipline breach:
        # procedures cannot call across processes in the system model.
        graph.set_influence(
            "p1",
            "p2",
            factors=[InfluenceFactor(FactorKind.PARAMETER_PASSING, 0.1, 0.5, 0.5)],
        )
        report = audit_system(system)
        assert not report.passed
        assert any("parameter_passing" in m for m in report.level_discipline)

    def test_structural_problems_reported(self):
        system = build_system()
        graph = system.influence_at(Level.PROCESS)
        graph.add_fcm(task("stray"))
        report = audit_system(system)
        assert not report.passed
        assert report.structural

    def test_noninterference_integrated(self):
        system = build_system()
        graph = system.influence_at(Level.PROCESS)
        graph.set_influence("p1", "p2", 0.9)
        report = audit_system(system, influence_budget=0.5)
        assert not report.passed
        assert not report.noninterference[Level.PROCESS].passed
        assert any("budget" in line for line in report.describe())

    def test_multiple_levels_audited(self):
        system = build_system()
        system.influence_at(Level.PROCESS)
        system.influence_at(Level.TASK)
        report = audit_system(system)
        assert set(report.noninterference) == {Level.PROCESS, Level.TASK}
