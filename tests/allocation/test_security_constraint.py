"""SecuritySeparation constraint."""

import pytest

from repro.allocation import CombinationPolicy, SecuritySeparation
from repro.influence import InfluenceGraph
from repro.model import AttributeSet, FCM, Level, SecurityLevel


def graph():
    g = InfluenceGraph()
    for name, level in (
        ("open", SecurityLevel.UNCLASSIFIED),
        ("restricted", SecurityLevel.RESTRICTED),
        ("secret", SecurityLevel.SECRET),
        ("secret2", SecurityLevel.SECRET),
    ):
        g.add_fcm(FCM(name, Level.PROCESS, AttributeSet(security=level)))
    return g


class TestSecuritySeparation:
    def test_same_level_combines(self):
        constraint = SecuritySeparation(max_span=0)
        assert constraint.check(graph(), ("secret",), ("secret2",)) is None

    def test_span_zero_blocks_mixed(self):
        constraint = SecuritySeparation(max_span=0)
        reason = constraint.check(graph(), ("open",), ("secret",))
        assert reason is not None and "span" in reason

    def test_span_allows_adjacent(self):
        constraint = SecuritySeparation(max_span=1)
        assert constraint.check(graph(), ("open",), ("restricted",)) is None
        assert constraint.check(graph(), ("open",), ("secret",)) is not None

    def test_span_over_merged_members(self):
        constraint = SecuritySeparation(max_span=1)
        # Cluster already spans UNCLASSIFIED..RESTRICTED; adding SECRET
        # pushes the span to 3.
        reason = constraint.check(graph(), ("open", "restricted"), ("secret",))
        assert reason is not None

    def test_composes_into_policy(self):
        g = graph()
        policy = CombinationPolicy()
        policy.constraints.append(SecuritySeparation(max_span=0))
        assert not policy.can_combine(g, ("open",), ("secret",))
        assert policy.can_combine(g, ("secret",), ("secret2",))
