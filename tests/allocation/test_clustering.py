"""ClusterState: Eq. (4) cluster influence, combination, constraints."""

import pytest

from repro.allocation import (
    Cluster,
    ClusterState,
    CombinationPolicy,
    initial_state,
    seeded_state,
)
from repro.errors import AllocationError
from repro.influence import InfluenceGraph
from repro.model import AttributeSet, FCM, Level, TimingConstraint

from tests.conftest import make_process


def simple_graph() -> InfluenceGraph:
    g = InfluenceGraph()
    for name in ("a", "b", "c", "d"):
        g.add_fcm(make_process(name))
    g.set_influence("a", "b", 0.5)
    g.set_influence("b", "a", 0.3)
    g.set_influence("a", "c", 0.2)
    g.set_influence("b", "c", 0.7)
    return g


class TestCluster:
    def test_label_paper_style(self):
        c = Cluster(("p1a", "p2a"))
        assert c.label == "p1a,2a"

    def test_label_non_p_names(self):
        c = Cluster(("alpha", "beta"))
        assert c.label == "alpha,beta"

    def test_validation(self):
        with pytest.raises(AllocationError):
            Cluster(())
        with pytest.raises(AllocationError):
            Cluster(("a", "a"))

    def test_merge_and_contains(self):
        c = Cluster(("a",)).merged_with(Cluster(("b",)))
        assert "a" in c and "b" in c and len(c) == 2


class TestClusterState:
    def test_initial_singletons(self):
        state = initial_state(simple_graph())
        assert len(state) == 4
        assert all(len(c) == 1 for c in state.clusters)

    def test_seeded_state_validates(self):
        g = simple_graph()
        state = seeded_state(g, [["a", "b"], ["c"], ["d"]])
        assert len(state) == 3
        with pytest.raises(AllocationError):
            seeded_state(g, [["a"], ["a", "b"]])
        with pytest.raises(AllocationError):
            seeded_state(g, [["a", "zz"]])

    def test_cluster_of(self):
        state = seeded_state(simple_graph(), [["a", "b"], ["c"], ["d"]])
        assert state.cluster_of("b") == 0
        assert state.cluster_of("d") == 2
        with pytest.raises(AllocationError):
            state.cluster_of("zz")

    def test_cluster_influence_eq4(self):
        state = seeded_state(simple_graph(), [["a", "b"], ["c"], ["d"]])
        # {a,b} -> c combines 0.2 and 0.7.
        assert state.influence(0, 1) == pytest.approx(0.76)
        assert state.influence(1, 0) == 0.0

    def test_self_influence_undefined(self):
        state = initial_state(simple_graph())
        with pytest.raises(AllocationError):
            state.influence(0, 0)

    def test_mutual_influence(self):
        state = initial_state(simple_graph())
        i, j = state.cluster_of("a"), state.cluster_of("b")
        assert state.mutual_influence(i, j) == pytest.approx(0.8)

    def test_combine_merges_and_shifts(self):
        state = initial_state(simple_graph())
        merged = state.combine(state.cluster_of("a"), state.cluster_of("b"))
        assert len(state) == 3
        assert set(state.clusters[merged].members) == {"a", "b"}

    def test_combine_self_rejected(self):
        state = initial_state(simple_graph())
        with pytest.raises(AllocationError):
            state.combine(1, 1)

    def test_total_cross_influence_drops_on_merge(self):
        state = initial_state(simple_graph())
        before = state.total_cross_influence()
        state.combine(state.cluster_of("a"), state.cluster_of("b"))
        after = state.total_cross_influence()
        assert after < before

    def test_copy_independent(self):
        state = initial_state(simple_graph())
        clone = state.copy()
        clone.combine(0, 1)
        assert len(state) == 4 and len(clone) == 3

    def test_index_bounds(self):
        state = initial_state(simple_graph())
        with pytest.raises(AllocationError):
            state.influence(0, 99)


class TestReplicaConstraints:
    def make_state(self) -> ClusterState:
        g = InfluenceGraph()
        base = FCM("p", Level.PROCESS, AttributeSet(fault_tolerance=2))
        g.add_fcm(base.replicate("a"))
        g.add_fcm(base.replicate("b"))
        g.link_replicas("pa", "pb")
        g.add_fcm(make_process("q"))
        g.set_influence("pa", "q", 0.5)
        return initial_state(g)

    def test_replica_clusters_not_combinable(self):
        state = self.make_state()
        i, j = state.cluster_of("pa"), state.cluster_of("pb")
        assert not state.can_combine(i, j)
        assert state.replica_related(i, j)
        with pytest.raises(AllocationError, match="rejected"):
            state.combine(i, j)

    def test_replica_cluster_influence_zero(self):
        state = self.make_state()
        i, j = state.cluster_of("pa"), state.cluster_of("pb")
        assert state.influence(i, j) == 0.0

    def test_combination_with_ordinary_node_allowed(self):
        state = self.make_state()
        i, j = state.cluster_of("pa"), state.cluster_of("q")
        assert state.can_combine(i, j)
        state.combine(i, j)
        # The merged {pa, q} still cannot join pb.
        k = state.cluster_of("pb")
        assert not state.can_combine(state.cluster_of("pa"), k)


class TestSchedulingConstraint:
    def test_timing_conflict_blocks_combination(self):
        g = InfluenceGraph()
        g.add_fcm(
            FCM("x", Level.PROCESS, AttributeSet(timing=TimingConstraint(0, 3, 2)))
        )
        g.add_fcm(
            FCM("y", Level.PROCESS, AttributeSet(timing=TimingConstraint(1, 4, 3)))
        )
        state = initial_state(g)
        assert not state.can_combine(0, 1)

    def test_enforce_policy_false_bypasses(self):
        g = InfluenceGraph()
        g.add_fcm(
            FCM("x", Level.PROCESS, AttributeSet(timing=TimingConstraint(0, 3, 2)))
        )
        g.add_fcm(
            FCM("y", Level.PROCESS, AttributeSet(timing=TimingConstraint(1, 4, 3)))
        )
        state = initial_state(g)
        state.combine(0, 1, enforce_policy=False)
        assert len(state) == 1


class TestAttributes:
    def test_grouped_envelope(self):
        g = InfluenceGraph()
        g.add_fcm(
            FCM(
                "x",
                Level.PROCESS,
                AttributeSet(criticality=5, timing=TimingConstraint(0, 10, 3)),
            )
        )
        g.add_fcm(
            FCM(
                "y",
                Level.PROCESS,
                AttributeSet(criticality=9, timing=TimingConstraint(12, 18, 3)),
            )
        )
        state = seeded_state(g, [["x", "y"]])
        attrs = state.attributes(0)
        assert attrs.criticality == 9
        assert attrs.timing.earliest_start == 0
        assert attrs.timing.deadline == 18
        assert attrs.timing.computation_time == 6

    def test_labels_listing(self):
        state = seeded_state(simple_graph(), [["a", "b"], ["c"], ["d"]])
        assert state.labels() == ["a,b", "c", "d"]
        assert state.as_partition() == [["a", "b"], ["c"], ["d"]]
