"""SW -> HW mapping: Approaches A and B, resources, dilation."""

import pytest

from repro.allocation import (
    ResourceRequirements,
    condense_h1,
    fully_connected,
    initial_state,
    map_approach_a,
    map_approach_b,
    seeded_state,
)
from repro.allocation.hw_model import HWGraph, HWNode
from repro.errors import AllocationError, InfeasibleAllocationError
from repro.influence import InfluenceGraph
from repro.model import AttributeSet, FCM, Level
from repro.workloads import HW_NODE_COUNT

from tests.conftest import make_process


@pytest.fixture
def condensed(expanded_paper_state):
    return condense_h1(expanded_paper_state, HW_NODE_COUNT).state


class TestApproachA:
    def test_complete_one_to_one(self, condensed):
        hw = fully_connected(HW_NODE_COUNT)
        mapping = map_approach_a(condensed, hw)
        assert mapping.is_complete()
        assigned = list(mapping.assignment.values())
        assert len(set(assigned)) == len(assigned)

    def test_too_many_clusters_rejected(self, condensed):
        hw = fully_connected(3)
        with pytest.raises(InfeasibleAllocationError):
            map_approach_a(condensed, hw)

    def test_resource_constraint_respected(self):
        g = InfluenceGraph()
        g.add_fcm(make_process("io"))
        g.add_fcm(make_process("calc"))
        state = initial_state(g)
        hw = HWGraph()
        hw.add_node(HWNode("plain"))
        hw.add_node(HWNode("bus_node", resources=frozenset({"bus"})))
        hw.add_link("plain", "bus_node", 1.0)
        reqs = ResourceRequirements(needs={"io": frozenset({"bus"})})
        mapping = map_approach_a(state, hw, resources=reqs)
        io_cluster = state.cluster_of("io")
        assert mapping.node_of(io_cluster) == "bus_node"

    def test_unsatisfiable_resources_raise(self):
        g = InfluenceGraph()
        g.add_fcm(make_process("io"))
        state = initial_state(g)
        hw = HWGraph()
        hw.add_node(HWNode("plain"))
        reqs = ResourceRequirements(needs={"io": frozenset({"bus"})})
        with pytest.raises(InfeasibleAllocationError):
            map_approach_a(state, hw, resources=reqs)

    def test_node_of_unassigned_raises(self, condensed):
        hw = fully_connected(HW_NODE_COUNT)
        mapping = map_approach_a(condensed, hw)
        with pytest.raises(AllocationError):
            mapping.node_of(99)

    def test_describe_covers_all_hw(self, condensed):
        hw = fully_connected(HW_NODE_COUNT)
        mapping = map_approach_a(condensed, hw)
        rows = mapping.describe()
        assert len(rows) == HW_NODE_COUNT
        assert all(label != "-" for _hw, label in rows)


class TestApproachB:
    def test_critical_clusters_take_distinct_fcrs(self, condensed):
        hw = fully_connected(HW_NODE_COUNT)
        mapping = map_approach_b(condensed, hw)
        fcrs = [mapping.hw.fcr_of(n) for n in mapping.assignment.values()]
        assert len(set(fcrs)) == len(fcrs)

    def test_complete(self, condensed):
        hw = fully_connected(HW_NODE_COUNT)
        assert map_approach_b(condensed, hw).is_complete()

    def test_shared_fcr_hw_still_maps(self, condensed):
        hw = fully_connected(HW_NODE_COUNT, distinct_fcrs=False)
        mapping = map_approach_b(condensed, hw)
        assert mapping.is_complete()


class TestDilation:
    def test_strong_pairs_placed_on_cheap_links(self):
        # Line HW topology: hw1 - hw2 (cost 1), hw2 - hw3 (cost 1),
        # hw1 - hw3 (cost 10).  The two coupled clusters must avoid the
        # expensive link.
        g = InfluenceGraph()
        for name in ("a", "b", "c"):
            g.add_fcm(make_process(name))
        g.set_influence("a", "b", 0.9)
        g.set_influence("b", "a", 0.9)
        state = initial_state(g)
        hw = HWGraph()
        for name in ("hw1", "hw2", "hw3"):
            hw.add_node(HWNode(name))
        hw.add_link("hw1", "hw2", 1.0)
        hw.add_link("hw2", "hw3", 1.0)
        hw.add_link("hw1", "hw3", 10.0)
        mapping = map_approach_a(state, hw)
        a_node = mapping.node_of(state.cluster_of("a"))
        b_node = mapping.node_of(state.cluster_of("b"))
        assert hw.link_cost(a_node, b_node) == 1.0

    def test_communication_cost_computation(self):
        g = InfluenceGraph()
        for name in ("a", "b"):
            g.add_fcm(make_process(name))
        g.set_influence("a", "b", 0.5)
        state = initial_state(g)
        hw = HWGraph()
        hw.add_node(HWNode("h1"))
        hw.add_node(HWNode("h2"))
        hw.add_link("h1", "h2", 2.0)
        mapping = map_approach_a(state, hw)
        assert mapping.communication_cost() == pytest.approx(0.5 * 2.0)

    def test_zero_cost_when_no_cross_influence(self):
        g = InfluenceGraph()
        for name in ("a", "b"):
            g.add_fcm(make_process(name))
        state = initial_state(g)
        hw = fully_connected(2)
        mapping = map_approach_a(state, hw)
        assert mapping.communication_cost() == 0.0


class TestClusterOn:
    def test_lookup(self, condensed):
        hw = fully_connected(HW_NODE_COUNT)
        mapping = map_approach_a(condensed, hw)
        for index, node in mapping.assignment.items():
            assert mapping.cluster_on(node) == index
        # A fabricated name is simply empty.
        assert mapping.cluster_on("hw999") is None
