"""Heuristic H1 on the paper example and synthetic graphs."""

import pytest

from repro.allocation import (
    H1Influence,
    H1Pairing,
    condense_h1,
    expand_replication,
    initial_state,
)
from repro.errors import InfeasibleAllocationError
from repro.workloads import HW_NODE_COUNT, paper_influence_graph


class TestH1OnPaperExample:
    def test_first_merge_is_p1_p2(self, paper_graph):
        # §6.1: "the two nodes with the highest mutual influence (p1, p2)
        # are combined" — mutual 0.7 + 0.5 = 1.2.
        state = initial_state(paper_graph)
        result = condense_h1(state, 7)
        first = result.steps[0]
        assert set(first.first + first.second) == {"p1", "p2"}
        assert first.mutual_influence == pytest.approx(1.2)

    def test_unreplicated_reduction_to_three(self, paper_graph):
        state = initial_state(paper_graph)
        result = condense_h1(state, 3)
        members = sorted(tuple(sorted(c.members)) for c in result.clusters)
        # p1..p4 coalesce around the heavy 0.7/0.9/0.7 chain; p6 stays
        # alone (only 0.1-weight edges).
        assert len(members) == 3
        assert ("p6",) in members

    def test_replicated_reduction_to_six(self, expanded_paper_state):
        result = condense_h1(expanded_paper_state, HW_NODE_COUNT)
        clusters = [set(c.members) for c in result.clusters]
        assert len(clusters) == 6
        # Replica separation: each p1 replica in its own cluster.
        for group in (("p1a", "p1b", "p1c"), ("p2a", "p2b"), ("p3a", "p3b")):
            holders = []
            for member in group:
                holders.append(
                    next(i for i, c in enumerate(clusters) if member in c)
                )
            assert len(set(holders)) == len(group)

    def test_steps_monotone_nonincreasing_influence(self, expanded_paper_state):
        result = condense_h1(expanded_paper_state, HW_NODE_COUNT)
        values = [s.mutual_influence for s in result.steps]
        assert values == sorted(values, reverse=True)

    def test_cross_influence_beats_target_free_graph(self, expanded_paper_state):
        before = expanded_paper_state.total_cross_influence()
        result = condense_h1(expanded_paper_state, HW_NODE_COUNT)
        assert result.state.total_cross_influence() < before

    def test_target_below_replica_bound_rejected(self, expanded_paper_state):
        with pytest.raises(InfeasibleAllocationError):
            condense_h1(expanded_paper_state, 2)  # p1 needs 3 nodes

    def test_invalid_target_rejected(self, expanded_paper_state):
        from repro.errors import AllocationError

        with pytest.raises(AllocationError):
            condense_h1(expanded_paper_state, 0)

    def test_every_cluster_schedulable(self, expanded_paper_state):
        result = condense_h1(expanded_paper_state, HW_NODE_COUNT)
        policy = result.state.policy
        for cluster in result.clusters:
            assert policy.block_valid(result.state.graph, cluster.members)


class TestH1Pairing:
    def test_pairing_variant_reaches_target(self, expanded_paper_state):
        result = H1Pairing().condense(expanded_paper_state, HW_NODE_COUNT)
        assert len(result.clusters) == HW_NODE_COUNT

    def test_pairing_respects_replicas(self, expanded_paper_state):
        result = H1Pairing().condense(expanded_paper_state, HW_NODE_COUNT)
        graph = result.state.graph
        for cluster in result.clusters:
            members = cluster.members
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    assert not graph.is_replica_link(a, b)

    def test_pairing_first_round_pairs_disjoint(self):
        graph = paper_influence_graph()
        state = initial_state(graph)
        heuristic = H1Pairing()
        result = heuristic.condense(state, 4)
        assert len(result.clusters) == 4


class TestH1EdgeCases:
    def test_target_equal_to_size_is_noop(self, paper_graph):
        state = initial_state(paper_graph)
        result = condense_h1(state, len(paper_graph))
        assert len(result.clusters) == len(paper_graph)
        assert result.steps == []

    def test_zero_influence_fallback_merges(self):
        # A graph with no edges at all can still be condensed (the HW
        # budget dominates): H1 falls back to zero-influence merges.
        from repro.influence import InfluenceGraph
        from tests.conftest import make_process

        g = InfluenceGraph()
        for name in ("a", "b", "c", "d"):
            g.add_fcm(make_process(name))
        result = condense_h1(initial_state(g), 2)
        assert len(result.clusters) == 2
        assert all(s.mutual_influence == 0.0 for s in result.steps)
