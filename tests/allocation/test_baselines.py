"""Baseline clustering strategies."""

import pytest

from repro.allocation import (
    condense_h1,
    evaluate_partition,
    expand_replication,
    initial_state,
    load_balance_clustering,
    random_clustering,
    round_robin_clustering,
)
from repro.errors import InfeasibleAllocationError
from repro.workloads import HW_NODE_COUNT, paper_influence_graph


def fresh_state():
    return initial_state(expand_replication(paper_influence_graph()))


BASELINES = [random_clustering, round_robin_clustering, load_balance_clustering]


class TestBaselineValidity:
    @pytest.mark.parametrize("baseline", BASELINES)
    def test_respects_hard_constraints(self, baseline):
        result = baseline(fresh_state(), HW_NODE_COUNT)
        state = result.state
        for cluster in state.clusters:
            assert state.policy.block_valid(state.graph, cluster.members), (
                f"{baseline.__name__} produced invalid block {cluster.members}"
            )

    @pytest.mark.parametrize("baseline", BASELINES)
    def test_within_target(self, baseline):
        result = baseline(fresh_state(), HW_NODE_COUNT)
        assert len(result.clusters) <= HW_NODE_COUNT

    @pytest.mark.parametrize("baseline", BASELINES)
    def test_covers_all_nodes(self, baseline):
        result = baseline(fresh_state(), HW_NODE_COUNT)
        members = [m for c in result.clusters for m in c.members]
        assert sorted(members) == sorted(fresh_state().graph.fcm_names())

    @pytest.mark.parametrize("baseline", BASELINES)
    def test_below_replica_bound_rejected(self, baseline):
        with pytest.raises(InfeasibleAllocationError):
            baseline(fresh_state(), 2)


class TestRandomBaseline:
    def test_deterministic_given_seed(self):
        a = random_clustering(fresh_state(), HW_NODE_COUNT, seed=5)
        b = random_clustering(fresh_state(), HW_NODE_COUNT, seed=5)
        assert a.partition() == b.partition()

    def test_seeds_differ(self):
        a = random_clustering(fresh_state(), HW_NODE_COUNT, seed=1)
        b = random_clustering(fresh_state(), HW_NODE_COUNT, seed=2)
        assert a.partition() != b.partition()


class TestHeadlineComparison:
    def test_h1_contains_influence_better_than_every_baseline(self):
        """The paper's core claim: dependability-driven condensation keeps
        influence inside nodes, so cross-node influence is lower than any
        dependability-blind placement."""
        h1_score = evaluate_partition(
            condense_h1(fresh_state(), HW_NODE_COUNT).state
        ).cross_influence
        for baseline in BASELINES:
            base_score = evaluate_partition(
                baseline(fresh_state(), HW_NODE_COUNT).state
            ).cross_influence
            assert h1_score < base_score, (
                f"H1 ({h1_score:.3f}) did not beat "
                f"{baseline.__name__} ({base_score:.3f})"
            )

    def test_load_balance_actually_balances(self):
        result = load_balance_clustering(fresh_state(), HW_NODE_COUNT)

        def load(cluster):
            total = 0.0
            for member in cluster.members:
                timing = result.state.graph.fcm(member).attributes.timing
                if timing:
                    total += timing.computation_time
            return total

        loads = [load(c) for c in result.clusters]
        assert max(loads) - min(loads) <= 4.0  # no one node hoards work
