"""Importance ranking (§5.1)."""

import pytest

from repro.allocation import (
    cluster_importance,
    initial_state,
    node_importance,
    rank_clusters,
    rank_nodes,
    seeded_state,
)
from repro.influence import InfluenceGraph
from repro.model import AttributeSet, FCM, ImportanceWeights, Level


def graph() -> InfluenceGraph:
    g = InfluenceGraph()
    for name, crit, ft in (("low", 1.0, 1), ("mid", 10.0, 1), ("high", 10.0, 3)):
        g.add_fcm(
            FCM(name, Level.PROCESS, AttributeSet(criticality=crit, fault_tolerance=ft))
        )
    return g


class TestNodeImportance:
    def test_weighted_sum(self):
        weights = ImportanceWeights(
            criticality=2.0,
            fault_tolerance=1.0,
            timing_urgency=0.0,
            throughput=0.0,
            security=0.0,
            communication_rate=0.0,
        )
        attrs = AttributeSet(criticality=3, fault_tolerance=3)
        assert node_importance(attrs, weights) == pytest.approx(2 * 3 + 1 * 2)

    def test_ft_breaks_ties(self):
        g = graph()
        assert node_importance(
            g.fcm("high").attributes
        ) > node_importance(g.fcm("mid").attributes)


class TestRanking:
    def test_rank_nodes_descending(self):
        state = initial_state(graph())
        assert rank_nodes(state) == ["high", "mid", "low"]

    def test_rank_clusters(self):
        state = seeded_state(graph(), [["low"], ["mid", "high"]])
        ranked = rank_clusters(state)
        assert ranked[0] == 1  # the cluster containing "high"

    def test_cluster_importance_dominates_members(self):
        state = seeded_state(graph(), [["low", "high"], ["mid"]])
        combined = cluster_importance(state, 0)
        assert combined >= cluster_importance(state, 1)

    def test_stable_tie_break(self):
        g = InfluenceGraph()
        for name in ("b_node", "a_node"):
            g.add_fcm(FCM(name, Level.PROCESS, AttributeSet(criticality=5)))
        state = initial_state(g)
        assert rank_nodes(state) == ["a_node", "b_node"]
