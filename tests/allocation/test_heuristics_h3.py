"""Heuristic H3: spheres of influence around important nodes."""

import pytest

from repro.allocation import H3Options, condense_h3, initial_state
from repro.errors import InfeasibleAllocationError
from repro.influence import InfluenceGraph
from repro.model import AttributeSet, FCM, Level
from repro.workloads import HW_NODE_COUNT

from tests.conftest import make_process


def star_graph() -> InfluenceGraph:
    """Two hubs with satellites bound to them by influence."""
    g = InfluenceGraph()
    g.add_fcm(FCM("hub1", Level.PROCESS, AttributeSet(criticality=50)))
    g.add_fcm(FCM("hub2", Level.PROCESS, AttributeSet(criticality=40)))
    for i, hub in (("1", "hub1"), ("2", "hub1"), ("3", "hub2"), ("4", "hub2")):
        sat = f"sat{i}"
        g.add_fcm(FCM(sat, Level.PROCESS, AttributeSet(criticality=1)))
        g.set_influence(sat, hub, 0.6)
    return g


class TestH3Structure:
    def test_seeds_are_most_important(self):
        state = initial_state(star_graph())
        result = condense_h3(state, 2)
        clusters = sorted(tuple(sorted(c.members)) for c in result.clusters)
        assert clusters == [
            ("hub1", "sat1", "sat2"),
            ("hub2", "sat3", "sat4"),
        ]

    def test_exactly_target_clusters(self):
        state = initial_state(star_graph())
        result = condense_h3(state, 3)
        assert len(result.clusters) == 3

    def test_target_exceeding_nodes_rejected(self):
        state = initial_state(star_graph())
        with pytest.raises(InfeasibleAllocationError):
            condense_h3(state, 99)


class TestH3Thresholds:
    def test_importance_threshold_blocks_absorption(self):
        g = star_graph()
        state = initial_state(g)
        # sat nodes have small importance; a tiny threshold forbids
        # absorbing them, making the target unreachable.
        options = H3Options(importance_threshold=0.0)
        with pytest.raises(InfeasibleAllocationError):
            condense_h3(state, 2, options)

    def test_influence_threshold_prefers_strong_seeds(self):
        state = initial_state(star_graph())
        options = H3Options(influence_threshold=0.5)
        result = condense_h3(state, 2, options)
        # Satellites still land with their hub (affinity 0.6 >= 0.5).
        clusters = sorted(tuple(sorted(c.members)) for c in result.clusters)
        assert clusters[0] == ("hub1", "sat1", "sat2")


class TestH3OnPaperExample:
    def test_six_clusters_valid(self, expanded_paper_state):
        result = condense_h3(expanded_paper_state, HW_NODE_COUNT)
        assert len(result.clusters) == HW_NODE_COUNT
        policy = result.state.policy
        for cluster in result.clusters:
            assert policy.block_valid(result.state.graph, cluster.members)

    def test_p1_replicas_are_seeds(self, expanded_paper_state):
        # p1's replicas carry the highest criticality, so all three must
        # seed distinct spheres.
        result = condense_h3(expanded_paper_state, HW_NODE_COUNT)
        for replica in ("p1a", "p1b", "p1c"):
            holders = [
                c for c in result.clusters if replica in c.members
            ]
            assert len(holders) == 1

    def test_constraint_fallback_message(self):
        # Build a graph where a node fits no sphere: two replicas as the
        # only possible homes for their own sibling replica.
        g = InfluenceGraph()
        base = FCM("p", Level.PROCESS, AttributeSet(criticality=10, fault_tolerance=3))
        for suffix in ("a", "b", "c"):
            g.add_fcm(base.replicate(suffix))
        g.link_replicas("pa", "pb")
        g.link_replicas("pa", "pc")
        g.link_replicas("pb", "pc")
        state = initial_state(g)
        with pytest.raises(InfeasibleAllocationError):
            condense_h3(state, 2)
